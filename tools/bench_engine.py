#!/usr/bin/env python3
"""Engine throughput benchmark: events/sec micro, cold-cell seconds macro.

Micro benchmarks drive the two hot engine paths in isolation:

* ``timer`` — a process sleeping in a tight ``yield Timeout`` loop, i.e.
  the heap path (tuple-keyed entries, unchecked ``_after`` scheduling);
* ``ready`` — two processes handing items over a pair of queues, i.e. the
  same-time ready-queue path (``_soon`` resumes that bypass the heap).

The macro benchmark runs one cold cell of the standard sweep grid (cache
bypassed) and reports wall seconds plus end-to-end events/sec, which is
the number that actually bounds ``--full`` paper-scale runs.

Writes ``BENCH_engine.json`` at the repo root so the perf trajectory is
tracked per PR.  ``--smoke`` shrinks every workload so CI can run the
whole thing in a few seconds; numbers from a loaded CI box are noisy and
only the committed (non-smoke) JSON should be compared across commits.

Usage::

    PYTHONPATH=src python tools/bench_engine.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

os.environ.setdefault("REPRO_CELL_CACHE", "off")

from bench_sweep import SWEEP                                     # noqa: E402
from repro.experiments.cells import summarize, summary_digest     # noqa: E402
from repro.experiments.runner import run_experiment               # noqa: E402
from repro.sim.engine import Engine                               # noqa: E402
from repro.sim.process import Queue, Timeout                      # noqa: E402


def bench_timer_path(events: int) -> float:
    """Events/sec for a process sleeping in a ``yield Timeout`` loop."""
    engine = Engine(seed=0)

    def sleeper(n: int):
        timeout = Timeout(1e-6)
        for _ in range(n):
            yield timeout

    engine.spawn(sleeper(events))
    start = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - start
    return events / elapsed


def bench_ready_path(rounds: int) -> float:
    """Events/sec for two processes ping-ponging over queues.

    Every round is two ready-queue resumes (one per direction), so the
    measured event count is ``2 * rounds``.
    """
    engine = Engine(seed=0)
    ping, pong = Queue(engine), Queue(engine)

    def left(n: int):
        put = pong.put
        get = ping.get()
        put(0)
        for _ in range(n):
            yield get
            put(0)

    def right(n: int):
        put = ping.put
        get = pong.get()
        for _ in range(n):
            yield get
            put(0)

    engine.spawn(left(rounds))
    engine.spawn(right(rounds))
    start = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - start
    return 2 * rounds / elapsed


def bench_cold_cell(settings):
    """Wall seconds + events/sec for one full uncached simulation cell."""
    start = time.perf_counter()
    result = run_experiment(settings)
    summary = summarize(result)
    elapsed = time.perf_counter() - start
    events = result.primary_broker.engine._seq
    return elapsed, events, summary_digest(summary)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workloads for CI (seconds, not minutes)")
    parser.add_argument("--out", type=str,
                        default=os.path.join(os.path.dirname(os.path.dirname(
                            os.path.abspath(__file__))), "BENCH_engine.json"),
                        help="output JSON path (default: repo root)")
    args = parser.parse_args(argv)

    if args.smoke:
        timer_events, ready_rounds = 20_000, 10_000
    else:
        timer_events, ready_rounds = 300_000, 150_000
    cell = SWEEP[0]

    print(f"bench_engine: smoke={args.smoke}")
    timer_eps = bench_timer_path(timer_events)
    print(f"  timer (heap) path : {timer_eps:12,.0f} events/s")
    ready_eps = bench_ready_path(ready_rounds)
    print(f"  ready-queue path  : {ready_eps:12,.0f} events/s")
    cell_seconds, cell_events, digest = bench_cold_cell(cell)
    cell_eps = cell_events / cell_seconds
    print(f"  cold cell (macro) : {cell_seconds:8.3f} s, "
          f"{cell_events:,} events, {cell_eps:12,.0f} events/s")

    report = {
        "smoke": args.smoke,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "micro": {
            "timer_events_per_sec": round(timer_eps),
            "ready_events_per_sec": round(ready_eps),
            "timer_events": timer_events,
            "ready_rounds": ready_rounds,
        },
        "macro": {
            "cold_cell_seconds": round(cell_seconds, 4),
            "cold_cell_events": cell_events,
            "cold_cell_events_per_sec": round(cell_eps),
            "cell": {
                "policy": cell.policy.name,
                "seed": cell.seed,
                "crash_at": cell.crash_at,
                "paper_total": cell.paper_total,
                "scale": cell.scale,
            },
            "digest": digest,
        },
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
