#!/usr/bin/env python3
"""Time a small fixed sweep through the parallel executor and cell cache.

Runs the same 2-policy x 3-seed x {crash, fault-free} sweep (12 cells)
four ways — serial cold, parallel cold, parallel warm-memory, and
warm-disk in a fresh cache pass — and writes ``BENCH_sweep.json`` at the
repo root so later PRs can track the perf trajectory.  The sweep runs in
a throwaway cache directory: it never reads from or writes to
``benchmarks/.cellcache/``.

Usage::

    PYTHONPATH=src python tools/bench_sweep.py [--jobs N] [--out PATH]

``--jobs`` defaults to ``min(4, cpu_count)``.  Speedups are hardware
dependent; on a single-core container the parallel pass will not beat
serial, and the JSON records whatever was measured.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from dataclasses import replace

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.core.policy import FCFS_MINUS, FRAME                   # noqa: E402
from repro.experiments import cellcache, cells                    # noqa: E402
from repro.experiments.parallel import run_cells                  # noqa: E402
from repro.experiments.runner import ExperimentSettings           # noqa: E402

BASE = ExperimentSettings(paper_total=4525, scale=0.05,
                          warmup=1.0, measure=4.0, grace=0.5)
SWEEP = [replace(BASE, policy=policy, seed=seed, crash_at=crash_at)
         for policy in (FRAME, FCFS_MINUS)
         for seed in (0, 1, 2)
         for crash_at in (None, BASE.measure / 2.0)]


def _timed(label: str, fn):
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    print(f"  {label:<24s} {elapsed:8.3f} s")
    return elapsed, result


def _digests(summaries) -> list:
    return [cells.summary_digest(summary) for summary in summaries]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int,
                        default=max(2, min(4, os.cpu_count() or 1)),
                        help="workers for the parallel passes (default: "
                             "min(4, cpu_count), at least 2 so the pool "
                             "is exercised even on one core)")
    parser.add_argument("--out", type=str,
                        default=os.path.join(os.path.dirname(os.path.dirname(
                            os.path.abspath(__file__))), "BENCH_sweep.json"),
                        help="output JSON path (default: repo root)")
    args = parser.parse_args(argv)

    cache_root = tempfile.mkdtemp(prefix="bench-cellcache-")
    cellcache.set_cache_dir(cache_root)
    print(f"bench_sweep: {len(SWEEP)} cells, jobs={args.jobs}, "
          f"cpus={os.cpu_count()}")
    try:
        cells.clear_cache()
        cellcache.clear_disk_cache()
        serial_cold, serial_summaries = _timed(
            "serial cold", lambda: run_cells(SWEEP, jobs=1))
        digests = _digests(serial_summaries)

        cells.clear_cache()
        cellcache.clear_disk_cache()
        parallel_cold, parallel_summaries = _timed(
            f"parallel cold (x{args.jobs})",
            lambda: run_cells(SWEEP, jobs=args.jobs))

        warm_memory, warm_summaries = _timed(
            "warm (memory)", lambda: run_cells(SWEEP, jobs=args.jobs))

        cells.clear_cache()          # fresh-process equivalent: disk only
        warm_disk, disk_summaries = _timed(
            "warm (disk)", lambda: run_cells(SWEEP, jobs=args.jobs))

        # Determinism check: every pass (serial, parallel, both warm paths)
        # must reproduce the exact same per-cell results.
        digests_consistent = all(
            _digests(summaries) == digests
            for summaries in (parallel_summaries, warm_summaries,
                              disk_summaries))
        if not digests_consistent:
            print("WARNING: cell digests differ across passes", file=sys.stderr)
    finally:
        cellcache.set_cache_dir(None)
        shutil.rmtree(cache_root, ignore_errors=True)

    report = {
        "sweep": {
            "cells": len(SWEEP),
            "paper_total": BASE.paper_total,
            "scale": BASE.scale,
            "policies": ["FRAME", "FCFS-"],
            "seeds": 3,
        },
        "jobs": args.jobs,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "seconds": {
            "serial_cold": round(serial_cold, 4),
            "parallel_cold": round(parallel_cold, 4),
            "warm_memory": round(warm_memory, 4),
            "warm_disk": round(warm_disk, 4),
        },
        "speedup": {
            "parallel_vs_serial": round(serial_cold / parallel_cold, 3),
            "warm_disk_vs_serial_cold": round(serial_cold / warm_disk, 1),
        },
        # Per-cell result digests (input order): identical digests across
        # code versions mean an optimization changed nothing observable.
        "digests": digests,
        "digests_consistent_across_passes": digests_consistent,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    print(f"  parallel speedup : {report['speedup']['parallel_vs_serial']}x")
    print(f"  warm-disk speedup: "
          f"{report['speedup']['warm_disk_vs_serial_cold']}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
