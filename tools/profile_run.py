#!/usr/bin/env python3
"""Profile a single simulation cell under cProfile.

Runs one cell of the standard benchmark sweep (the same 12-cell grid as
``tools/bench_sweep.py``) with the cell cache bypassed, and prints the
top-N entries by cumulative time — the first place to look when the
per-event cost of the engine regresses.

Usage::

    PYTHONPATH=src python tools/profile_run.py [--cell N] [--top N]
                                               [--sort cumulative|tottime]
                                               [--json PATH]

``--cell`` indexes the sweep grid (policy x seed x crash); ``--json``
additionally writes the rows as machine-readable JSON so a profile can be
diffed across commits.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import os
import pstats
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

os.environ.setdefault("REPRO_CELL_CACHE", "off")

from bench_sweep import SWEEP                                     # noqa: E402
from repro.experiments.cells import summarize, summary_digest     # noqa: E402
from repro.experiments.runner import run_experiment               # noqa: E402


def _stats_rows(stats: pstats.Stats, top: int) -> list:
    """Flatten a pstats table into JSON-friendly rows (already sorted)."""
    rows = []
    for func in stats.fcn_list[:top]:                  # type: ignore[attr-defined]
        cc, nc, tt, ct, _callers = stats.stats[func]   # type: ignore[attr-defined]
        filename, line, name = func
        rows.append({
            "function": f"{filename}:{line}({name})",
            "ncalls": nc,
            "primitive_calls": cc,
            "tottime": round(tt, 6),
            "cumtime": round(ct, 6),
        })
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cell", type=int, default=0,
                        help=f"sweep cell index, 0..{len(SWEEP) - 1} "
                             "(default: 0)")
    parser.add_argument("--top", type=int, default=30,
                        help="number of rows to show (default: 30)")
    parser.add_argument("--sort", choices=("cumulative", "tottime"),
                        default="cumulative",
                        help="stat to sort by (default: cumulative)")
    parser.add_argument("--json", type=str, default=None, metavar="PATH",
                        help="also write the rows as JSON to PATH")
    args = parser.parse_args(argv)

    if not 0 <= args.cell < len(SWEEP):
        parser.error(f"--cell must be in 0..{len(SWEEP) - 1}")
    settings = SWEEP[args.cell]
    print(f"profiling cell {args.cell}: policy={settings.policy.name} "
          f"seed={settings.seed} crash_at={settings.crash_at}")

    profile = cProfile.Profile()
    start = time.perf_counter()
    profile.enable()
    result = run_experiment(settings)
    summary = summarize(result)
    profile.disable()
    elapsed = time.perf_counter() - start

    stream = io.StringIO()
    stats = pstats.Stats(profile, stream=stream)
    stats.sort_stats(args.sort)
    stats.print_stats(args.top)
    print(stream.getvalue())
    digest = summary_digest(summary)
    print(f"cell wall time (profiled): {elapsed:.3f} s")
    print(f"result digest            : {digest}")

    if args.json:
        report = {
            "cell": args.cell,
            "policy": settings.policy.name,
            "seed": settings.seed,
            "crash_at": settings.crash_at,
            "sort": args.sort,
            "profiled_seconds": round(elapsed, 4),
            "digest": digest,
            "rows": _stats_rows(stats, args.top),
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
