#!/usr/bin/env python3
"""Seeded chaos harness: randomized fault schedules over a live runtime.

Drives a :class:`~repro.runtime.deployment.LocalDeployment` (with
``chaos=True``, so both inter-broker links run through
:class:`~repro.runtime.chaosproxy.ChaosProxy`) through a **seeded,
reproducible** schedule of network and process faults, publishing real
traffic throughout, and asserts the FRAME invariants
(:mod:`repro.runtime.invariants`) after every heal:

* zero loss of admitted messages,
* at-most-once delivery after dedup (no phantom sequence numbers),
* per-topic gapless sequence coverage, and
* at most one unfenced Primary (split-brain resolves by epoch fencing).

The schedule is a pure function of ``(seed, duration)`` — the same seed
always yields the same fault sequence, so a failing run is replayable
with ``--seed N``.  Every schedule covers at least four distinct fault
kinds (partition, one-way blackhole, latency injection, Backup
crash/restart) and always ends with the **split-brain drill**: partition
until the Backup promotes, publish into the stale Primary on the
minority side, heal, and require the stale Primary to demote to
``fenced`` with zero message loss.

Publish bursts per fault window stay within the publisher's retention
(the replicated topic keeps 8), so FRAME's retention argument makes
"zero loss" the exact expectation rather than an approximation.

Run:  python tools/chaos_runtime.py --seed 1 --duration 10
Exit: 0 when every invariant held, 1 otherwise (report on stdout,
      optionally mirrored to ``--json``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import EDGE, TopicSpec  # noqa: E402
from repro.core.timing import DeadlineParameters  # noqa: E402
from repro.runtime.broker import FENCED  # noqa: E402
from repro.runtime.deployment import LocalDeployment  # noqa: E402
from repro.runtime.invariants import InvariantChecker  # noqa: E402

# ----------------------------------------------------------------------
# Workload: one replicated topic, one Proposition-1-suppressed topic.
# With failover_time=0.5 below: topic 0 has (N+L)*T - D = -0.4 < 0.49 so
# it needs replication; topic 1 has 3.2 - 2.0 = 1.2 > 0.49 so
# replication is suppressed — chaos exercises both plan branches.
# ----------------------------------------------------------------------
TOPICS = [
    TopicSpec(topic_id=0, period=0.2, deadline=2.0, loss_tolerance=0,
              retention=8, destination=EDGE, category=2),
    TopicSpec(topic_id=1, period=0.2, deadline=2.0, loss_tolerance=0,
              retention=16, destination=EDGE, category=3),
]

PARAMS = DeadlineParameters(
    delta_pb=0.01, delta_bb=0.01, delta_bs_edge=0.02,
    delta_bs_cloud=0.1, failover_time=0.5)

#: Max messages published per topic inside any single fault window —
#: strictly below topic 0's retention of 8, so the retention buffer
#: provably covers every fail-over/fencing resend.
BURST = 6

#: The four fault kinds every schedule must contain at least once.
REQUIRED_KINDS = ("partition", "blackhole", "latency",
                  "crash_restart_backup")

#: Optional extras the scheduler may add when the duration allows.
EXTRA_KINDS = ("bandwidth", "reset_connections", "partition", "blackhole",
               "latency")

#: Rough wall-clock cost of one op (fault hold + publish + settle), used
#: only to size the schedule to ``--duration``; the run is not clamped.
OP_COST = {"partition": 1.6, "blackhole": 1.4, "latency": 1.6,
           "bandwidth": 1.6, "reset_connections": 1.2,
           "crash_restart_backup": 2.5, "split_brain": 8.0}


def build_schedule(seed: int, duration: float) -> List[Dict[str, object]]:
    """Deterministically expand ``(seed, duration)`` into a fault plan.

    Pure: only :class:`random.Random` seeded with ``seed`` is consulted,
    so the same arguments always produce the same schedule.
    """
    rng = random.Random(seed)
    ops: List[Dict[str, object]] = []
    for kind in REQUIRED_KINDS:
        ops.append(_op(rng, kind))
    rng.shuffle(ops)
    budget = duration - OP_COST["split_brain"] - sum(
        OP_COST[op["kind"]] for op in ops)
    while budget > 0:
        kind = rng.choice(EXTRA_KINDS)
        ops.append(_op(rng, kind))
        budget -= OP_COST[kind]
    # The split-brain drill is always last: it ends with a promoted
    # Backup and a fenced ex-Primary, a topology the simpler ops do not
    # expect to start from.
    ops.append({"kind": "split_brain"})
    return ops


def _op(rng: random.Random, kind: str) -> Dict[str, object]:
    if kind == "partition":
        # Short of the promotion horizon (watch_grace + misses ≈ 3 s),
        # so the Backup rides it out without promoting.
        return {"kind": kind, "hold": round(rng.uniform(0.3, 0.7), 3)}
    if kind == "blackhole":
        return {"kind": kind,
                "proxy": rng.choice(["to_backup", "to_primary"]),
                "direction": rng.choice(["c2s", "s2c"]),
                "hold": round(rng.uniform(0.3, 0.6), 3)}
    if kind == "latency":
        return {"kind": kind,
                "latency": round(rng.uniform(0.02, 0.08), 3),
                "jitter": round(rng.uniform(0.0, 0.02), 3)}
    if kind == "bandwidth":
        return {"kind": kind,
                "bytes_per_second": rng.choice([4096, 8192, 16384])}
    if kind == "reset_connections":
        return {"kind": kind,
                "proxy": rng.choice(["to_backup", "to_primary"])}
    if kind == "crash_restart_backup":
        return {"kind": kind, "downtime": round(rng.uniform(0.2, 0.5), 3)}
    raise ValueError(f"unknown fault kind {kind!r}")


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
class ChaosError(AssertionError):
    """The harness itself could not complete an op (distinct from an
    invariant violation, which is reported, not raised)."""


async def publish_burst(publisher, count: int = BURST,
                        gap: float = 0.02) -> None:
    for index in range(count):
        await publisher.publish({spec.topic_id: f"chaos-{index}"
                                 for spec in TOPICS})
        await asyncio.sleep(gap)


async def wait_until(predicate, timeout: float, what: str,
                     interval: float = 0.02) -> None:
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() >= deadline:
            raise ChaosError(what)
        await asyncio.sleep(interval)


def _proxy(deployment: LocalDeployment, which: str):
    return (deployment.proxy_to_backup if which == "to_backup"
            else deployment.proxy_to_primary)


async def run_op(deployment: LocalDeployment, publisher,
                 op: Dict[str, object], timeout: float) -> None:
    kind = op["kind"]
    if kind == "partition":
        deployment.partition()
        await publish_burst(publisher)
        await asyncio.sleep(op["hold"])
        deployment.heal()
    elif kind == "blackhole":
        proxy = _proxy(deployment, op["proxy"])
        proxy.blackhole(op["direction"])
        await publish_burst(publisher)
        await asyncio.sleep(op["hold"])
        deployment.heal()
    elif kind == "latency":
        deployment.proxy_to_backup.set_latency(op["latency"], op["jitter"])
        deployment.proxy_to_primary.set_latency(op["latency"], op["jitter"])
        await publish_burst(publisher)
        deployment.heal()
    elif kind == "bandwidth":
        deployment.proxy_to_backup.set_bandwidth(op["bytes_per_second"])
        await publish_burst(publisher)
        deployment.heal()
    elif kind == "reset_connections":
        _proxy(deployment, op["proxy"]).reset_connections()
        await publish_burst(publisher)
        # The supervised peer link / watcher reconnects on its own;
        # nothing to heal (resets are instantaneous faults).
    elif kind == "crash_restart_backup":
        await deployment.crash_backup()
        await publish_burst(publisher)
        await asyncio.sleep(op["downtime"])
        await deployment.restart_backup(timeout=timeout)
    elif kind == "split_brain":
        await run_split_brain(deployment, publisher, timeout)
    else:
        raise ChaosError(f"unknown fault kind {kind!r}")


async def run_split_brain(deployment: LocalDeployment, publisher,
                          timeout: float) -> None:
    """Partition until the Backup promotes, publish into the stale
    Primary, heal, and wait for epoch fencing to resolve the brain."""
    stale = deployment.primary
    deployment.partition()
    await asyncio.wait_for(deployment.backup.promoted.wait(),
                           timeout=timeout)
    # Publish into the stale Primary (the publisher still points at it):
    # these are the messages only retention + fail-over resend can save.
    await publish_burst(publisher)
    deployment.heal()
    await wait_until(lambda: stale.role == FENCED, timeout,
                     "stale Primary was not fenced after the heal")
    await asyncio.wait_for(publisher.failed_over.wait(), timeout=timeout)
    # One post-fail-over burst proves the promoted Primary serves.
    await publish_burst(publisher)


async def chaos(args) -> Dict[str, object]:
    schedule = build_schedule(args.seed, args.duration)
    report: Dict[str, object] = {
        "seed": args.seed, "duration": args.duration,
        "schedule": schedule, "ops": [], "ok": True,
    }
    deployment = LocalDeployment(
        TOPICS, params=PARAMS, chaos=True,
        poll_interval=0.1, reply_timeout=0.3, miss_threshold=5)
    await deployment.start()
    try:
        subscriber = await deployment.add_subscriber()
        publisher = await deployment.add_publisher(publisher_id="chaos")
        checker = InvariantChecker(deployment, [publisher], [subscriber],
                                   timeout=args.timeout)
        # Baseline traffic before any fault.
        await publish_burst(publisher)
        baseline = await checker.check_all()
        report["ops"].append({"kind": "baseline",
                              **baseline.as_dict()})
        for op in schedule:
            await run_op(deployment, publisher, op, args.timeout)
            result = await checker.check_all()
            entry = dict(op)
            entry.update(result.as_dict())
            report["ops"].append(entry)
            status = "ok" if result.ok else "VIOLATED"
            print(f"op {op['kind']}: {status}")
            if not result.ok:
                report["ok"] = False
                for violation in result.violations:
                    print(f"  {violation.invariant}: {violation.detail}")
        # Summary stats for the artifact.
        report["fencing"] = deployment.primary.snapshot()["fencing"]
        report["proxies"] = {
            "to_backup": deployment.proxy_to_backup.stats(),
            "to_primary": deployment.proxy_to_primary.stats(),
        }
        report["published"] = dict(publisher._seq)
    finally:
        await deployment.close()
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Seeded chaos harness for the FRAME runtime")
    parser.add_argument("--seed", type=int, default=1,
                        help="schedule seed (same seed ⇒ same faults)")
    parser.add_argument("--duration", type=float, default=10.0,
                        help="approximate schedule length in seconds")
    parser.add_argument("--timeout", type=float, default=10.0,
                        help="per-wait timeout (promotion, fencing, ...)")
    parser.add_argument("--json", type=Path, default=None,
                        help="also write the JSON report to this path")
    args = parser.parse_args(argv)

    try:
        report = asyncio.run(chaos(args))
    except ChaosError as exc:
        print(f"CHAOS HARNESS FAILED: {exc}", file=sys.stderr)
        return 1

    if args.json is not None:
        args.json.write_text(json.dumps(report, indent=2, default=str))
        print(f"report written to {args.json}")
    violations = sum(len(entry.get("violations", []))
                     for entry in report["ops"])
    print(f"chaos seed={args.seed}: {len(report['ops']) - 1} ops, "
          f"{violations} invariant violations")
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
