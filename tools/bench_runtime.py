#!/usr/bin/env python3
"""Runtime data-plane load benchmark: publishers × subscribers over TCP.

Drives a full :class:`LocalDeployment` (Primary + Backup on loopback) with
N publishers and M subscribers, every message a real wire round trip:
publisher → Primary → EDF dispatch → subscriber.  Four quadrants isolate
the two data-plane levers this repo ships:

* codec   — length-prefixed JSON vs the ``bin1`` struct-packed codec;
* batching — one ``write``+``drain`` per frame vs adaptive micro-batching
  (publisher cork, per-subscriber outbound queues, corked flushes).

``json_unbatched`` is the pre-overhaul baseline (what the seed runtime
did); ``binary_batched`` is the shipping default.  A fifth section
measures the journal write path (DiskLog policy): fsync-per-record vs
group commit.

Reported per quadrant: end-to-end msgs/sec (publish-to-all-subscribers
completion), delivery p50/p99 latency, and bytes on the wire per message
in each direction.  Writes ``BENCH_runtime.json`` at the repo root so the
perf trajectory is tracked per PR.  ``--smoke`` shrinks the workload for
CI; numbers from a loaded CI box are noisy and only the committed
(non-smoke) JSON should be compared across commits.

Usage::

    PYTHONPATH=src python tools/bench_runtime.py [--smoke] [--out PATH]
        [--publishers N] [--subscribers M] [--messages K]
        [--payload BYTES] [--rate MSGS_PER_SEC]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import sys
import tempfile
import time
from typing import Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.core.model import EDGE, TopicSpec                       # noqa: E402
from repro.core.policy import DISK_LOG, FRAME, ConfigPolicy        # noqa: E402
from repro.core.timing import DeadlineParameters                   # noqa: E402
from repro.core.units import ms                                    # noqa: E402
from repro.runtime.deployment import LocalDeployment               # noqa: E402

PARAMS = DeadlineParameters(
    delta_pb=ms(5), delta_bb=ms(5), delta_bs_edge=ms(10),
    delta_bs_cloud=ms(50), failover_time=2.0,
)


def _bench_topic(topic_id: int) -> TopicSpec:
    """A replication-suppressed topic: the quadrants measure the
    publish→dispatch→deliver path, not Backup traffic (the soak and the
    peer-link tests cover that)."""
    return TopicSpec(topic_id=topic_id, period=3.0, deadline=5.0,
                     loss_tolerance=0, retention=10, destination=EDGE,
                     category=3)


def _percentile(sorted_values: List[float], q: float) -> Optional[float]:
    if not sorted_values:
        return None
    index = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[index]


async def _run_scenario(*, publishers: int, subscribers: int, messages: int,
                        payload_bytes: int, rate: float, binary: bool,
                        batched: bool, policy: ConfigPolicy = FRAME,
                        journal_path: Optional[str] = None,
                        journal_group_commit: bool = True,
                        timeout: float = 180.0) -> Dict[str, object]:
    specs = [_bench_topic(i) for i in range(publishers)]
    overrides: Dict[str, object] = {
        "enable_binary_codec": binary,
        "batch_dispatch": batched,
        "journal_group_commit": journal_group_commit,
        # Lossless backpressure: the bench measures sustained throughput,
        # so a full subscriber queue must pace dispatch, not shed load.
        "sub_queue_policy": "block",
    }
    if journal_path is not None:
        overrides["journal_path"] = journal_path
    deployment = LocalDeployment(
        specs, policy=policy, params=PARAMS,
        # Slow control plane: the watchdogs must never mistake benchmark
        # backlog for a dead broker and fail over mid-measurement.
        poll_interval=5.0, reply_timeout=2.0, miss_threshold=1000,
        broker_overrides=overrides)
    await deployment.start()
    payload = "x" * payload_bytes
    try:
        subs = [await deployment.add_subscriber(binary=binary)
                for _ in range(subscribers)]
        pubs = [await deployment.add_publisher(
                    [spec], publisher_id=f"bench-pub-{spec.topic_id}",
                    binary=binary, cork=batched)
                for spec in specs]

        interval = 1.0 / rate if rate > 0 else 0.0

        async def pump(pub, spec):
            next_at = time.perf_counter()
            for _ in range(messages):
                await pub.publish({spec.topic_id: payload})
                if interval:
                    next_at += interval
                    delay = next_at - time.perf_counter()
                    if delay > 0:
                        await asyncio.sleep(delay)
            await pub.flush()

        def delivered_total() -> int:
            return sum(len(sub.received.get(spec.topic_id, ()))
                       for sub in subs for spec in specs)

        expected = publishers * messages * subscribers
        start = time.perf_counter()
        await asyncio.gather(*(pump(pub, spec)
                               for pub, spec in zip(pubs, specs)))
        deadline = start + timeout
        while delivered_total() < expected and time.perf_counter() < deadline:
            await asyncio.sleep(0.005)
        elapsed = time.perf_counter() - start

        total_published = publishers * messages
        delivered = delivered_total()
        latencies = sorted(
            latency
            for sub in subs
            for per_topic in sub.received.values()
            for latency in per_topic.values())
        publish_bytes = sum(pub.bytes_sent for pub in pubs)
        deliver_bytes = sum(sub.bytes_received for sub in subs)
        plane = deployment.primary.snapshot().get("data_plane", {})
        result: Dict[str, object] = {
            "complete": delivered >= expected,
            "published": total_published,
            "delivered": delivered,
            "expected_deliveries": expected,
            "elapsed_s": round(elapsed, 4),
            "msgs_per_sec": round(total_published / elapsed, 1),
            "deliveries_per_sec": round(delivered / elapsed, 1),
            "latency_p50_ms": (round(_percentile(latencies, 0.50) * 1e3, 3)
                               if latencies else None),
            "latency_p99_ms": (round(_percentile(latencies, 0.99) * 1e3, 3)
                               if latencies else None),
            "publish_bytes_per_msg": (round(publish_bytes / total_published, 1)
                                      if total_published else None),
            "deliver_bytes_per_msg": (round(deliver_bytes / delivered, 1)
                                      if delivered else None),
            "broker_flushes": plane.get("flushes"),
            "broker_frames_flushed": plane.get("frames_flushed"),
            "journal_flushes": plane.get("journal_flushes"),
            "journal_records": plane.get("journal_records"),
        }
        flushes = plane.get("flushes") or 0
        if flushes:
            result["avg_flush_batch"] = round(
                plane.get("frames_flushed", 0) / flushes, 2)
        return result
    finally:
        await deployment.close()


def run_scenario(**kwargs) -> Dict[str, object]:
    return asyncio.run(_run_scenario(**kwargs))


QUADRANTS = (
    ("json_unbatched", dict(binary=False, batched=False)),
    ("json_batched", dict(binary=False, batched=True)),
    ("binary_unbatched", dict(binary=True, batched=False)),
    ("binary_batched", dict(binary=True, batched=True)),
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for CI (seconds, not minutes)")
    parser.add_argument("--publishers", type=int, default=None)
    parser.add_argument("--subscribers", type=int, default=None)
    parser.add_argument("--messages", type=int, default=None,
                        help="messages per publisher")
    parser.add_argument("--payload", type=int, default=16,
                        help="payload bytes per message (paper-scale: 16)")
    parser.add_argument("--rate", type=float, default=0.0,
                        help="per-publisher msgs/sec (0 = as fast as possible)")
    parser.add_argument("--timeout", type=float, default=180.0,
                        help="per-scenario completion timeout (seconds)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="runs per quadrant, best kept (default: 2, "
                             "smoke: 1) — single-core boxes are noisy")
    parser.add_argument("--out", type=str,
                        default=os.path.join(os.path.dirname(os.path.dirname(
                            os.path.abspath(__file__))), "BENCH_runtime.json"),
                        help="output JSON path (default: repo root)")
    args = parser.parse_args(argv)

    if args.smoke:
        publishers = args.publishers or 1
        subscribers = args.subscribers or 1
        messages = args.messages or 300
    else:
        publishers = args.publishers or 2
        subscribers = args.subscribers or 2
        messages = args.messages or 4000
    journal_messages = max(50, messages // 4)
    repeats = args.repeats or (1 if args.smoke else 2)

    workload = dict(publishers=publishers, subscribers=subscribers,
                    messages=messages, payload_bytes=args.payload,
                    rate=args.rate, timeout=args.timeout)
    print(f"bench_runtime: smoke={args.smoke} publishers={publishers} "
          f"subscribers={subscribers} messages={messages} "
          f"payload={args.payload}B rate={args.rate or 'max'}")

    quadrants: Dict[str, Dict[str, object]] = {}
    for name, toggles in QUADRANTS:
        result = max((run_scenario(**workload, **toggles)
                      for _ in range(repeats)),
                     key=lambda r: r["msgs_per_sec"])
        quadrants[name] = result
        print(f"  {name:17s}: {result['msgs_per_sec']:10,.0f} msgs/s  "
              f"p50 {result['latency_p50_ms']} ms  "
              f"p99 {result['latency_p99_ms']} ms  "
              f"{result['deliver_bytes_per_msg']} B/msg"
              f"{'' if result['complete'] else '  [INCOMPLETE]'}")

    baseline = quadrants["json_unbatched"]["msgs_per_sec"]
    overhauled = quadrants["binary_batched"]["msgs_per_sec"]
    speedup = round(overhauled / baseline, 2) if baseline else None
    print(f"  binary_batched vs json_unbatched: {speedup}x")

    # Journal write path: fsync per record vs group commit (DiskLog).
    journal: Dict[str, object] = {"messages": journal_messages}
    for label, group in (("per_record", False), ("group_commit", True)):
        with tempfile.TemporaryDirectory() as tmp:
            result = run_scenario(
                **{**workload, "messages": journal_messages},
                binary=True, batched=True, policy=DISK_LOG,
                journal_path=os.path.join(tmp, "journal.ndjson"),
                journal_group_commit=group)
        journal[label] = result
        print(f"  journal {label:13s}: {result['msgs_per_sec']:10,.0f} msgs/s  "
              f"({result['journal_flushes']} flushes / "
              f"{result['journal_records']} records)")
    per_record = journal["per_record"]["msgs_per_sec"]
    journal["group_commit_speedup"] = (
        round(journal["group_commit"]["msgs_per_sec"] / per_record, 2)
        if per_record else None)

    report = {
        "smoke": args.smoke,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "workload": {"publishers": publishers, "subscribers": subscribers,
                     "messages_per_publisher": messages,
                     "payload_bytes": args.payload, "rate": args.rate,
                     "repeats": repeats},
        "quadrants": quadrants,
        "speedup_binary_batched_vs_json_unbatched": speedup,
        "journal": journal,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
