#!/usr/bin/env python3
"""Chaos soak for the asyncio runtime: kill brokers, assert zero loss.

Runs a live Primary/Backup deployment with periodic publishers, then
repeatedly fail-stops the Backup and restarts it (SIGKILL-equivalent
``close()``), asserting after every round that

* the Primary's supervised peer link reconnected on its own,
* replication resumed into the restarted Backup,
* **zero dispatched-message loss**: every sequence number ever published
  was delivered to the subscriber, and
* the ``stats`` snapshot reflects the disconnect/reconnect episode.

With ``--failover`` the drill ends by killing the Primary too: the
Backup promotes, the publishers redirect, and a *fresh* Backup is
attached to the survivor (runtime re-protection), restoring one-failure
tolerance before a final round of traffic.

The defaults are time-boxed for CI smoke use (a few seconds); raise
``--rounds``/``--duration`` for a real soak.

Run:  python tools/soak_runtime.py --rounds 3 --failover
Exit: 0 on success, 1 on any violated invariant.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import EDGE, TopicSpec  # noqa: E402
from repro.runtime.broker import BACKUP  # noqa: E402
from repro.runtime.client import fetch_stats  # noqa: E402
from repro.runtime.deployment import LocalDeployment  # noqa: E402

#: One replication-needing topic and one Proposition-1-suppressed topic,
#: so the drill exercises both plan branches.
TOPICS = [
    TopicSpec(topic_id=0, period=3.0, deadline=5.0, loss_tolerance=0,
              retention=1, destination=EDGE, category=2),
    TopicSpec(topic_id=1, period=3.0, deadline=5.0, loss_tolerance=3,
              retention=10, destination=EDGE, category=3),
]


class SoakError(AssertionError):
    """An invariant the soak promised was violated."""


async def wait_until(predicate, timeout: float, what: str,
                     interval: float = 0.02) -> None:
    deadline = asyncio.get_event_loop().time() + timeout
    while not predicate():
        if asyncio.get_event_loop().time() >= deadline:
            raise SoakError(what)
        await asyncio.sleep(interval)


async def publish_for(publisher, duration: float, period: float) -> None:
    """Publish one message per topic every ``period`` for ``duration``."""
    until = asyncio.get_event_loop().time() + duration
    while asyncio.get_event_loop().time() < until:
        await publisher.publish({spec.topic_id: f"t={time.time():.3f}"
                                 for spec in TOPICS})
        await asyncio.sleep(period)


def published_seqs(publisher) -> dict:
    return dict(publisher._seq)


async def assert_zero_loss(publisher, subscriber, timeout: float) -> int:
    """Every published sequence number must eventually be delivered."""
    total = 0
    for topic_id, high in published_seqs(publisher).items():
        expected = set(range(1, high + 1))
        await wait_until(
            lambda t=topic_id, e=expected: subscriber.delivered_seqs(t) >= e,
            timeout,
            f"dispatch loss on topic {topic_id}: missing "
            f"{sorted(expected - subscriber.delivered_seqs(topic_id))[:10]}")
        total += high
    return total


async def soak(args) -> dict:
    deployment = LocalDeployment(TOPICS, poll_interval=0.05,
                                 reply_timeout=0.2, miss_threshold=3)
    await deployment.start()
    report = {"rounds": [], "failover": None}
    try:
        subscriber = await deployment.add_subscriber()
        publisher = await deployment.add_publisher(publisher_id="soak")
        link = deployment.primary.peer_link

        await publish_for(publisher, args.duration, args.period)
        await assert_zero_loss(publisher, subscriber, args.timeout)

        for round_index in range(1, args.rounds + 1):
            disconnects_before = link.disconnects
            await deployment.crash_backup()
            await wait_until(lambda: not link.connected, args.timeout,
                             "peer link did not notice the Backup dying")
            # Publishers stay live while the Backup is down.
            await publish_for(publisher, args.duration, args.period)
            await deployment.restart_backup(timeout=args.timeout)
            await wait_until(lambda: link.connected, args.timeout,
                             "peer link did not reconnect")
            await publish_for(publisher, args.duration, args.period)
            await wait_until(
                lambda: deployment.backup.backup_buffer.total_count() > 0,
                args.timeout,
                "replication did not resume into the restarted Backup")
            delivered = await assert_zero_loss(publisher, subscriber,
                                               args.timeout)
            report["rounds"].append({
                "round": round_index,
                "messages_verified": delivered,
                "link_disconnects": link.disconnects - disconnects_before,
                "queue_flushed": link.frames_queued,
            })
            print(f"round {round_index}: zero loss across Backup blip "
                  f"({delivered} messages verified, "
                  f"link connects={link.connects})")

        stats = await fetch_stats(deployment.primary.address)
        peer = stats["peer_link"]
        if peer["disconnects"] < args.rounds:
            raise SoakError(f"stats recorded {peer['disconnects']} "
                            f"disconnects, expected >= {args.rounds}")
        if peer["reconnects"] < args.rounds:
            raise SoakError(f"stats recorded {peer['reconnects']} "
                            f"reconnects, expected >= {args.rounds}")
        if stats["workers"]["alive"] != stats["workers"]["configured"]:
            raise SoakError(f"worker pool shrank: {stats['workers']}")
        report["primary_stats"] = stats

        if args.failover:
            await deployment.crash_primary(timeout=args.timeout)
            survivor = deployment.current_primary()
            fresh = await deployment.attach_fresh_backup(timeout=args.timeout)
            await publish_for(publisher, args.duration, args.period)
            await wait_until(lambda: fresh.backup_buffer.total_count() > 0,
                             args.timeout,
                             "survivor did not replicate to the fresh Backup")
            delivered = await assert_zero_loss(publisher, subscriber,
                                               args.timeout)
            survivor_stats = await fetch_stats(survivor.address)
            report["failover"] = {
                "messages_verified": delivered,
                "survivor": survivor_stats["name"],
                "recovery_dispatched": survivor_stats["recovery_dispatched"],
                "peer_link": survivor_stats["peer_link"],
            }
            print(f"failover: survivor {survivor_stats['name']} re-protected "
                  f"by a fresh Backup, zero loss ({delivered} messages)")

        report["duplicates_suppressed"] = subscriber.duplicates
        report["ok"] = True
        return report
    finally:
        await deployment.close()


async def partition_soak(args) -> dict:
    """Short partition/heal rounds that must *not* promote the Backup.

    Routes both inter-broker links through chaos proxies, stalls them
    for less than the promotion horizon each round, and asserts that

    * the Backup rode the blip out (still ``backup``, never promoted),
    * nothing was fenced, and
    * every message published during the stall was delivered (the held
      bytes resumed in order after the heal — zero dispatch loss).
    """
    deployment = LocalDeployment(TOPICS, chaos=True, poll_interval=0.1,
                                 reply_timeout=0.3, miss_threshold=5)
    await deployment.start()
    report = {"partition_rounds": []}
    try:
        subscriber = await deployment.add_subscriber()
        publisher = await deployment.add_publisher(publisher_id="soak-part")
        for round_index in range(1, args.rounds + 1):
            deployment.partition()
            await publish_for(publisher, min(args.duration, 0.3), args.period)
            deployment.heal()
            delivered = await assert_zero_loss(publisher, subscriber,
                                               args.timeout)
            if deployment.backup.role != BACKUP:
                raise SoakError(
                    f"Backup promoted during a {min(args.duration, 0.3)}s "
                    f"partition (role={deployment.backup.role})")
            snapshot = deployment.primary.snapshot()
            if snapshot["fencing"]["fenced"]:
                raise SoakError("Primary fenced by a non-promoting blip")
            report["partition_rounds"].append({
                "round": round_index, "messages_verified": delivered,
            })
            print(f"partition round {round_index}: healed, zero loss "
                  f"({delivered} messages verified, Backup never promoted)")
        report["ok"] = True
        return report
    finally:
        await deployment.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=3,
                        help="Backup kill/restart rounds (default 3)")
    parser.add_argument("--duration", type=float, default=0.5,
                        help="seconds of publishing per phase (default 0.5)")
    parser.add_argument("--period", type=float, default=0.05,
                        help="publish period per topic (default 0.05 s)")
    parser.add_argument("--timeout", type=float, default=10.0,
                        help="per-wait timeout (default 10 s)")
    parser.add_argument("--failover", action="store_true",
                        help="end with a Primary crash + re-protection drill")
    parser.add_argument("--partition", action="store_true",
                        help="run short partition/heal rounds through chaos "
                             "proxies instead of Backup kill/restart rounds")
    parser.add_argument("--json", type=Path, default=None,
                        help="write the soak report to this file")
    args = parser.parse_args(argv)
    started = time.time()
    try:
        report = asyncio.run(partition_soak(args) if args.partition
                             else soak(args))
    except SoakError as exc:
        print(f"SOAK FAILED: {exc}", file=sys.stderr)
        return 1
    report["wall_seconds"] = round(time.time() - started, 3)
    if args.json is not None:
        args.json.write_text(json.dumps(report, indent=2, default=str))
    if args.partition:
        print(f"soak ok: {args.rounds} healed partitions, zero dispatch "
              f"loss, Backup never promoted, {report['wall_seconds']}s wall")
    else:
        print(f"soak ok: {args.rounds} Backup blips"
              f"{' + 1 failover' if args.failover else ''}, zero dispatch "
              f"loss, {report['duplicates_suppressed']} duplicates "
              f"suppressed, {report['wall_seconds']}s wall")
    return 0


if __name__ == "__main__":
    sys.exit(main())
