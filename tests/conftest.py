"""Shared test configuration.

The unit suite must stay hermetic: cells simulated here use tiny,
test-only settings and must neither read stale entries from nor leak
entries into the real persistent cache under ``benchmarks/.cellcache/``
(see :mod:`repro.experiments.cellcache`).  Point the disk cache at a
per-session temporary directory instead.
"""

import pytest

from repro.experiments import cellcache


@pytest.fixture(scope="session", autouse=True)
def _isolated_cell_cache(tmp_path_factory):
    cellcache.set_cache_dir(str(tmp_path_factory.mktemp("cellcache")))
    yield
    cellcache.set_cache_dir(None)
