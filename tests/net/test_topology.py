"""Tests for the network fabric: addressing, FIFO links, crash semantics."""

import pytest

from repro.net.link import UniformLatency
from repro.net.topology import Network
from repro.sim import Engine, Host


def setup():
    engine = Engine(seed=7)
    network = Network(engine)
    a = Host(engine, "a")
    b = Host(engine, "b")
    network.connect(a, b, 0.001)
    return engine, network, a, b


def test_send_delivers_after_link_latency():
    engine, network, a, b = setup()
    got = []
    network.register(b, "b/svc", got.append)
    assert network.send(a, "b/svc", "hello")
    engine.run()
    assert got == ["hello"]
    assert engine.now == pytest.approx(0.001)


def test_fifo_ordering_despite_jitter():
    engine = Engine(seed=7)
    network = Network(engine)
    a, b = Host(engine, "a"), Host(engine, "b")
    network.connect(a, b, UniformLatency(0.0001, 0.010))
    got = []
    network.register(b, "b/svc", got.append)
    for index in range(50):
        engine.call_after(index * 1e-5, network.send, a, "b/svc", index)
    engine.run()
    assert got == list(range(50))


def test_directions_are_independent():
    engine, network, a, b = setup()
    got_a, got_b = [], []
    network.register(a, "a/svc", got_a.append)
    network.register(b, "b/svc", got_b.append)
    network.send(a, "b/svc", "to-b")
    network.send(b, "a/svc", "to-a")
    engine.run()
    assert got_a == ["to-a"]
    assert got_b == ["to-b"]


def test_send_to_unknown_address_returns_false():
    engine, network, a, b = setup()
    assert not network.send(a, "nowhere/svc", "x")
    assert network.dropped_count == 1


def test_send_from_dead_host_fails():
    engine, network, a, b = setup()
    network.register(b, "b/svc", lambda m: None)
    a.crash()
    assert not network.send(a, "b/svc", "x")


def test_delivery_to_host_that_died_in_flight_is_dropped():
    engine, network, a, b = setup()
    got = []
    network.register(b, "b/svc", got.append)
    network.send(a, "b/svc", "x")
    engine.call_at(0.0005, b.crash)   # dies while the packet is in flight
    engine.run()
    assert got == []
    assert network.dropped_count == 1


def test_message_in_flight_from_dying_sender_still_arrives():
    engine, network, a, b = setup()
    got = []
    network.register(b, "b/svc", got.append)
    network.send(a, "b/svc", "x")
    engine.call_at(0.0005, a.crash)   # sender dies after the packet left
    engine.run()
    assert got == ["x"]


def test_missing_link_raises():
    engine = Engine()
    network = Network(engine)
    a, b = Host(engine, "a"), Host(engine, "b")
    network.register(b, "b/svc", lambda m: None)
    with pytest.raises(ValueError, match="no link"):
        network.send(a, "b/svc", "x")


def test_duplicate_link_rejected():
    engine, network, a, b = setup()
    with pytest.raises(ValueError, match="already exists"):
        network.connect(a, b, 0.002)


def test_rebinding_live_foreign_address_rejected():
    engine, network, a, b = setup()
    network.register(b, "svc", lambda m: None)
    with pytest.raises(ValueError, match="already registered"):
        network.register(a, "svc", lambda m: None)


def test_rebinding_after_owner_death_allowed():
    engine, network, a, b = setup()
    network.register(b, "svc", lambda m: None)
    b.crash()
    network.register(a, "svc", lambda m: None)  # fail-over takeover
    assert network.endpoint_host("svc") is a


def test_same_host_may_update_handler():
    engine, network, a, b = setup()
    first, second = [], []
    network.register(b, "svc", first.append)
    network.register(b, "svc", second.append)
    network.send(a, "svc", "x")
    engine.run()
    assert first == []
    assert second == ["x"]


def test_unregister():
    engine, network, a, b = setup()
    network.register(b, "svc", lambda m: None)
    network.unregister("svc")
    assert network.endpoint_host("svc") is None
    assert not network.send(a, "svc", "x")


def test_sent_count_tracks_wire_messages():
    engine, network, a, b = setup()
    network.register(b, "b/svc", lambda m: None)
    network.send(a, "b/svc", 1)
    network.send(a, "b/svc", 2)
    assert network.sent_count == 2
