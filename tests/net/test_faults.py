"""Tests for network fault models: loss, duplication, partitions, bandwidth."""

import random

import pytest

from repro.net.faults import DuplicatingLink, LossyLink
from repro.net.link import ConstantLatency
from repro.net.topology import Network
from repro.sim import Engine, Host


def wired(latency_model=None, bandwidth=None):
    engine = Engine(seed=11)
    network = Network(engine)
    a, b = Host(engine, "a"), Host(engine, "b")
    model = latency_model if latency_model is not None else ConstantLatency(0.001)
    network.connect(a, b, model, bandwidth=bandwidth)
    got = []
    network.register(b, "b/svc", got.append)
    return engine, network, a, b, got


# ----------------------------------------------------------------------
# Lossy links
# ----------------------------------------------------------------------
def test_lossy_link_drops_a_fraction():
    model = LossyLink(ConstantLatency(0.001), loss_rate=0.3)
    engine, network, a, b, got = wired(model)
    for index in range(1000):
        engine.call_after(index * 1e-4, network.send, a, "b/svc", index)
    engine.run()
    assert model.dropped > 0
    assert len(got) == 1000 - model.dropped
    assert 200 < model.dropped < 400   # ~30 %


def test_lossy_link_zero_rate_is_transparent():
    model = LossyLink(ConstantLatency(0.001), loss_rate=0.0)
    engine, network, a, b, got = wired(model)
    for index in range(100):
        network.send(a, "b/svc", index)
    engine.run()
    assert len(got) == 100
    assert model.dropped == 0


def test_lossy_link_validation():
    with pytest.raises(ValueError):
        LossyLink(ConstantLatency(0.001), loss_rate=1.0)
    with pytest.raises(ValueError):
        LossyLink(ConstantLatency(0.001), loss_rate=-0.1)


def test_dropped_packets_count_in_network_stats():
    model = LossyLink(ConstantLatency(0.001), loss_rate=0.99)
    engine, network, a, b, got = wired(model)
    for _ in range(50):
        network.send(a, "b/svc", "x")
    engine.run()
    assert network.dropped_count == model.dropped


# ----------------------------------------------------------------------
# Duplicating links
# ----------------------------------------------------------------------
def test_duplicating_link_delivers_twice():
    model = DuplicatingLink(ConstantLatency(0.001), duplicate_rate=0.5,
                            duplicate_lag=0.002)
    engine, network, a, b, got = wired(model)
    for index in range(200):
        engine.call_after(index * 1e-3, network.send, a, "b/svc", index)
    engine.run()
    assert model.duplicated > 0
    assert len(got) == 200 + model.duplicated


def test_duplicating_link_validation():
    with pytest.raises(ValueError):
        DuplicatingLink(ConstantLatency(0.001), duplicate_rate=1.5)
    with pytest.raises(ValueError):
        DuplicatingLink(ConstantLatency(0.001), duplicate_rate=0.1,
                        duplicate_lag=-1.0)


def test_subscriber_dedup_absorbs_duplicating_link():
    """End-to-end: a duplicating broker->subscriber link causes duplicate
    deliveries, all absorbed by subscriber dedup with no double-count."""
    from tests.helpers import build_mini, topic
    from repro.core.model import Message

    system = build_mini([topic(topic_id=0)])
    # Replace the primary->sub link model with a duplicating one.
    link = system.network._links[("primary", "sub")]
    link.model = DuplicatingLink(link.model, duplicate_rate=1.0)
    for seq in range(1, 6):
        system.publish([Message(0, seq, created_at=system.engine.now)])
        system.engine.run(until=system.engine.now + 0.05)
    assert system.delivered_seqs(0) == {1, 2, 3, 4, 5}
    assert system.subscriber.stats.duplicates == 5


# ----------------------------------------------------------------------
# Partitions
# ----------------------------------------------------------------------
def test_partition_blocks_and_heal_restores():
    engine, network, a, b, got = wired()
    network.partition(a, b)
    assert not network.send(a, "b/svc", "blocked")
    network.heal(a, b)
    assert network.send(a, "b/svc", "through")
    engine.run()
    assert got == ["through"]


def test_partition_blocks_both_directions():
    engine = Engine()
    network = Network(engine)
    a, b = Host(engine, "a"), Host(engine, "b")
    network.connect(a, b, 0.001)
    network.register(a, "a/svc", lambda m: None)
    network.register(b, "b/svc", lambda m: None)
    network.partition(a, b)
    assert not network.send(a, "b/svc", "x")
    assert not network.send(b, "a/svc", "y")


def test_partition_unknown_link_raises():
    engine = Engine()
    network = Network(engine)
    a, b = Host(engine, "a"), Host(engine, "b")
    with pytest.raises(ValueError, match="no link"):
        network.partition(a, b)


def test_partition_isolates_backup_not_subscribers():
    """Partitioning the broker pair stops replication but not delivery."""
    from tests.helpers import build_mini, topic
    from repro.core.model import Message

    system = build_mini([topic(topic_id=0)])   # category 2: replicates
    system.network.partition(system.primary_host, system.backup_host)
    system.publish([Message(0, 1, created_at=0.0)])
    system.engine.run(until=0.1)
    assert system.delivered_seqs(0) == {1}
    assert system.backup.backup_buffer.get(0, 1) is None


def test_split_brain_promotion_is_absorbed_by_dedup():
    """A broker-pair partition makes the Backup promote while the Primary
    is still alive (a false suspicion — the paper's fault model excludes
    partitions).  The architecture degrades safely: both brokers dispatch,
    subscribers deduplicate, and no message is lost or double-counted."""
    from tests.helpers import build_mini, topic
    from repro.core.model import Message

    system = build_mini([topic(topic_id=0)], with_publisher=True,
                        with_promoter=True)
    system.engine.call_after(0.35, system.network.partition,
                             system.primary_host, system.backup_host)
    system.engine.run(until=1.5)
    # The backup suspected the (live) primary and promoted.
    assert system.backup.stats.promotion_time is not None
    assert system.primary_host.alive
    # Publishers still reach the real primary (their path is not cut), so
    # traffic flows; any recovery re-dispatches were deduplicated.
    created = len(system.publisher_stats.created[0])
    missing = set(range(1, created - 1)) - system.delivered_seqs(0)
    assert missing == set()
    recorded = system.subscriber.stats.latency_by_seq[0]
    assert len(recorded) == len(set(recorded))   # one record per seq


# ----------------------------------------------------------------------
# Bandwidth
# ----------------------------------------------------------------------
def test_bandwidth_adds_serialization_delay():
    engine, network, a, b, got = wired(ConstantLatency(0.001), bandwidth=1000.0)
    received_at = []
    network.register(b, "b/stamped", lambda m: received_at.append(engine.now))
    network.send(a, "b/stamped", "payload", size=100)   # 100 B / 1 kB/s = 0.1 s
    engine.run()
    assert received_at[0] == pytest.approx(0.101)


def test_zero_size_has_no_serialization_delay():
    engine, network, a, b, got = wired(ConstantLatency(0.001), bandwidth=1000.0)
    network.send(a, "b/svc", "x", size=0)
    engine.run()
    assert engine.now == pytest.approx(0.001)


def test_infinite_bandwidth_ignores_size():
    engine, network, a, b, got = wired(ConstantLatency(0.001), bandwidth=None)
    network.send(a, "b/svc", "x", size=10**9)
    engine.run()
    assert engine.now == pytest.approx(0.001)
