"""Tests for latency models (link.py and cloud.py)."""

import math
import random

import pytest

from repro.net.cloud import CloudLatencyModel, LatencySpike
from repro.net.link import (
    ConstantLatency,
    LognormalLatency,
    TraceLatency,
    UniformLatency,
)


def rng():
    return random.Random(42)


# ----------------------------------------------------------------------
# Basic models
# ----------------------------------------------------------------------
def test_constant_latency():
    model = ConstantLatency(0.005)
    assert model.sample(rng(), 0.0) == 0.005
    assert model.sample(rng(), 99.0) == 0.005


def test_constant_rejects_negative():
    with pytest.raises(ValueError):
        ConstantLatency(-1.0)


def test_uniform_latency_within_bounds():
    model = UniformLatency(2e-4, 3e-4)
    r = rng()
    samples = [model.sample(r, 0.0) for _ in range(1000)]
    assert all(2e-4 <= s <= 3e-4 for s in samples)
    assert max(samples) - min(samples) > 1e-5   # actually varies


def test_uniform_rejects_bad_bounds():
    with pytest.raises(ValueError):
        UniformLatency(3e-4, 2e-4)
    with pytest.raises(ValueError):
        UniformLatency(-1e-4, 2e-4)


def test_lognormal_respects_floor():
    model = LognormalLatency(floor=0.020, median_extra=0.0005, sigma=0.6)
    r = rng()
    samples = [model.sample(r, 0.0) for _ in range(1000)]
    assert all(s > 0.020 for s in samples)
    # Median excess should be near the configured median.
    excess = sorted(s - 0.020 for s in samples)[500]
    assert 0.0003 < excess < 0.0008


def test_lognormal_rejects_bad_params():
    with pytest.raises(ValueError):
        LognormalLatency(floor=-1.0, median_extra=0.1)
    with pytest.raises(ValueError):
        LognormalLatency(floor=0.0, median_extra=0.0)


# ----------------------------------------------------------------------
# Trace replay
# ----------------------------------------------------------------------
def test_trace_latency_step_interpolation():
    model = TraceLatency([(0.0, 0.010), (10.0, 0.020), (20.0, 0.015)])
    r = rng()
    assert model.sample(r, 5.0) == 0.010
    assert model.sample(r, 10.0) == 0.020
    assert model.sample(r, 19.9) == 0.020
    assert model.sample(r, 25.0) == 0.015


def test_trace_latency_before_first_sample():
    model = TraceLatency([(10.0, 0.020)])
    assert model.sample(rng(), 0.0) == 0.020


def test_trace_latency_validation():
    with pytest.raises(ValueError):
        TraceLatency([])
    with pytest.raises(ValueError):
        TraceLatency([(0.0, -1.0)])


# ----------------------------------------------------------------------
# Cloud model (Fig. 8 driver)
# ----------------------------------------------------------------------
def test_cloud_baseline_respects_floor_and_amplitude():
    model = CloudLatencyModel(floor=0.0203, diurnal_amplitude=0.003,
                              day_length=240.0)
    baselines = [model.baseline(t) for t in range(0, 240, 5)]
    assert min(baselines) >= 0.0203 - 1e-12
    assert max(baselines) <= 0.0203 + 0.003 + 1e-12
    assert max(baselines) - min(baselines) > 0.002   # diurnal swing visible


def test_cloud_spike_adds_magnitude_while_active():
    spike = LatencySpike(start=100.0, duration=10.0, magnitude=0.104)
    model = CloudLatencyModel(floor=0.0203, diurnal_amplitude=0.0,
                              day_length=240.0, spikes=(spike,))
    assert model.baseline(99.0) == pytest.approx(0.0203)
    assert model.baseline(105.0) == pytest.approx(0.0203 + 0.104)
    assert model.baseline(110.0) == pytest.approx(0.0203)
    # Spikes recur each (compressed) day.
    assert model.baseline(240.0 + 105.0) == pytest.approx(0.0203 + 0.104)


def test_cloud_samples_never_below_minimum():
    model = CloudLatencyModel(floor=0.0205)
    r = rng()
    samples = [model.sample(r, t * 0.1) for t in range(2000)]
    assert all(s > model.minimum() for s in samples)


def test_cloud_rejects_bad_parameters():
    with pytest.raises(ValueError):
        CloudLatencyModel(floor=-1.0)
    with pytest.raises(ValueError):
        CloudLatencyModel(day_length=0.0)
    with pytest.raises(ValueError):
        CloudLatencyModel(jitter_median=0.0)
