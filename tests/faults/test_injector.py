"""Tests for fault plans and crash scenarios beyond the paper's default."""

import pytest

from repro.core.model import Message
from repro.faults.injector import CrashInjector, FaultPlan
from repro.sim import Engine, Host

from tests.helpers import build_mini, topic


# ----------------------------------------------------------------------
# FaultPlan / CrashInjector mechanics
# ----------------------------------------------------------------------
def test_primary_crash_plan():
    plan = FaultPlan.primary_crash(at=3.0)
    assert plan.crash_time_of("primary") == 3.0
    assert plan.crash_time_of("backup") is None


def test_none_plan_is_empty():
    assert FaultPlan.none().crashes == ()


def test_injector_crashes_at_scheduled_time():
    engine = Engine()
    host = Host(engine, "victim")
    injector = CrashInjector(engine, {"victim": host},
                             FaultPlan(crashes=(("victim", 2.5),)))
    engine.run(until=2.0)
    assert host.alive
    engine.run(until=3.0)
    assert not host.alive
    assert injector.injected == [("victim", 2.5)]


def test_injector_rejects_unknown_host():
    engine = Engine()
    with pytest.raises(KeyError, match="unknown host"):
        CrashInjector(engine, {}, FaultPlan(crashes=(("ghost", 1.0),)))


def test_multiple_crashes_in_one_plan():
    engine = Engine()
    a, b = Host(engine, "a"), Host(engine, "b")
    CrashInjector(engine, {"a": a, "b": b},
                  FaultPlan(crashes=(("a", 1.0), ("b", 2.0))))
    engine.run(until=3.0)
    assert not a.alive and not b.alive
    assert a.crash_time == 1.0 and b.crash_time == 2.0


# ----------------------------------------------------------------------
# Crash scenarios the paper does not run (extension coverage)
# ----------------------------------------------------------------------
def test_backup_crash_leaves_service_running_unprotected():
    """Killing the *Backup* must not disturb delivery; replication traffic
    simply disappears into the dead host."""
    system = build_mini([topic(topic_id=0)], with_publisher=True)
    system.engine.call_after(0.45, system.backup_host.crash)
    system.engine.run(until=1.2)
    created = len(system.publisher_stats.created[0])
    assert created >= 8
    missing = set(range(1, created - 1)) - system.delivered_seqs(0)
    assert missing == set()
    # Replication attempts after the crash were sent but never arrived.
    assert system.primary.stats.replicated > 0
    assert system.backup.stats.replicas_stored < system.primary.stats.replicated


def test_double_crash_stops_the_service():
    """Both brokers dying exceeds the fault model: delivery stops, which
    is exactly what the one-failure assumption predicts."""
    system = build_mini([topic(topic_id=0)], with_publisher=True,
                        with_promoter=True)
    system.engine.call_after(0.4, system.primary_host.crash)
    system.engine.call_after(0.8, system.backup_host.crash)
    system.engine.run(until=1.5)
    delivered = system.delivered_seqs(0)
    created = len(system.publisher_stats.created[0])
    # Messages created well after the double failure cannot be delivered.
    late_seqs = {seq for seq in range(1, created + 1)
                 if system.publisher_stats.created[0][seq - 1] > 0.9}
    assert late_seqs
    assert late_seqs.isdisjoint(delivered)


def test_crash_before_any_traffic_is_survivable():
    system = build_mini([topic(topic_id=0)], with_publisher=True,
                        with_promoter=True)
    system.engine.call_after(0.001, system.primary_host.crash)
    system.engine.run(until=1.0)
    assert system.backup.stats.promotion_time is not None
    created = len(system.publisher_stats.created[0])
    missing = set(range(1, created - 1)) - system.delivered_seqs(0)
    assert missing == set()
