"""Smoke tests for the example scripts.

Every example must at least compile; the fast ones are executed end to
end (the heavier drills are exercised by the benchmarks, which run the
same sweeps with assertions).
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def test_examples_directory_is_populated():
    scripts = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))
    assert scripts == [
        "capacity_planning.py",
        "failover_drill.py",
        "iiot_factory.py",
        "live_runtime.py",
        "multi_edge_farm.py",
        "quickstart.py",
    ]


@pytest.mark.parametrize("script", sorted(EXAMPLES_DIR.glob("*.py")),
                         ids=lambda path: path.name)
def test_example_compiles(script):
    py_compile.compile(str(script), doraise=True)


def run_example(name: str, timeout: float = 180.0) -> str:
    process = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert process.returncode == 0, process.stderr
    return process.stdout


def test_capacity_planning_runs():
    out = run_example("capacity_planning.py", timeout=60.0)
    assert "admission and minimum retention" in out
    assert "REPLICATE" in out
    assert "replication removed" in out


def test_quickstart_runs():
    out = run_example("quickstart.py")
    assert "Backup promoted" in out
    assert "loss  100.0 %" in out
