"""Tests for the ASCII chart renderer."""

import math

import pytest

from repro.metrics.ascii_plot import ascii_chart, sparkline


def test_chart_contains_extremes_and_title():
    xs = list(range(10))
    ys = [0.0, 1, 2, 3, 4, 5, 6, 7, 8, 100.0]
    text = ascii_chart(xs, ys, title="demo", y_label="ms")
    assert "demo" in text
    assert "100" in text       # y max label
    assert "0" in text         # y min label
    assert "*" in text
    assert "[ms]" in text


def test_chart_flat_series_does_not_divide_by_zero():
    text = ascii_chart([0, 1, 2], [5.0, 5.0, 5.0])
    assert "*" in text


def test_chart_rejects_mismatched_lengths():
    with pytest.raises(ValueError):
        ascii_chart([1, 2], [1.0])


def test_chart_rejects_tiny_canvas():
    with pytest.raises(ValueError):
        ascii_chart([1], [1.0], width=4, height=2)


def test_chart_with_no_finite_data():
    text = ascii_chart([0.0], [math.nan])
    assert "(no data)" in text


def test_chart_row_count():
    text = ascii_chart(list(range(5)), [float(i) for i in range(5)],
                       width=20, height=6)
    lines = text.splitlines()
    # 6 grid rows + axis + footer
    assert len(lines) == 8


def test_sparkline_levels():
    line = sparkline([0.0, 0.5, 1.0])
    assert len(line) == 3
    assert line[0] == " "
    assert line[-1] == "@"


def test_sparkline_downsamples_preserving_peaks():
    values = [0.0] * 100
    values[37] = 10.0
    line = sparkline(values, width=10)
    assert len(line) == 10
    assert "@" in line          # the spike survives downsampling


def test_sparkline_empty_and_nan():
    assert sparkline([]) == ""
    assert sparkline([math.nan]) == ""
    assert "?" in sparkline([1.0, math.nan, 2.0])


def test_fig8_chart_renders():
    from repro.experiments.figures import fig8
    from repro.experiments.runner import ExperimentSettings

    result = fig8(scale=0.02, day_length=20.0,
                  settings=ExperimentSettings(warmup=1.0))
    chart = result.render_chart()
    assert "dBS (ms)" in chart
    assert "*" in chart
