"""Tests for loss accounting, latency summaries, stats, and reporting."""

import math

import pytest

from repro.core.model import LOSS_UNBOUNDED
from repro.metrics.latency import latency_summary, percentile
from repro.metrics.loss import (
    consecutive_loss_runs,
    max_consecutive_losses,
    meets_loss_tolerance,
    success_fraction,
    total_losses,
)
from repro.metrics.report import format_table, format_value
from repro.metrics.stats import mean_confidence_interval, sample_std, t_critical_95


# ----------------------------------------------------------------------
# Loss accounting
# ----------------------------------------------------------------------
def test_no_losses():
    published = [1, 2, 3, 4]
    delivered = {1, 2, 3, 4}
    assert max_consecutive_losses(published, delivered) == 0
    assert consecutive_loss_runs(published, delivered) == []
    assert total_losses(published, delivered) == 0


def test_single_loss_run():
    published = list(range(1, 11))
    delivered = set(published) - {4, 5, 6}
    assert max_consecutive_losses(published, delivered) == 3
    assert consecutive_loss_runs(published, delivered) == [(4, 3)]
    assert total_losses(published, delivered) == 3


def test_multiple_runs_reports_longest():
    published = list(range(1, 11))
    delivered = set(published) - {2, 5, 6, 9, 10}
    assert max_consecutive_losses(published, delivered) == 2
    assert consecutive_loss_runs(published, delivered) == [(2, 1), (5, 2), (9, 2)]


def test_trailing_run_counts():
    published = [1, 2, 3, 4]
    delivered = {1}
    assert max_consecutive_losses(published, delivered) == 3
    assert consecutive_loss_runs(published, delivered) == [(2, 3)]


def test_everything_lost():
    published = [1, 2, 3]
    assert max_consecutive_losses(published, set()) == 3


def test_empty_published_is_vacuous():
    assert max_consecutive_losses([], {1}) == 0
    assert meets_loss_tolerance([], set(), 0)


def test_meets_loss_tolerance_boundary():
    published = list(range(1, 11))
    delivered = set(published) - {3, 4, 5}
    assert meets_loss_tolerance(published, delivered, 3)
    assert not meets_loss_tolerance(published, delivered, 2)


def test_unbounded_tolerance_always_met():
    assert meets_loss_tolerance([1, 2, 3], set(), LOSS_UNBOUNDED)


def test_success_fraction():
    assert success_fraction([True, True, False, False]) == 0.5
    assert success_fraction([]) == 1.0


# ----------------------------------------------------------------------
# Latency summaries
# ----------------------------------------------------------------------
def test_latency_summary_counts_on_time():
    published = [1, 2, 3, 4]
    records = {1: 0.010, 2: 0.200, 3: 0.050}     # 4 undelivered
    summary = latency_summary(published, records, deadline=0.100)
    assert summary.published == 4
    assert summary.delivered == 3
    assert summary.on_time == 2
    assert summary.success_rate == pytest.approx(0.5)
    assert summary.delivery_rate == pytest.approx(0.75)
    assert summary.mean_latency == pytest.approx((0.010 + 0.200 + 0.050) / 3)
    assert summary.max_latency == pytest.approx(0.200)


def test_latency_summary_empty_is_vacuous():
    summary = latency_summary([], {}, deadline=0.1)
    assert summary.success_rate == 1.0
    assert math.isnan(summary.mean_latency)


def test_latency_exactly_at_deadline_is_success():
    summary = latency_summary([1], {1: 0.1}, deadline=0.1)
    assert summary.on_time == 1


def test_percentile_nearest_rank():
    values = [10.0, 20.0, 30.0, 40.0]
    assert percentile(values, 0.5) == 20.0
    assert percentile(values, 0.99) == 40.0
    assert percentile(values, 0.0) == 10.0
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile(values, 1.5)


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------
def test_mean_ci_single_sample():
    assert mean_confidence_interval([5.0]) == (5.0, 0.0)


def test_mean_ci_identical_samples_zero_width():
    mean, half = mean_confidence_interval([3.0, 3.0, 3.0])
    assert mean == 3.0
    assert half == 0.0


def test_mean_ci_known_value():
    # n=4, values 0,0,10,10: mean 5, s = 5.7735, CI = t(3) * s / 2
    mean, half = mean_confidence_interval([0.0, 0.0, 10.0, 10.0])
    assert mean == 5.0
    expected = 3.182 * math.sqrt(100.0 / 3.0) / 2.0
    assert half == pytest.approx(expected, rel=1e-3)


def test_mean_ci_empty_rejected():
    with pytest.raises(ValueError):
        mean_confidence_interval([])


def test_t_table_against_scipy_if_available():
    scipy_stats = pytest.importorskip("scipy.stats")
    for df in (1, 2, 5, 9, 29):
        assert t_critical_95(df) == pytest.approx(
            scipy_stats.t.ppf(0.975, df), abs=2e-3)
    # Beyond the table the normal approximation is used (within 1.5 %).
    assert t_critical_95(100) == pytest.approx(
        scipy_stats.t.ppf(0.975, 100), rel=0.015)


def test_t_table_validation():
    with pytest.raises(ValueError):
        t_critical_95(0)


def test_sample_std():
    assert sample_std([1.0]) == 0.0
    assert sample_std([2.0, 4.0]) == pytest.approx(math.sqrt(2.0))


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def test_format_value_paper_style():
    assert format_value(100.0, 0.0) == "100.0"
    assert format_value(99.9, 0.025) == "99.9 ± 2.5E-02"
    assert format_value(80.0, 30.1) == "80.0 ± 30.1"


def test_format_table_renders_aligned_rows():
    text = format_table("T", ["a", "bb"], [["1", "2"], ["333", "4"]])
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[2] and "bb" in lines[2]
    # title, rule, header, rule, two rows, rule
    assert len(lines) == 7


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table("T", ["a", "b"], [["only-one"]])
