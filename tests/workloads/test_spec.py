"""Workload generator tests (Table 2 categories, sweeps, proxy grouping)."""

import pytest

from repro.core.model import CLOUD, EDGE, LOSS_UNBOUNDED
from repro.core.units import ms
from repro.workloads.spec import (
    CATEGORIES,
    PAPER_WORKLOADS,
    build_workload,
)


def test_categories_match_table2():
    expected = {
        0: (ms(50), ms(50), 0, 2, EDGE),
        1: (ms(50), ms(50), 3, 0, EDGE),
        2: (ms(100), ms(100), 0, 1, EDGE),
        3: (ms(100), ms(100), 3, 0, EDGE),
        4: (ms(100), ms(100), LOSS_UNBOUNDED, 0, EDGE),
        5: (ms(500), ms(500), 0, 1, CLOUD),
    }
    for category, (period, deadline, loss, retention, dest) in expected.items():
        spec = CATEGORIES[category].make_topic(0)
        assert spec.period == period
        assert spec.deadline == deadline
        assert spec.loss_tolerance == loss
        assert spec.retention == retention
        assert spec.destination == dest


def test_paper_workload_counts_at_full_scale():
    for total in PAPER_WORKLOADS:
        workload = build_workload(total, scale=1.0)
        assert workload.topic_count == total
        assert len(workload.specs_of_category(0)) == 10
        assert len(workload.specs_of_category(1)) == 10
        assert len(workload.specs_of_category(5)) == 5
        sensors = (total - 25) // 3
        for category in (2, 3, 4):
            assert len(workload.specs_of_category(category)) == sensors


def test_scaled_workload_shrinks_only_sensor_categories():
    workload = build_workload(7525, scale=0.1)
    assert len(workload.specs_of_category(0)) == 10
    assert len(workload.specs_of_category(5)) == 5
    assert len(workload.specs_of_category(2)) == 250
    assert workload.topic_count == 25 + 3 * 250


def test_topic_ids_are_unique_and_dense():
    workload = build_workload(1525, scale=0.1)
    ids = [spec.topic_id for spec in workload.specs]
    assert len(set(ids)) == len(ids)
    assert sorted(ids) == list(range(len(ids)))


def test_proxy_grouping_sizes():
    """Proxies of 10 (cats 0/1), 50 (cats 2-4), 1 (cat 5) topics."""
    workload = build_workload(1525, scale=1.0)
    by_category = {}
    for proxy in workload.proxies:
        category = proxy.specs[0].category
        by_category.setdefault(category, []).append(len(proxy.specs))
    assert by_category[0] == [10]
    assert by_category[1] == [10]
    assert by_category[5] == [1] * 5
    assert all(size == 50 for size in by_category[2])
    assert sum(by_category[2]) == 500


def test_proxies_have_uniform_period():
    workload = build_workload(4525, scale=0.1)
    for proxy in workload.proxies:
        periods = {spec.period for spec in proxy.specs}
        assert len(periods) == 1


def test_proxies_alternate_hosts():
    workload = build_workload(1525, scale=0.1)
    hosts = {proxy.host_index for proxy in workload.proxies}
    assert hosts == {0, 1}


def test_message_rate_formula():
    workload = build_workload(7525, scale=1.0)
    # 20 topics @ 20 Hz + 7500 @ 10 Hz + 5 @ 2 Hz
    assert workload.message_rate() == pytest.approx(400 + 75000 + 10)


def test_workload_validation():
    with pytest.raises(ValueError):
        build_workload(24)
    with pytest.raises(ValueError):
        build_workload(1526)          # (total - 25) not divisible by 3
    with pytest.raises(ValueError):
        build_workload(1525, scale=0.0)
    with pytest.raises(ValueError):
        build_workload(1525, scale=1.5)


def test_workload_name_encodes_scale():
    assert build_workload(1525, scale=1.0).name == "1525-topics"
    assert "@0.1" in build_workload(1525, scale=0.1).name
