"""Tests for the sporadic arrival models."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.units import ms
from repro.workloads.arrivals import (
    ArrivalModel,
    BurstyArrivals,
    PeriodicJitter,
    SporadicExponential,
)

MODELS = [
    PeriodicJitter(0.01),
    PeriodicJitter(0.0),
    SporadicExponential(0.5),
    SporadicExponential(0.0),
    BurstyArrivals(burst_length_mean=5.0, idle_periods=10.0),
    BurstyArrivals(burst_length_mean=1.0, idle_periods=0.0),
]


@pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__ + repr(id(m) % 7))
@settings(max_examples=20)
@given(period_ms=st.floats(1.0, 1000.0, allow_nan=False),
       seed=st.integers(0, 10_000))
def test_sporadic_lower_bound_holds(model, period_ms, seed):
    """Every model respects the sporadic contract: gap >= Ti (Lemma 1's
    traffic assumption)."""
    rng = random.Random(seed)
    period = ms(period_ms)
    for _ in range(50):
        assert model.next_gap(rng, period) >= period - 1e-15


def test_periodic_jitter_bounds():
    rng = random.Random(1)
    model = PeriodicJitter(0.1)
    gaps = [model.next_gap(rng, 1.0) for _ in range(500)]
    assert all(1.0 <= gap <= 1.1 for gap in gaps)
    assert max(gaps) > 1.05   # jitter actually used


def test_exponential_mean_excess():
    rng = random.Random(2)
    model = SporadicExponential(excess_mean=0.5)
    gaps = [model.next_gap(rng, 1.0) for _ in range(4000)]
    mean_excess = sum(gap - 1.0 for gap in gaps) / len(gaps)
    assert mean_excess == pytest.approx(0.5, rel=0.1)


def test_bursty_produces_min_gaps_and_idles():
    rng = random.Random(3)
    model = BurstyArrivals(burst_length_mean=5.0, idle_periods=10.0)
    gaps = [model.next_gap(rng, 1.0) for _ in range(1000)]
    tight = sum(1 for gap in gaps if gap == 1.0)
    idle = sum(1 for gap in gaps if gap > 5.0)
    assert tight > 500            # most gaps are at the sporadic minimum
    assert idle > 50              # but real idle phases occur


def test_model_validation():
    with pytest.raises(ValueError):
        PeriodicJitter(-0.1)
    with pytest.raises(ValueError):
        SporadicExponential(-1.0)
    with pytest.raises(ValueError):
        BurstyArrivals(burst_length_mean=0.5)
    with pytest.raises(ValueError):
        BurstyArrivals(idle_periods=-1.0)
    with pytest.raises(NotImplementedError):
        ArrivalModel().next_gap(random.Random(0), 1.0)


def test_publisher_accepts_custom_arrival_model():
    """End-to-end: a bursty publisher still satisfies its guarantees at
    light load (bursts are the sporadic worst case, not a violation)."""
    from tests.helpers import build_mini, topic

    system = build_mini([topic(topic_id=0)])
    from repro.actors.publisher import PublisherProxy

    publisher = PublisherProxy(
        system.engine, system.pub_host, system.network, "bursty",
        specs=[system.config.topics[0]],
        primary_ingress=system.primary.ingress_address,
        backup_ingress=system.backup.ingress_address,
        failover_bound=ms(50), detector_poll=ms(15), detector_timeout=ms(10),
        arrival_model=BurstyArrivals(burst_length_mean=4.0, idle_periods=5.0),
        stats=system.publisher_stats,
    )
    system.engine.run(until=3.0)
    created = system.publisher_stats.created[0]
    assert len(created) >= 5
    gaps = [b - a for a, b in zip(created, created[1:])]
    assert all(gap >= system.config.topics[0].period - 1e-12 for gap in gaps)
    # All created messages (except possibly trailing in-flight) delivered.
    missing = set(range(1, len(created) - 1)) - system.delivered_seqs(0)
    assert missing == set()
