"""Tests for user-defined workload files (JSON load/save)."""

import json

import pytest

from repro.core.model import CLOUD, EDGE, LOSS_UNBOUNDED
from repro.core.units import ms
from repro.workloads.custom import (
    WorkloadFormatError,
    load_topics,
    obj_to_spec,
    save_topics,
    spec_to_obj,
)
from repro.workloads.spec import build_workload


def test_roundtrip_table2_workload(tmp_path):
    original = list(build_workload(1525, scale=0.1).specs)
    path = tmp_path / "topics.json"
    save_topics(original, str(path))
    loaded = load_topics(str(path))
    assert loaded == original


def test_inf_loss_tolerance_serialization(tmp_path):
    specs = [spec for spec in build_workload(1525, scale=0.1).specs
             if spec.best_effort][:1]
    path = tmp_path / "topics.json"
    save_topics(specs, str(path))
    raw = json.loads(path.read_text())
    assert raw["topics"][0]["loss_tolerance"] == "inf"
    assert load_topics(str(path))[0].loss_tolerance == LOSS_UNBOUNDED


def test_obj_conversion_defaults():
    spec = obj_to_spec({"topic_id": 1, "period_ms": 100, "deadline_ms": 200,
                        "loss_tolerance": 3})
    assert spec.period == ms(100)
    assert spec.deadline == ms(200)
    assert spec.retention == 0
    assert spec.destination == EDGE
    assert spec.category == -1


def test_cloud_destination_preserved():
    spec = obj_to_spec({"topic_id": 1, "period_ms": 500, "deadline_ms": 500,
                        "loss_tolerance": 0, "retention": 1,
                        "destination": CLOUD})
    assert spec.destination == CLOUD
    assert spec_to_obj(spec)["destination"] == CLOUD


@pytest.mark.parametrize("bad", [
    {"topic_id": 1},                                       # missing fields
    {"topic_id": 1, "period_ms": -5, "deadline_ms": 10,
     "loss_tolerance": 0},                                 # invalid period
    {"topic_id": 1, "period_ms": 10, "deadline_ms": 10,
     "loss_tolerance": "sometimes"},                       # bad loss string
])
def test_bad_topic_objects_rejected(bad):
    with pytest.raises((WorkloadFormatError, ValueError)):
        obj_to_spec(bad)


def test_load_rejects_wrong_shape(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps([1, 2, 3]))
    with pytest.raises(WorkloadFormatError, match="topics"):
        load_topics(str(path))
    path.write_text(json.dumps({"topics": []}))
    with pytest.raises(WorkloadFormatError, match="non-empty"):
        load_topics(str(path))


def test_load_rejects_duplicate_ids(tmp_path):
    topic = {"topic_id": 7, "period_ms": 100, "deadline_ms": 100,
             "loss_tolerance": 0, "retention": 1}
    path = tmp_path / "dup.json"
    path.write_text(json.dumps({"topics": [topic, dict(topic)]}))
    with pytest.raises(WorkloadFormatError, match="duplicate"):
        load_topics(str(path))


def test_loaded_specs_run_through_the_analyzer(tmp_path):
    """The point of custom workloads: they plug into the planning API."""
    from repro.analysis import plan_capacity
    from repro.core.config import CostModel
    from repro.core.policy import FRAME
    from repro.experiments.runner import ExperimentSettings

    specs = list(build_workload(1525, scale=0.1).specs)
    path = tmp_path / "topics.json"
    save_topics(specs, str(path))
    loaded = load_topics(str(path))
    report = plan_capacity(loaded, FRAME,
                           ExperimentSettings().deadline_parameters(),
                           CostModel.calibrated(0.1))
    assert report.deployable
