"""Unit tests for the discrete-event engine."""

import math

import pytest

from repro.sim import Engine


def test_clock_starts_at_zero():
    engine = Engine()
    assert engine.now == 0.0


def test_call_after_runs_in_time_order():
    engine = Engine()
    seen = []
    engine.call_after(0.3, seen.append, "c")
    engine.call_after(0.1, seen.append, "a")
    engine.call_after(0.2, seen.append, "b")
    engine.run()
    assert seen == ["a", "b", "c"]


def test_ties_run_in_insertion_order():
    engine = Engine()
    seen = []
    for tag in range(5):
        engine.call_at(1.0, seen.append, tag)
    engine.run()
    assert seen == [0, 1, 2, 3, 4]


def test_now_advances_to_event_time():
    engine = Engine()
    times = []
    engine.call_after(0.5, lambda: times.append(engine.now))
    engine.call_after(1.5, lambda: times.append(engine.now))
    engine.run()
    assert times == [0.5, 1.5]


def test_run_until_stops_before_later_events():
    engine = Engine()
    seen = []
    engine.call_after(1.0, seen.append, "early")
    engine.call_after(5.0, seen.append, "late")
    engine.run(until=2.0)
    assert seen == ["early"]
    assert engine.now == 2.0
    engine.run()
    assert seen == ["early", "late"]


def test_run_until_advances_clock_even_with_no_events():
    engine = Engine()
    engine.run(until=7.5)
    assert engine.now == 7.5


def test_cancelled_call_does_not_run():
    engine = Engine()
    seen = []
    handle = engine.call_after(1.0, seen.append, "x")
    handle.cancel()
    engine.run()
    assert seen == []


def test_cancel_is_idempotent():
    engine = Engine()
    handle = engine.call_after(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    engine.run()


def test_scheduling_in_the_past_raises():
    engine = Engine()
    engine.call_after(1.0, lambda: None)
    engine.run()
    with pytest.raises(ValueError):
        engine.call_at(0.5, lambda: None)


def test_negative_delay_raises():
    engine = Engine()
    with pytest.raises(ValueError):
        engine.call_after(-0.1, lambda: None)


def test_call_soon_runs_at_current_time():
    engine = Engine()
    stamps = []

    def outer():
        engine.call_soon(lambda: stamps.append(engine.now))

    engine.call_after(2.0, outer)
    engine.run()
    assert stamps == [2.0]


def test_events_scheduled_during_run_are_executed():
    engine = Engine()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            engine.call_after(1.0, chain, n + 1)

    engine.call_soon(chain, 0)
    engine.run()
    assert seen == [0, 1, 2, 3]
    assert engine.now == 3.0


def test_step_executes_one_event():
    engine = Engine()
    seen = []
    engine.call_after(1.0, seen.append, 1)
    engine.call_after(2.0, seen.append, 2)
    assert engine.step()
    assert seen == [1]
    assert engine.step()
    assert seen == [1, 2]
    assert not engine.step()


def test_pending_events_excludes_cancelled():
    engine = Engine()
    engine.call_after(1.0, lambda: None)
    handle = engine.call_after(2.0, lambda: None)
    handle.cancel()
    assert engine.pending_events() == 1


def test_peek_time_skips_cancelled_head():
    engine = Engine()
    first = engine.call_after(1.0, lambda: None)
    engine.call_after(2.0, lambda: None)
    first.cancel()
    assert engine.peek_time() == 2.0


def test_peek_time_none_when_drained():
    engine = Engine()
    assert engine.peek_time() is None


def test_run_returns_stop_time():
    engine = Engine()
    engine.call_after(1.0, lambda: None)
    assert engine.run(until=4.0) == 4.0


def test_run_without_horizon_stops_at_last_event():
    engine = Engine()
    engine.call_after(1.25, lambda: None)
    assert engine.run() == 1.25


def test_reentrant_run_is_rejected():
    engine = Engine()

    def recurse():
        with pytest.raises(RuntimeError):
            engine.run()

    engine.call_soon(recurse)
    engine.run()
