"""Unit tests for the discrete-event engine."""

import math

import pytest

from repro.sim import Engine


def test_clock_starts_at_zero():
    engine = Engine()
    assert engine.now == 0.0


def test_call_after_runs_in_time_order():
    engine = Engine()
    seen = []
    engine.call_after(0.3, seen.append, "c")
    engine.call_after(0.1, seen.append, "a")
    engine.call_after(0.2, seen.append, "b")
    engine.run()
    assert seen == ["a", "b", "c"]


def test_ties_run_in_insertion_order():
    engine = Engine()
    seen = []
    for tag in range(5):
        engine.call_at(1.0, seen.append, tag)
    engine.run()
    assert seen == [0, 1, 2, 3, 4]


def test_now_advances_to_event_time():
    engine = Engine()
    times = []
    engine.call_after(0.5, lambda: times.append(engine.now))
    engine.call_after(1.5, lambda: times.append(engine.now))
    engine.run()
    assert times == [0.5, 1.5]


def test_run_until_stops_before_later_events():
    engine = Engine()
    seen = []
    engine.call_after(1.0, seen.append, "early")
    engine.call_after(5.0, seen.append, "late")
    engine.run(until=2.0)
    assert seen == ["early"]
    assert engine.now == 2.0
    engine.run()
    assert seen == ["early", "late"]


def test_run_until_advances_clock_even_with_no_events():
    engine = Engine()
    engine.run(until=7.5)
    assert engine.now == 7.5


def test_cancelled_call_does_not_run():
    engine = Engine()
    seen = []
    handle = engine.call_after(1.0, seen.append, "x")
    handle.cancel()
    engine.run()
    assert seen == []


def test_cancel_is_idempotent():
    engine = Engine()
    handle = engine.call_after(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    engine.run()


def test_scheduling_in_the_past_raises():
    engine = Engine()
    engine.call_after(1.0, lambda: None)
    engine.run()
    with pytest.raises(ValueError):
        engine.call_at(0.5, lambda: None)


def test_negative_delay_raises():
    engine = Engine()
    with pytest.raises(ValueError):
        engine.call_after(-0.1, lambda: None)


def test_call_soon_runs_at_current_time():
    engine = Engine()
    stamps = []

    def outer():
        engine.call_soon(lambda: stamps.append(engine.now))

    engine.call_after(2.0, outer)
    engine.run()
    assert stamps == [2.0]


def test_events_scheduled_during_run_are_executed():
    engine = Engine()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            engine.call_after(1.0, chain, n + 1)

    engine.call_soon(chain, 0)
    engine.run()
    assert seen == [0, 1, 2, 3]
    assert engine.now == 3.0


def test_step_executes_one_event():
    engine = Engine()
    seen = []
    engine.call_after(1.0, seen.append, 1)
    engine.call_after(2.0, seen.append, 2)
    assert engine.step()
    assert seen == [1]
    assert engine.step()
    assert seen == [1, 2]
    assert not engine.step()


def test_pending_events_excludes_cancelled():
    engine = Engine()
    engine.call_after(1.0, lambda: None)
    handle = engine.call_after(2.0, lambda: None)
    handle.cancel()
    assert engine.pending_events() == 1


def test_peek_time_skips_cancelled_head():
    engine = Engine()
    first = engine.call_after(1.0, lambda: None)
    engine.call_after(2.0, lambda: None)
    first.cancel()
    assert engine.peek_time() == 2.0


def test_peek_time_none_when_drained():
    engine = Engine()
    assert engine.peek_time() is None


def test_run_returns_stop_time():
    engine = Engine()
    engine.call_after(1.0, lambda: None)
    assert engine.run(until=4.0) == 4.0


def test_run_without_horizon_stops_at_last_event():
    engine = Engine()
    engine.call_after(1.25, lambda: None)
    assert engine.run() == 1.25


def test_pending_events_is_counter_based():
    engine = Engine()
    handles = [engine.call_after(float(n + 1), lambda: None) for n in range(10)]
    for handle in handles[:4]:
        handle.cancel()
    assert engine.pending_events() == 6
    # Double-cancel must not double-count.
    handles[0].cancel()
    assert engine.pending_events() == 6
    engine.run()
    assert engine.pending_events() == 0
    assert engine._cancelled == 0


def test_cancel_after_execution_does_not_corrupt_counter():
    engine = Engine()
    handle = engine.call_after(1.0, lambda: None)
    engine.run()
    handle.cancel()          # late cancel of an already-executed call
    assert engine.pending_events() == 0
    assert engine._cancelled == 0


def test_peek_time_evicts_cancelled_heads():
    engine = Engine()
    first = engine.call_after(1.0, lambda: None)
    second = engine.call_after(2.0, lambda: None)
    engine.call_after(3.0, lambda: None)
    first.cancel()
    second.cancel()
    assert engine.peek_time() == 3.0
    # The cancelled heads were physically removed, counter reconciled.
    assert len(engine._heap) == 1
    assert engine._cancelled == 0
    assert engine.peek_time() == 3.0


def test_heap_compacts_when_cancellations_dominate():
    engine = Engine()
    keep = [engine.call_after(1000.0 + n, lambda: None) for n in range(10)]
    doomed = [engine.call_after(float(n + 1), lambda: None) for n in range(200)]
    for handle in doomed:
        handle.cancel()
    # Compaction triggered inside cancel(): most tombstones are physically
    # gone (a sub-threshold tail may remain) and the counter reconciles.
    assert len(engine._heap) < len(keep) + len(doomed) // 2
    assert engine._cancelled < engine._COMPACT_MIN
    assert engine.pending_events() == len(keep)
    seen = []
    engine.call_after(999.0, seen.append, "sentinel")
    engine.run()
    assert seen == ["sentinel"]


def test_compaction_preserves_tie_order():
    engine = Engine()
    seen = []
    doomed = [engine.call_after(0.5, lambda: None) for _ in range(200)]
    for tag in range(5):
        engine.call_at(1.0, seen.append, tag)
    for handle in doomed:
        handle.cancel()
    assert len(engine._heap) < 105   # compacted at least once
    engine.run()
    assert seen == [0, 1, 2, 3, 4]


def test_reentrant_run_is_rejected():
    engine = Engine()

    def recurse():
        with pytest.raises(RuntimeError):
            engine.run()

    engine.call_soon(recurse)
    engine.run()


def test_run_horizon_accepts_caller_constructed_infinity():
    """Regression: ``until is not math.inf`` was an identity check, so a
    caller-constructed ``float("inf")`` advanced the clock to infinity
    when the heap drained."""
    engine = Engine()
    engine.call_at(1.5, lambda: None)
    stopped = engine.run(float("inf"))
    assert stopped == 1.5
    assert engine.now == 1.5
    assert math.isfinite(engine.now)


def test_run_horizon_with_math_inf_spelling():
    engine = Engine()
    engine.call_at(1.5, lambda: None)
    assert engine.run(math.inf) == 1.5
    assert engine.now == 1.5


def test_run_finite_horizon_still_advances_clock():
    engine = Engine()
    engine.call_at(1.0, lambda: None)
    assert engine.run(5.0) == 5.0
    assert engine.now == 5.0


# ----------------------------------------------------------------------
# Ready queue: same-time ordering and interleaving with heap entries
# ----------------------------------------------------------------------
def test_call_soon_runs_in_insertion_order():
    engine = Engine()
    seen = []
    for tag in range(5):
        engine.call_soon(seen.append, tag)
    engine.run()
    assert seen == [0, 1, 2, 3, 4]


def test_ready_queue_interleaves_with_same_time_heap_entries_by_seq():
    # Scheduling order (= seq order) must decide execution order even when
    # the events are split between the ready deque (call_soon) and the
    # heap (call_at at the current time, zero-delay call_after).
    engine = Engine()
    seen = []

    def kickoff():
        engine.call_soon(seen.append, "soon-1")
        engine.call_at(engine.now, seen.append, "at-1")
        engine.call_soon(seen.append, "soon-2")
        engine.call_after(0.0, seen.append, "after-1")
        engine.call_soon(seen.append, "soon-3")

    engine.call_soon(kickoff)
    engine.run()
    assert seen == ["soon-1", "at-1", "soon-2", "after-1", "soon-3"]


def test_ready_queue_runs_before_future_heap_entries():
    engine = Engine()
    seen = []
    engine.call_after(0.1, seen.append, "later")
    engine.call_soon(seen.append, "now")
    engine.run()
    assert seen == ["now", "later"]


def test_cancelled_call_soon_is_skipped():
    engine = Engine()
    seen = []
    handle = engine.call_soon(seen.append, "cancelled")
    engine.call_soon(seen.append, "kept")
    handle.cancel()
    engine.run()
    assert seen == ["kept"]


def test_ready_events_scheduled_mid_run_fire_at_current_time():
    engine = Engine()
    times = []

    def at_one():
        engine.call_soon(lambda: times.append(engine.now))

    engine.call_after(1.0, at_one)
    engine.call_after(2.0, lambda: times.append(engine.now))
    engine.run()
    assert times == [1.0, 2.0]
