"""Unit tests for processes and synchronization primitives."""

import pytest

from repro.sim import AllOf, AnyOf, Engine, Notify, ProcessKilled, Queue, Signal, Timeout


def test_process_runs_and_returns_value():
    engine = Engine()

    def proc():
        yield Timeout(1.0)
        return 42

    p = engine.spawn(proc())
    engine.run()
    assert not p.alive
    assert p.result() == 42


def test_timeout_advances_local_time():
    engine = Engine()
    stamps = []

    def proc():
        stamps.append(engine.now)
        yield Timeout(0.5)
        stamps.append(engine.now)
        yield Timeout(0.25)
        stamps.append(engine.now)

    engine.spawn(proc())
    engine.run()
    assert stamps == [0.0, 0.5, 0.75]


def test_timeout_carries_value():
    engine = Engine()
    got = []

    def proc():
        got.append((yield Timeout(1.0, "payload")))

    engine.spawn(proc())
    engine.run()
    assert got == ["payload"]


def test_negative_timeout_raises():
    with pytest.raises(ValueError):
        Timeout(-1.0)


def test_signal_wakes_waiter_with_value():
    engine = Engine()
    got = []
    sig = Signal(engine)

    def waiter():
        got.append((yield sig))

    engine.spawn(waiter())
    engine.call_after(2.0, sig.fire, "hello")
    engine.run()
    assert got == ["hello"]
    assert engine.now == 2.0


def test_signal_fired_before_wait_resumes_immediately():
    engine = Engine()
    got = []
    sig = Signal(engine)
    sig.fire(7)

    def waiter():
        got.append((yield sig))

    engine.spawn(waiter())
    engine.run()
    assert got == [7]


def test_signal_double_fire_raises():
    engine = Engine()
    sig = Signal(engine)
    sig.fire()
    with pytest.raises(RuntimeError):
        sig.fire()


def test_signal_wakes_multiple_waiters():
    engine = Engine()
    got = []
    sig = Signal(engine)

    def waiter(tag):
        value = yield sig
        got.append((tag, value))

    for tag in range(3):
        engine.spawn(waiter(tag))
    engine.call_after(1.0, sig.fire, "v")
    engine.run()
    assert sorted(got) == [(0, "v"), (1, "v"), (2, "v")]


def test_notify_wakes_only_current_waiters():
    engine = Engine()
    got = []
    bell = Notify(engine)

    def waiter():
        got.append((yield bell))
        got.append((yield bell))

    engine.spawn(waiter())
    engine.call_after(1.0, bell.notify, "first")
    engine.call_after(2.0, bell.notify, "second")
    engine.run()
    assert got == ["first", "second"]


def test_queue_get_blocks_until_put():
    engine = Engine()
    got = []
    queue = Queue(engine)

    def consumer():
        got.append((yield queue.get()))

    engine.spawn(consumer())
    engine.call_after(3.0, queue.put, "item")
    engine.run()
    assert got == ["item"]
    assert engine.now == 3.0


def test_queue_preserves_fifo_order():
    engine = Engine()
    got = []
    queue = Queue(engine)
    for item in ("a", "b", "c"):
        queue.put(item)

    def consumer():
        for _ in range(3):
            got.append((yield queue.get()))

    engine.spawn(consumer())
    engine.run()
    assert got == ["a", "b", "c"]


def test_queue_serves_getters_in_arrival_order():
    engine = Engine()
    got = []
    queue = Queue(engine)

    def consumer(tag):
        got.append((tag, (yield queue.get())))

    engine.spawn(consumer("first"))
    engine.spawn(consumer("second"))
    engine.call_after(1.0, queue.put, "x")
    engine.call_after(2.0, queue.put, "y")
    engine.run()
    assert got == [("first", "x"), ("second", "y")]


def test_queue_try_get():
    engine = Engine()
    queue = Queue(engine)
    assert queue.try_get() == (False, None)
    queue.put(5)
    assert queue.try_get() == (True, 5)
    assert len(queue) == 0


def test_queue_skips_dead_getters():
    engine = Engine()
    got = []
    queue = Queue(engine)

    def doomed():
        yield queue.get()
        got.append("doomed ran")

    def survivor():
        got.append((yield queue.get()))

    victim = engine.spawn(doomed())
    engine.spawn(survivor())
    engine.call_after(1.0, victim.kill)
    engine.call_after(2.0, queue.put, "item")
    engine.run()
    assert got == ["item"]


def test_kill_cancels_pending_timer():
    engine = Engine()
    got = []

    def proc():
        yield Timeout(10.0)
        got.append("should not run")

    p = engine.spawn(proc())
    engine.call_after(1.0, p.kill)
    engine.run()
    assert got == []
    assert p.killed
    assert engine.now == 1.0  # the 10 s timer was cancelled, not awaited


def test_killed_process_result_raises():
    engine = Engine()

    def proc():
        yield Timeout(10.0)

    p = engine.spawn(proc())
    engine.call_after(1.0, p.kill)
    engine.run()
    with pytest.raises(ProcessKilled):
        p.result()


def test_result_of_running_process_raises():
    engine = Engine()

    def proc():
        yield Timeout(10.0)

    p = engine.spawn(proc())
    with pytest.raises(RuntimeError):
        p.result()


def test_kill_is_idempotent():
    engine = Engine()

    def proc():
        yield Timeout(10.0)

    p = engine.spawn(proc())
    engine.call_after(1.0, p.kill)
    engine.call_after(2.0, p.kill)
    engine.run()
    assert p.killed


def test_kill_runs_finally_blocks():
    engine = Engine()
    cleaned = []

    def proc():
        try:
            yield Timeout(10.0)
        finally:
            cleaned.append(True)

    p = engine.spawn(proc())
    engine.call_after(1.0, p.kill)
    engine.run()
    assert cleaned == [True]


def test_done_signal_fires_on_completion():
    engine = Engine()
    got = []

    def worker():
        yield Timeout(1.0)
        return "done-value"

    def joiner(worker_proc):
        got.append((yield worker_proc.done))

    w = engine.spawn(worker())
    engine.spawn(joiner(w))
    engine.run()
    assert got == ["done-value"]


def test_yielding_non_waitable_raises():
    engine = Engine()

    def bad():
        yield 42

    engine.spawn(bad())
    with pytest.raises(TypeError):
        engine.run()


def test_anyof_timeout_wins():
    engine = Engine()
    got = []
    sig = Signal(engine)

    def proc():
        got.append((yield AnyOf(engine, [sig, Timeout(1.0, "timed-out")])))

    engine.spawn(proc())
    engine.call_after(5.0, sig.fire, "late")
    engine.run()
    assert got == [(1, "timed-out")]


def test_anyof_signal_wins():
    engine = Engine()
    got = []
    sig = Signal(engine)

    def proc():
        got.append((yield AnyOf(engine, [sig, Timeout(10.0)])))

    engine.spawn(proc())
    engine.call_after(1.0, sig.fire, "fast")
    engine.run()
    assert got == [(0, "fast")]


def test_anyof_empty_raises():
    engine = Engine()
    with pytest.raises(ValueError):
        AnyOf(engine, [])


def test_allof_collects_all_values():
    engine = Engine()
    got = []
    a = Signal(engine)
    b = Signal(engine)

    def proc():
        got.append((yield AllOf(engine, [a, b, Timeout(1.0, "t")])))

    engine.spawn(proc())
    engine.call_after(2.0, a.fire, "a")
    engine.call_after(3.0, b.fire, "b")
    engine.run()
    assert got == [["a", "b", "t"]]
    assert engine.now == 3.0


def test_process_exception_propagates():
    engine = Engine()

    def bad():
        yield Timeout(1.0)
        raise ValueError("boom")

    engine.spawn(bad())
    with pytest.raises(ValueError, match="boom"):
        engine.run()
