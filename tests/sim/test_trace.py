"""Tests for the structured event tracer."""

import pytest

from repro.sim import Engine
from repro.sim.trace import Tracer, trace

from tests.helpers import build_mini, topic
from repro.core.model import Message


def test_trace_is_noop_without_tracer():
    engine = Engine()
    trace(engine, "anything", "subject")   # must not raise


def test_tracer_records_with_timestamps():
    engine = Engine()
    tracer = Tracer.install(engine)
    engine.call_after(1.5, trace, engine, "tick", "clock", 42)
    engine.run()
    assert len(tracer) == 1
    record = next(iter(tracer.records))
    assert record.time == 1.5
    assert record.kind == "tick"
    assert record.detail == 42


def test_tracer_query_filters():
    engine = Engine()
    tracer = Tracer.install(engine)
    tracer.record("a", "x")
    tracer.record("b", "x")
    tracer.record("a", "y")
    assert len(list(tracer.query(kind="a"))) == 2
    assert len(list(tracer.query(subject="x"))) == 2
    assert len(list(tracer.query(kind="a", subject="y"))) == 1


def test_tracer_bounded_capacity():
    engine = Engine()
    tracer = Tracer.install(engine, capacity=3)
    for index in range(5):
        tracer.record("k", str(index))
    assert len(tracer) == 3
    assert tracer.dropped == 2
    assert [record.subject for record in tracer.records] == ["2", "3", "4"]


def test_tracer_capacity_validation():
    with pytest.raises(ValueError):
        Tracer(Engine(), capacity=0)


def test_uninstall_stops_recording():
    engine = Engine()
    tracer = Tracer.install(engine)
    trace(engine, "k", "s")
    Tracer.uninstall(engine)
    trace(engine, "k", "s")
    assert len(tracer) == 1
    Tracer.uninstall(engine)   # idempotent


def test_broker_emits_trace_points():
    system = build_mini([topic(topic_id=0)])
    tracer = Tracer.install(system.engine)
    system.publish([Message(0, 1, created_at=0.0)])
    system.engine.run(until=0.1)
    kinds = {record.kind for record in tracer.records}
    assert "dispatch" in kinds
    assert "replicate" in kinds
    dispatches = list(tracer.query(kind="dispatch"))
    assert dispatches[0].detail == (0, 1)


def test_traces_are_deterministic_across_runs():
    def run_once():
        system = build_mini([topic(topic_id=0)], with_publisher=True,
                            with_promoter=True, seed=21)
        tracer = Tracer.install(system.engine)
        system.engine.call_after(0.4, system.primary_host.crash)
        system.engine.run(until=1.0)
        return tracer.as_lines()

    assert run_once() == run_once()


def test_as_lines_format():
    engine = Engine()
    tracer = Tracer.install(engine)
    tracer.record("dispatch", "B1", (0, 1))
    line = tracer.as_lines()[0]
    assert "dispatch" in line
    assert "B1" in line
    assert "(0, 1)" in line
