"""Unit tests for hosts, RNG streams, and measurement instruments."""

import pytest

from repro.sim import Counter, Engine, Host, TimeSeries, Timeout, UtilizationMeter, WindowAccumulator
from repro.sim.rng import RngRegistry, derive_seed


# ----------------------------------------------------------------------
# Host / crash semantics
# ----------------------------------------------------------------------
def test_crash_kills_all_host_processes():
    engine = Engine()
    host = Host(engine, "broker-1")
    ran = []

    def proc(tag):
        yield Timeout(10.0)
        ran.append(tag)

    for tag in range(3):
        engine.spawn(proc(tag), host=host)
    engine.call_after(1.0, host.crash)
    engine.run()
    assert ran == []
    assert not host.alive
    assert host.crash_time == 1.0


def test_crash_does_not_affect_other_hosts():
    engine = Engine()
    victim = Host(engine, "primary")
    bystander = Host(engine, "backup")
    ran = []

    def proc(tag):
        yield Timeout(5.0)
        ran.append(tag)

    engine.spawn(proc("victim"), host=victim)
    engine.spawn(proc("bystander"), host=bystander)
    engine.call_after(1.0, victim.crash)
    engine.run()
    assert ran == ["bystander"]


def test_crash_is_idempotent():
    engine = Engine()
    host = Host(engine, "h")
    host.crash()
    first_time = host.crash_time
    host.crash()
    assert host.crash_time == first_time


def test_finished_process_detaches_from_host():
    engine = Engine()
    host = Host(engine, "h")

    def proc():
        yield Timeout(1.0)

    engine.spawn(proc(), host=host)
    engine.run()
    assert host.processes == []


def test_host_now_without_clock_is_engine_time():
    engine = Engine()
    host = Host(engine, "h")
    engine.call_after(2.0, lambda: None)
    engine.run()
    assert host.now() == 2.0


# ----------------------------------------------------------------------
# RNG registry
# ----------------------------------------------------------------------
def test_same_seed_same_stream_is_reproducible():
    a = RngRegistry(42).stream("pub.1")
    b = RngRegistry(42).stream("pub.1")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_streams_are_independent_of_creation_order():
    reg1 = RngRegistry(42)
    first = reg1.stream("a")
    _ = reg1.stream("b")
    draws_order1 = [first.random() for _ in range(3)]

    reg2 = RngRegistry(42)
    _ = reg2.stream("b")
    second = reg2.stream("a")
    draws_order2 = [second.random() for _ in range(3)]
    assert draws_order1 == draws_order2


def test_different_seeds_differ():
    assert derive_seed(1, "x") != derive_seed(2, "x")
    assert derive_seed(1, "x") != derive_seed(1, "y")


def test_stream_is_cached():
    reg = RngRegistry(0)
    assert reg.stream("s") is reg.stream("s")
    assert "s" in reg
    assert len(reg) == 1


def test_engine_rng_uses_master_seed():
    a = Engine(seed=7).rng("link")
    b = Engine(seed=7).rng("link")
    assert a.random() == b.random()


# ----------------------------------------------------------------------
# Monitors
# ----------------------------------------------------------------------
def test_time_series_window():
    series = TimeSeries("lat")
    for t in range(5):
        series.record(float(t), t * 10.0)
    windowed = series.window(1.0, 4.0)
    assert windowed.times == [1.0, 2.0, 3.0]
    assert windowed.values == [10.0, 20.0, 30.0]
    assert windowed.min() == 10.0
    assert windowed.max() == 30.0
    assert windowed.mean() == 20.0


def test_counter_window():
    counter = Counter("msgs")
    counter.set_window(10.0, 20.0)
    counter.increment(5.0)
    counter.increment(15.0)
    counter.increment(25.0)
    assert counter.total == 3
    assert counter.in_window == 1


def test_utilization_meter_clips_to_window():
    meter = UtilizationMeter("delivery", capacity=2.0)
    meter.set_window(10.0, 20.0)
    meter.add_busy(8.0, 12.0)   # 2 s inside
    meter.add_busy(15.0, 16.0)  # 1 s inside
    meter.add_busy(19.0, 25.0)  # 1 s inside
    meter.add_busy(30.0, 31.0)  # outside
    assert meter.busy == pytest.approx(4.0)
    assert meter.utilization() == pytest.approx(4.0 / (10.0 * 2.0))


def test_utilization_meter_rejects_bad_capacity():
    with pytest.raises(ValueError):
        UtilizationMeter("m", capacity=0.0)


def test_utilization_requires_finite_window():
    meter = UtilizationMeter("m")
    with pytest.raises(ValueError):
        meter.utilization()


def test_window_accumulator():
    acc = WindowAccumulator("lat")
    acc.set_window(0.0, 10.0)
    acc.add(1.0, 0.5)
    acc.add(11.0, 0.9)
    acc.extend(2.0, [1.0, 2.0])
    assert acc.values == [0.5, 1.0, 2.0]
    assert len(acc) == 3
