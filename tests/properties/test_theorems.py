"""Executable versions of the paper's theorems (hypothesis + simulation).

The headline property is Lemma 1: for arbitrary admissible topic
parameters and an arbitrary crash instant, an unloaded FRAME deployment
never lets the subscriber see more than ``Li`` consecutive losses.  Each
example builds a miniature deployment, runs it with a crash, and checks
the subscriber's gap structure.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import EDGE, TopicSpec
from repro.core.timing import (
    admission_test,
    dispatch_deadline,
    min_retention,
    needs_replication,
    replication_deadline,
)
from repro.core.units import ms

from tests.helpers import TEST_PARAMS, build_mini


# ----------------------------------------------------------------------
# Analytic properties of the timing bounds
# ----------------------------------------------------------------------
spec_strategy = st.builds(
    TopicSpec,
    topic_id=st.just(0),
    period=st.floats(ms(20), ms(500), allow_nan=False),
    deadline=st.floats(ms(20), ms(1000), allow_nan=False),
    loss_tolerance=st.integers(0, 5).map(float),
    retention=st.integers(0, 5),
    destination=st.just(EDGE),
    category=st.just(2),
)


@given(spec=spec_strategy)
def test_replication_deadline_monotone_in_retention(spec):
    """More publisher retention never tightens the replication deadline."""
    assert replication_deadline(spec.with_retention(spec.retention + 1),
                                TEST_PARAMS) >= replication_deadline(spec, TEST_PARAMS)


@given(spec=spec_strategy)
def test_admission_monotone_in_retention(spec):
    """If a topic is admissible at Ni, it stays admissible at Ni + 1."""
    if admission_test(spec, TEST_PARAMS).admitted:
        assert admission_test(spec.with_retention(spec.retention + 1),
                              TEST_PARAMS).admitted


@given(spec=spec_strategy)
def test_min_retention_is_minimal_and_sufficient(spec):
    if dispatch_deadline(spec, TEST_PARAMS) < 0:
        return  # not fixable by retention
    minimum = min_retention(spec, TEST_PARAMS)
    assert admission_test(spec.with_retention(minimum), TEST_PARAMS).admitted
    if minimum > 0:
        assert not admission_test(spec.with_retention(minimum - 1),
                                  TEST_PARAMS).admitted


@given(spec=spec_strategy)
def test_suppression_monotone_in_retention(spec):
    """Once Proposition 1 suppresses replication, more retention keeps it
    suppressed (the basis of the FRAME+ configuration)."""
    if not needs_replication(spec, TEST_PARAMS):
        assert not needs_replication(spec.with_retention(spec.retention + 1),
                                     TEST_PARAMS)


# ----------------------------------------------------------------------
# Lemma 1 as an end-to-end property
# ----------------------------------------------------------------------
@settings(max_examples=12, deadline=None)
@given(
    period_ms=st.sampled_from([40, 60, 100, 160]),
    loss_tolerance=st.integers(0, 3),
    extra_retention=st.integers(0, 2),
    crash_offset_ms=st.integers(0, 400),
    seed=st.integers(0, 1000),
)
def test_lemma1_no_more_than_li_consecutive_losses(period_ms, loss_tolerance,
                                                   extra_retention,
                                                   crash_offset_ms, seed):
    """An unloaded FRAME system with an admissible topic never exceeds Li
    consecutive losses across a Primary crash at an arbitrary instant."""
    from tests.helpers import topic

    period = ms(period_ms)
    spec = TopicSpec(topic_id=0, period=period, deadline=4 * period,
                     loss_tolerance=float(loss_tolerance), retention=0,
                     destination=EDGE, category=2)
    retention = min_retention(spec, TEST_PARAMS) + extra_retention
    spec = spec.with_retention(retention)
    assert admission_test(spec, TEST_PARAMS).admitted

    system = build_mini([spec], with_publisher=True, with_promoter=True,
                        seed=seed)
    crash_at = 0.4 + ms(crash_offset_ms)
    system.engine.call_after(crash_at, system.primary_host.crash)
    system.engine.run(until=crash_at + 1.5)

    created = system.publisher_stats.created[0]
    # Exclude creations in the final in-flight window.
    horizon = system.engine.now - 2 * spec.deadline - ms(60)
    published = [index + 1 for index, t in enumerate(created) if t <= horizon]
    delivered = system.delivered_seqs(0)
    longest = 0
    current = 0
    for seq in published:
        if seq in delivered:
            current = 0
        else:
            current += 1
            longest = max(longest, current)
    assert longest <= loss_tolerance, (
        f"Lemma 1 violated: {longest} consecutive losses with Li={loss_tolerance} "
        f"(Ni={retention}, Ti={period_ms} ms, crash at {crash_at:.3f})"
    )


@settings(max_examples=8, deadline=None)
@given(
    crash_offset_ms=st.integers(0, 300),
    seed=st.integers(0, 1000),
)
def test_zero_loss_topic_never_loses_messages(crash_offset_ms, seed):
    """Li = 0 with admissible retention: zero losses across any crash."""
    from tests.helpers import topic

    spec = topic(topic_id=0, period=ms(100), deadline=ms(200), loss=0,
                 retention=2, category=2)
    system = build_mini([spec], with_publisher=True, with_promoter=True,
                        seed=seed)
    crash_at = 0.3 + ms(crash_offset_ms)
    system.engine.call_after(crash_at, system.primary_host.crash)
    system.engine.run(until=crash_at + 1.5)
    created = system.publisher_stats.created[0]
    horizon = system.engine.now - 2 * spec.deadline - ms(60)
    published = set(index + 1 for index, t in enumerate(created) if t <= horizon)
    missing = published - system.delivered_seqs(0)
    assert missing == set(), f"lost messages {sorted(missing)}"


# ----------------------------------------------------------------------
# Lemma 2 as an end-to-end property (fault-free)
# ----------------------------------------------------------------------
@settings(max_examples=8, deadline=None)
@given(
    period_ms=st.sampled_from([50, 100, 250]),
    seed=st.integers(0, 1000),
)
def test_lemma2_deadlines_met_in_unloaded_system(period_ms, seed):
    from tests.helpers import topic

    spec = topic(topic_id=0, period=ms(period_ms), deadline=ms(period_ms),
                 loss=0, retention=2, category=2)
    system = build_mini([spec], with_publisher=True, seed=seed)
    system.engine.run(until=2.0)
    latencies = system.latencies(0)
    assert latencies, "no deliveries"
    assert all(latency <= spec.deadline for latency in latencies.values())


# ----------------------------------------------------------------------
# Determinism of the whole stack
# ----------------------------------------------------------------------
@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_identical_seeds_reproduce_identical_runs(seed):
    from tests.helpers import topic

    def run_once():
        system = build_mini([topic(topic_id=0)], with_publisher=True,
                            with_promoter=True, seed=seed)
        system.engine.call_after(0.7, system.primary_host.crash)
        system.engine.run(until=2.0)
        return (sorted(system.latencies(0).items()),
                system.backup.stats.promotion_time,
                system.publisher_stats.failover_at)

    assert run_once() == run_once()
