"""Property-based tests for the core data structures (hypothesis)."""

from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buffers import BackupBuffer, RingBuffer
from repro.core.model import Message
from repro.core.scheduling import DISPATCH, EDFJobQueue, Job
from repro.metrics.loss import consecutive_loss_runs, max_consecutive_losses
from repro.sim import Engine


# ----------------------------------------------------------------------
# RingBuffer behaves like a bounded deque
# ----------------------------------------------------------------------
@given(capacity=st.integers(0, 8), seqs=st.lists(st.integers(1, 100), max_size=50))
def test_ring_buffer_matches_bounded_deque(capacity, seqs):
    ring = RingBuffer(capacity)
    reference = deque(maxlen=capacity)
    for seq in seqs:
        message = Message(0, seq, 0.0)
        ring.append(message)
        if capacity:
            reference.append(message)
    assert [m.seq for m in ring.snapshot()] == [m.seq for m in reference]


# ----------------------------------------------------------------------
# BackupBuffer: model-based test against a dict-of-deques reference
# ----------------------------------------------------------------------
@given(
    capacity=st.integers(1, 4),
    operations=st.lists(
        st.tuples(st.sampled_from(["store", "prune"]),
                  st.integers(0, 2),        # topic
                  st.integers(1, 12)),      # seq
        max_size=60,
    ),
)
def test_backup_buffer_matches_reference(capacity, operations):
    buffer = BackupBuffer(capacity)
    reference = {}  # topic -> deque of (seq, discarded flag holder)
    flags = {}      # (topic, seq) -> [bool]
    for op, topic, seq in operations:
        ring = reference.setdefault(topic, deque())
        if op == "store":
            if (topic, seq) in flags and any(s == seq for s, _ in ring):
                pass  # duplicate store: refresh only
            else:
                while len(ring) >= capacity:
                    old_seq, _ = ring.popleft()
                    flags.pop((topic, old_seq), None)
                holder = [False]
                ring.append((seq, holder))
                flags[(topic, seq)] = holder
            buffer.store(Message(topic, seq, 0.0), arrived_at=0.0)
        else:
            expected = (topic, seq) in flags
            assert buffer.prune(topic, seq) == expected
            if expected:
                flags[(topic, seq)][0] = True
    for topic, ring in reference.items():
        got = [(e.message.seq, e.discard) for e in buffer.entries(topic)]
        expected = [(seq, holder[0]) for seq, holder in ring]
        assert got == expected
    assert buffer.live_count() == sum(
        1 for holder in flags.values() if not holder[0])


# ----------------------------------------------------------------------
# EDF queue: pops are sorted by (deadline, push order), cancels excluded
# ----------------------------------------------------------------------
@given(
    jobs=st.lists(st.tuples(st.floats(0.0, 100.0, allow_nan=False),
                            st.booleans()),
                  min_size=1, max_size=40),
)
def test_edf_queue_pop_order_property(jobs):
    engine = Engine()
    queue = EDFJobQueue(engine)
    pushed = []
    for order, (deadline, cancel) in enumerate(jobs):
        job = Job(DISPATCH, entry=None, deadline=deadline, cost=1e-6)
        queue.push(job)
        pushed.append((deadline, order, job, cancel))
    for _, _, job, cancel in pushed:
        if cancel:
            queue.cancel(job)
    live = [(deadline, order, job) for deadline, order, job, cancel in pushed
            if not cancel]
    expected = [job for _, _, job in sorted(live, key=lambda x: (x[0], x[1]))]
    got = []

    def consumer():
        for _ in range(len(expected)):
            got.append((yield queue.pop()))

    engine.spawn(consumer())
    engine.run()
    assert got == expected
    assert queue.drained()


# ----------------------------------------------------------------------
# Consecutive-loss counter vs brute force
# ----------------------------------------------------------------------
def brute_force_max_run(published, delivered):
    best = 0
    for start in range(len(published)):
        run = 0
        for seq in published[start:]:
            if seq in delivered:
                break
            run += 1
        best = max(best, run)
    return best


@given(
    count=st.integers(0, 60),
    delivered_mask=st.lists(st.booleans(), max_size=60),
)
def test_max_consecutive_losses_matches_brute_force(count, delivered_mask):
    published = list(range(1, count + 1))
    delivered = {seq for seq, keep in zip(published, delivered_mask) if keep}
    assert max_consecutive_losses(published, delivered) == brute_force_max_run(
        published, delivered)


@given(
    count=st.integers(0, 60),
    delivered_mask=st.lists(st.booleans(), max_size=60),
)
def test_loss_runs_partition_losses(count, delivered_mask):
    published = list(range(1, count + 1))
    delivered = {seq for seq, keep in zip(published, delivered_mask) if keep}
    runs = consecutive_loss_runs(published, delivered)
    # Runs are disjoint, ordered, and cover exactly the lost messages.
    covered = []
    for start, length in runs:
        covered.extend(range(start, start + length))
    assert covered == [seq for seq in published if seq not in delivered]
    assert all(length >= 1 for _, length in runs)
