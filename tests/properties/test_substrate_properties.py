"""Property-based tests of the simulation substrate (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import predict_utilization
from repro.clocks import PTP_EDGE, ClockSyncService, attach_clock
from repro.core.config import CostModel
from repro.core.policy import FCFS, FCFS_MINUS, FRAME, FRAME_PLUS
from repro.net.link import UniformLatency
from repro.net.topology import Network
from repro.sim import Engine, Host
from repro.workloads.spec import build_workload

from tests.helpers import TEST_PARAMS


# ----------------------------------------------------------------------
# Network: FIFO ordering holds for any jittery link and any send pattern
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    low_us=st.integers(1, 500),
    spread_us=st.integers(0, 5000),
    gaps_us=st.lists(st.integers(0, 2000), min_size=1, max_size=60),
    seed=st.integers(0, 10_000),
)
def test_link_never_reorders(low_us, spread_us, gaps_us, seed):
    engine = Engine(seed=seed)
    network = Network(engine)
    a, b = Host(engine, "a"), Host(engine, "b")
    network.connect(a, b, UniformLatency(low_us * 1e-6,
                                         (low_us + spread_us) * 1e-6))
    got = []
    network.register(b, "b/svc", got.append)
    t = 0.0
    for index, gap in enumerate(gaps_us):
        t += gap * 1e-6
        engine.call_at(t, network.send, a, "b/svc", index)
    engine.run()
    assert got == list(range(len(gaps_us)))


# ----------------------------------------------------------------------
# Clock sync: follower error stays bounded for any drift within spec
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    drift_ppm=st.floats(-100.0, 100.0, allow_nan=False),
    initial_offset_ms=st.floats(-50.0, 50.0, allow_nan=False),
    horizon=st.floats(2.0, 40.0, allow_nan=False),
    seed=st.integers(0, 10_000),
)
def test_sync_error_bounded_by_residual_plus_interval_drift(
        drift_ppm, initial_offset_ms, horizon, seed):
    engine = Engine(seed=seed)
    master = Host(engine, "master")
    follower = Host(engine, "follower")
    attach_clock(master)
    attach_clock(follower, offset=initial_offset_ms * 1e-3, drift_ppm=drift_ppm)
    ClockSyncService(engine, master, [follower], PTP_EDGE)
    engine.run(until=horizon)
    worst = PTP_EDGE.error_bound + abs(drift_ppm) * 1e-6 * PTP_EDGE.interval
    assert abs(follower.clock.error()) <= worst + 1e-12


# ----------------------------------------------------------------------
# Capacity model: structural properties over arbitrary workload sizes
# ----------------------------------------------------------------------
workload_sizes = st.integers(0, 5000).map(lambda n: 25 + 3 * n)


@settings(max_examples=30, deadline=None)
@given(total=workload_sizes)
def test_policy_demand_ordering_holds_for_any_workload(total):
    specs = build_workload(total, scale=1.0).specs
    costs = CostModel.calibrated(1.0)
    demands = {}
    for policy in (FRAME_PLUS, FRAME, FCFS_MINUS, FCFS):
        plan = predict_utilization(specs, policy, TEST_PARAMS, costs)
        demands[policy.name] = plan.module("primary_delivery").demand
    assert demands["FRAME+"] <= demands["FRAME"] <= demands["FCFS"]
    assert demands["FCFS-"] <= demands["FCFS"]


@settings(max_examples=30, deadline=None)
@given(total=workload_sizes, scale_pct=st.integers(1, 100))
def test_demand_is_scale_invariant(total, scale_pct):
    """Scaling topics by s and costs by 1/s preserves sensor-category
    demand exactly (the fixed categories distort only the constant term)."""
    scale = scale_pct / 100.0
    full = build_workload(total, scale=1.0)
    scaled = build_workload(total, scale=scale)
    costs_full = CostModel.calibrated(1.0)
    costs_scaled = CostModel.calibrated(scale)
    plan_full = predict_utilization(full.specs, FRAME, TEST_PARAMS, costs_full)
    plan_scaled = predict_utilization(scaled.specs, FRAME, TEST_PARAMS,
                                      costs_scaled)
    # The scaled sensor rate is rounded to whole topics; bound the error
    # by the contribution of one sensor category's rounding (3 topics at
    # 10 Hz each) plus the fixed categories' inflation (410 msg/s,
    # amplified by 1/scale on the cost side).
    sensor_rate_full = (total - 25) / 3 * 3 * 10.0
    rounding = 3 * 10.0 / scale * costs_full.dispatch
    fixed_inflation = 410.0 * (1.0 / scale - 1.0) * (
        costs_full.dispatch + costs_full.replicate + costs_full.coordinate)
    tolerance = rounding + fixed_inflation + 1e-9
    difference = abs(plan_scaled.module("primary_delivery").demand
                     - plan_full.module("primary_delivery").demand)
    assert difference <= tolerance


@settings(max_examples=30, deadline=None)
@given(total=workload_sizes)
def test_demand_monotone_in_workload(total):
    specs_small = build_workload(total, scale=1.0).specs
    specs_big = build_workload(total + 3, scale=1.0).specs
    costs = CostModel.calibrated(1.0)
    for policy in (FRAME, FCFS):
        small = predict_utilization(specs_small, policy, TEST_PARAMS, costs)
        big = predict_utilization(specs_big, policy, TEST_PARAMS, costs)
        for name in ("primary_proxy", "primary_delivery", "backup_proxy"):
            assert big.module(name).demand >= small.module(name).demand


# ----------------------------------------------------------------------
# EDF schedulability: known theorems as properties
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    tasks=st.lists(
        st.tuples(st.floats(1.0, 100.0, allow_nan=False),    # period
                  st.floats(0.01, 1.0, allow_nan=False)),    # utilization share
        min_size=1, max_size=6,
    ),
)
def test_implicit_deadline_edf_iff_utilization(tasks):
    """Liu & Layland: with D = T, EDF on one core is feasible iff U <= 1.
    The demand-bound test must agree exactly on both sides."""
    from repro.analysis.schedulability import SporadicTask, edf_schedulability

    built = [SporadicTask(f"t{i}", period, period * u_share, period)
             for i, (period, u_share) in enumerate(tasks)]
    total_u = sum(task.utilization for task in built)
    verdict = edf_schedulability(built, capacity=1.0)
    assert verdict.feasible_necessary == (total_u <= 1.0 + 1e-9)


@settings(max_examples=30, deadline=None)
@given(
    period=st.floats(2.0, 100.0, allow_nan=False),
    wcet_share=st.floats(0.05, 0.95, allow_nan=False),
    deadline_share=st.floats(0.1, 1.0, allow_nan=False),
)
def test_single_task_feasible_iff_wcet_fits_deadline(period, wcet_share,
                                                     deadline_share):
    from repro.analysis.schedulability import SporadicTask, edf_schedulability

    wcet = period * wcet_share
    deadline = period * deadline_share
    task = SporadicTask("t", period, wcet, deadline)
    verdict = edf_schedulability([task], capacity=1.0)
    assert verdict.feasible_necessary == (wcet <= deadline + 1e-12)


@settings(max_examples=20, deadline=None)
@given(
    tasks=st.lists(
        st.tuples(st.floats(1.0, 50.0, allow_nan=False),
                  st.floats(0.05, 0.5, allow_nan=False),
                  st.floats(0.5, 1.0, allow_nan=False)),
        min_size=1, max_size=5,
    ),
)
def test_tightening_deadlines_never_helps(tasks):
    """Monotonicity: shrinking every relative deadline can only turn a
    feasible set infeasible, never the reverse."""
    from repro.analysis.schedulability import SporadicTask, edf_schedulability

    loose = [SporadicTask(f"t{i}", p, p * c, p * d)
             for i, (p, c, d) in enumerate(tasks)]
    tight = [SporadicTask(f"t{i}", p, p * c, p * d * 0.7)
             for i, (p, c, d) in enumerate(tasks)]
    loose_ok = edf_schedulability(loose, capacity=1.0).feasible_necessary
    tight_ok = edf_schedulability(tight, capacity=1.0).feasible_necessary
    assert not (tight_ok and not loose_ok)


# ----------------------------------------------------------------------
# Cost model: scaling laws
# ----------------------------------------------------------------------
@settings(max_examples=40)
@given(scale_pct=st.integers(1, 100), factor_pct=st.integers(1, 300))
def test_cost_model_scaling_is_multiplicative(scale_pct, factor_pct):
    scale = scale_pct / 100.0
    factor = factor_pct / 100.0
    base = CostModel.calibrated(scale)
    scaled = base.scaled(factor)
    assert scaled.dispatch == base.dispatch * factor
    assert scaled.proxy_per_message == base.proxy_per_message * factor
    assert scaled.coordinate == base.coordinate * factor
    calibrated = CostModel.calibrated(1.0)
    assert base.dispatch * scale == calibrated.dispatch * 1.0 or abs(
        base.dispatch * scale - calibrated.dispatch) < 1e-15
