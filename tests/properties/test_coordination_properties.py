"""Schedule-fuzzing properties of the dispatch-replicate coordination.

The Table 3 algorithm must be correct under *any* interleaving of the
dispatch and replication work.  The simulator is deterministic, so we
explore interleavings by fuzzing the service-time parameters (and with
them the relative order of every dispatch, replication, prune, and
network delivery) and assert the coordination invariants on the outcome.
"""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import Message
from repro.core.policy import FCFS_MINUS, FRAME
from repro.core.units import ms, us

from tests.helpers import TEST_COSTS, build_mini, topic

cost_strategy = st.floats(1.0, 500.0, allow_nan=False)  # microseconds


def fuzzed_costs(proxy_us, dispatch_us, replicate_us, coordinate_us):
    return replace(
        TEST_COSTS,
        proxy_per_message=us(proxy_us),
        dispatch=us(dispatch_us),
        replicate=us(replicate_us),
        coordinate=us(coordinate_us),
    )


@settings(max_examples=25, deadline=None)
@given(proxy_us=cost_strategy, dispatch_us=cost_strategy,
       replicate_us=cost_strategy, coordinate_us=cost_strategy,
       workers=st.integers(1, 3), message_count=st.integers(1, 8))
def test_faultfree_frame_prunes_every_replicated_copy(
        proxy_us, dispatch_us, replicate_us, coordinate_us, workers,
        message_count):
    """Whatever the interleaving, once the system drains every replicated
    copy at the Backup is discarded — the invariant behind the paper's
    'the Backup Buffer was empty at the time of fault recovery'."""
    system = build_mini(
        [topic(topic_id=0)],
        policy=FRAME,
        costs=fuzzed_costs(proxy_us, dispatch_us, replicate_us, coordinate_us),
        delivery_workers=workers,
    )
    for seq in range(1, message_count + 1):
        system.engine.call_after(seq * ms(5),
                                 system.publish,
                                 [Message(0, seq, created_at=seq * ms(5))])
    system.engine.run(until=5.0)
    assert system.delivered_seqs(0) == set(range(1, message_count + 1))
    assert system.backup.backup_buffer.live_count() == 0
    # Every message was handled exactly one way: replicated or its
    # replication was aborted/cancelled.
    stats = system.primary.stats
    assert (stats.replicated + stats.replications_aborted
            + stats.replications_cancelled) >= message_count - (
                stats.replications_cancelled)
    assert stats.prunes_sent == stats.replicated
    assert system.backup.stats.prunes_applied == stats.prunes_sent
    assert len(system.primary.message_buffer) == 0


@settings(max_examples=20, deadline=None)
@given(proxy_us=cost_strategy, dispatch_us=cost_strategy,
       replicate_us=cost_strategy, workers=st.integers(1, 3),
       crash_ms=st.integers(1, 200))
def test_recovery_never_redispatches_discarded_copies(
        proxy_us, dispatch_us, replicate_us, workers, crash_ms):
    """Table 3's recovery step: a discarded copy is skipped, never
    re-dispatched — for any crash instant and any interleaving."""
    system = build_mini(
        [topic(topic_id=0)],
        policy=FRAME,
        costs=fuzzed_costs(proxy_us, dispatch_us, replicate_us, 10.0),
        delivery_workers=workers,
        with_promoter=True,
    )
    for seq in range(1, 6):
        system.engine.call_after(seq * ms(20),
                                 system.publish,
                                 [Message(0, seq, created_at=seq * ms(20))])
    system.engine.call_after(ms(crash_ms), system.primary_host.crash)
    system.engine.run(until=3.0)
    backup = system.backup
    discarded = sum(1 for entry in backup.backup_buffer.all_entries()
                    if entry.discard)
    # Recovery accounting: skipped == discarded copies present at
    # promotion; every recovered copy was live.
    assert backup.stats.recovery_skipped <= discarded
    assert backup.stats.recovery_dispatch_jobs + backup.stats.recovery_skipped \
        == backup.backup_buffer.total_count()
    # No subscriber ever sees a message twice (dedup absorbs recovery
    # and resend overlap).
    assert len(system.delivered_seqs(0)) == len(
        system.subscriber.stats.latency_by_seq.get(0, {}))


@settings(max_examples=15, deadline=None)
@given(dispatch_us=cost_strategy, replicate_us=cost_strategy,
       workers=st.integers(1, 3))
def test_fcfs_minus_never_prunes(dispatch_us, replicate_us, workers):
    system = build_mini(
        [topic(topic_id=0)],
        policy=FCFS_MINUS,
        costs=fuzzed_costs(10.0, dispatch_us, replicate_us, 10.0),
        delivery_workers=workers,
    )
    for seq in range(1, 4):
        system.engine.call_after(seq * ms(10),
                                 system.publish,
                                 [Message(0, seq, created_at=seq * ms(10))])
    system.engine.run(until=2.0)
    assert system.primary.stats.prunes_sent == 0
    assert system.backup.backup_buffer.live_count() == 3
