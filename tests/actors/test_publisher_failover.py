"""Publisher proxy tests: traffic generation, retention, fail-over."""

import pytest

from repro.core.model import Message
from repro.core.units import ms
from repro.actors.publisher import PublisherProxy, PublisherStats

from tests.helpers import build_mini, topic


def test_publisher_emits_one_message_per_topic_per_period():
    specs = [topic(topic_id=0), topic(topic_id=1)]
    system = build_mini(specs, with_publisher=True)
    system.engine.run(until=1.0)
    # 1 s at Ti = 100 ms (no jitter): ~10 creations per topic.
    for topic_id in (0, 1):
        created = system.publisher_stats.created[topic_id]
        assert 9 <= len(created) <= 11
        gaps = [b - a for a, b in zip(created, created[1:])]
        assert all(gap >= ms(100) - 1e-9 for gap in gaps)   # sporadic: >= Ti
    # All messages except possibly one created at the very horizon arrive.
    created_count = len(system.publisher_stats.created[0])
    assert system.delivered_seqs(0) >= set(range(1, created_count))


def test_sequence_numbers_are_consecutive_from_one():
    system = build_mini([topic(topic_id=0)], with_publisher=True)
    system.engine.run(until=0.55)
    log = system.publisher_stats.created[0]
    assert len(log) >= 5
    assert system.delivered_seqs(0) == set(range(1, len(log) + 1))


def test_failover_redirects_traffic_to_backup():
    system = build_mini([topic(topic_id=0)], with_publisher=True,
                        with_promoter=True)
    system.engine.call_after(0.5, system.primary_host.crash)
    system.engine.run(until=1.5)
    publisher = system.publisher
    assert publisher.current_target == system.backup.ingress_address
    assert system.publisher_stats.failover_at is not None
    assert system.publisher_stats.failover_at - 0.5 <= ms(50)
    # Messages created after fail-over are delivered by the new primary.
    created = system.publisher_stats.created[0]
    assert system.backup.stats.dispatched > 0
    missing = set(range(1, len(created) + 1)) - system.delivered_seqs(0)
    # At most the messages created during the outage window can be missing,
    # and retention Ni=1 recovers the last of them.
    assert len(missing) == 0


def test_failover_resends_retained_messages():
    system = build_mini([topic(topic_id=0, retention=2)], with_publisher=True,
                        with_promoter=True)
    system.engine.call_after(0.5, system.primary_host.crash)
    system.engine.run(until=1.5)
    assert system.publisher_stats.resends == 2   # Ni = 2 retained messages


def test_no_retention_means_no_resend():
    system = build_mini([topic(topic_id=0, loss=3, retention=0, category=3)],
                        with_publisher=True, with_promoter=True)
    system.engine.call_after(0.5, system.primary_host.crash)
    system.engine.run(until=1.5)
    assert system.publisher_stats.resends == 0


def test_proxy_rejects_mixed_periods():
    system = build_mini([topic(topic_id=0)])
    with pytest.raises(ValueError, match="share one period"):
        PublisherProxy(
            system.engine, system.pub_host, system.network, "bad",
            specs=[topic(topic_id=1, period=ms(100)),
                   topic(topic_id=2, period=ms(50), loss=3, retention=0)],
            primary_ingress=system.primary.ingress_address,
            backup_ingress=system.backup.ingress_address,
            failover_bound=ms(50), detector_poll=ms(15),
            detector_timeout=ms(10))


def test_proxy_rejects_detector_slower_than_failover_bound():
    system = build_mini([topic(topic_id=0)])
    with pytest.raises(ValueError, match="exceeds failover bound"):
        PublisherProxy(
            system.engine, system.pub_host, system.network, "slow",
            specs=[topic(topic_id=1)],
            primary_ingress=system.primary.ingress_address,
            backup_ingress=system.backup.ingress_address,
            failover_bound=ms(20),           # detector worst case is ~40 ms
            detector_poll=ms(15), detector_timeout=ms(10))


def test_proxy_requires_topics():
    system = build_mini([topic(topic_id=0)])
    with pytest.raises(ValueError, match="at least one topic"):
        PublisherProxy(
            system.engine, system.pub_host, system.network, "empty",
            specs=[], primary_ingress=system.primary.ingress_address,
            backup_ingress=system.backup.ingress_address,
            failover_bound=ms(50), detector_poll=ms(15),
            detector_timeout=ms(10))


def test_stats_merge_rejects_duplicate_topics():
    a = PublisherStats()
    b = PublisherStats()
    a.log_creation(1, 0.0)
    b.log_creation(1, 0.0)
    with pytest.raises(ValueError):
        a.merge(b)


def test_stats_merge_combines_disjoint_topics():
    a = PublisherStats()
    b = PublisherStats()
    a.log_creation(1, 0.0)
    b.log_creation(2, 0.0)
    b.batches_sent = 3
    a.merge(b)
    assert set(a.created) == {1, 2}
    assert a.batches_sent == 3
