"""Failure-detector and subscriber tests."""

import pytest

from repro.actors.detector import FailureDetector
from repro.actors.subscriber import Subscriber, SubscriberStats
from repro.core.model import Message
from repro.core.protocol import Deliver
from repro.core.units import ms

from tests.helpers import build_mini, topic


# ----------------------------------------------------------------------
# FailureDetector
# ----------------------------------------------------------------------
def make_detector(system, **overrides):
    kwargs = dict(poll_interval=ms(10), reply_timeout=ms(8), miss_threshold=2)
    kwargs.update(overrides)
    fired = []
    detector = FailureDetector(
        system.engine, system.backup_host, system.network, name="det",
        target_ctl_address=system.primary.ctl_address,
        on_failure=lambda: fired.append(system.engine.now), **kwargs)
    return detector, fired


def test_detector_stays_quiet_while_target_lives():
    system = build_mini([topic(topic_id=0)])
    detector, fired = make_detector(system)
    system.engine.run(until=2.0)
    assert fired == []
    assert detector.suspected_at is None


def test_detector_fires_once_after_crash():
    system = build_mini([topic(topic_id=0)])
    detector, fired = make_detector(system)
    system.engine.call_after(1.0, system.primary_host.crash)
    system.engine.run(until=3.0)
    assert len(fired) == 1
    assert fired[0] - 1.0 <= detector.worst_case_detection() + ms(1)
    assert not detector.process.alive   # detector retires after firing


def test_detection_latency_within_worst_case_bound():
    # Crash right after a successful poll: the worst case for detection.
    system = build_mini([topic(topic_id=0)])
    detector, fired = make_detector(system)
    system.engine.call_after(0.0101, system.primary_host.crash)
    system.engine.run(until=1.0)
    assert fired
    assert fired[0] - 0.0101 <= detector.worst_case_detection() + ms(1)


def test_single_missed_poll_does_not_trigger():
    """A transient timeout (one lost pong) must not cause fail-over."""
    system = build_mini([topic(topic_id=0)])
    detector, fired = make_detector(system, miss_threshold=2)
    # Briefly unregister the control endpoint to eat exactly one ping.
    ctl = system.primary.ctl_address

    def blackout():
        handler = system.network._endpoints[ctl]
        system.network.unregister(ctl)
        system.engine.call_after(ms(8), lambda: system.network.register(
            handler[0], ctl, handler[1]))

    system.engine.call_after(ms(9), blackout)
    system.engine.run(until=1.0)
    assert fired == []


def test_detector_validation():
    system = build_mini([topic(topic_id=0)])
    with pytest.raises(ValueError):
        FailureDetector(system.engine, system.backup_host, system.network,
                        name="bad", target_ctl_address="x", on_failure=lambda: None,
                        poll_interval=0.0, reply_timeout=ms(5))
    with pytest.raises(ValueError):
        FailureDetector(system.engine, system.backup_host, system.network,
                        name="bad2", target_ctl_address="x", on_failure=lambda: None,
                        poll_interval=ms(5), reply_timeout=ms(5), miss_threshold=0)


def test_worst_case_detection_formula():
    system = build_mini([topic(topic_id=0)])
    detector, _ = make_detector(system, poll_interval=ms(15),
                                reply_timeout=ms(10), miss_threshold=2)
    assert detector.worst_case_detection() == pytest.approx(ms(15) + 2 * ms(15))


# ----------------------------------------------------------------------
# Subscriber
# ----------------------------------------------------------------------
def test_subscriber_deduplicates_by_topic_seq():
    system = build_mini([topic(topic_id=0)])
    sub = system.subscriber
    message = Message(0, 1, created_at=0.0)
    sub._on_deliver(Deliver(message, dispatched_at=0.0))
    sub._on_deliver(Deliver(message, dispatched_at=0.0))
    assert sub.stats.duplicates == 1
    assert sub.stats.delivered_seqs(0) == {1}


def test_subscriber_latency_uses_local_clock():
    system = build_mini([topic(topic_id=0)])
    sub = system.subscriber
    system.engine.call_after(0.5, lambda: sub._on_deliver(
        Deliver(Message(0, 1, created_at=0.2), dispatched_at=0.45)))
    system.engine.run(until=1.0)
    assert sub.stats.latency_by_seq[0][1] == pytest.approx(0.3)


def test_traced_topic_records_delta_bs():
    system = build_mini([topic(topic_id=0)], traced_topics=(0,))
    sub = system.subscriber
    system.engine.call_after(0.5, lambda: sub._on_deliver(
        Deliver(Message(0, 1, created_at=0.2), dispatched_at=0.45,
                recovered=True)))
    system.engine.run(until=1.0)
    trace = sub.stats.traces[0]
    assert len(trace) == 1
    assert trace[0].delta_bs == pytest.approx(0.05)
    assert trace[0].recovered


def test_untraced_topic_keeps_no_series():
    system = build_mini([topic(topic_id=0)])
    sub = system.subscriber
    sub._on_deliver(Deliver(Message(0, 1, created_at=0.0), dispatched_at=0.0))
    assert sub.stats.traces == {}


def test_stats_merge_rejects_topic_overlap():
    a, b = SubscriberStats(), SubscriberStats()
    a.latency_by_seq[1] = {1: 0.1}
    b.latency_by_seq[1] = {2: 0.2}
    with pytest.raises(ValueError):
        a.merge(b)


def test_stats_merge_combines_traces():
    a, b = SubscriberStats(traced_topics=(1,)), SubscriberStats(traced_topics=(1,))
    b.latency_by_seq[1] = {1: 0.1}
    from repro.actors.subscriber import TracedDelivery
    b.traces[1].append(TracedDelivery(1, 0.5, 0.1, 0.01, False))
    a.merge(b)
    assert len(a.traces[1]) == 1
