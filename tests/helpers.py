"""A hand-wired mini deployment for broker-level tests.

Four hosts (publisher, primary, backup, subscriber) with constant link
latencies and no clock error, so tests can reason about exact timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.actors.detector import FailureDetector
from repro.actors.publisher import PublisherProxy, PublisherStats
from repro.actors.subscriber import Subscriber
from repro.core.broker import BACKUP, PRIMARY, Broker
from repro.core.config import CostModel, SystemConfig
from repro.core.model import EDGE, TopicSpec
from repro.core.policy import FRAME, ConfigPolicy
from repro.core.protocol import PublishBatch
from repro.core.timing import DeadlineParameters
from repro.core.units import ms, us
from repro.net.topology import Network
from repro.sim.engine import Engine
from repro.sim.host import Host

#: Cheap, uniform costs so tests stay fast and arithmetic stays simple.
TEST_COSTS = CostModel(
    proxy_per_message=us(10), dispatch=us(20), replicate=us(20),
    coordinate=us(10), backup_store=us(10), backup_prune=us(5),
    recovery_skip=us(1), recovery_select=us(10),
)

TEST_PARAMS = DeadlineParameters(
    delta_pb=ms(0.3), delta_bb=ms(0.05), delta_bs_edge=ms(1.0),
    delta_bs_cloud=ms(20.0), failover_time=ms(50.0),
)


def topic(topic_id=0, period=ms(100), deadline=ms(100), loss=0, retention=1,
          category=2) -> TopicSpec:
    return TopicSpec(topic_id=topic_id, period=period, deadline=deadline,
                     loss_tolerance=loss, retention=retention,
                     destination=EDGE, category=category)


@dataclass
class MiniSystem:
    engine: Engine
    network: Network
    pub_host: Host
    primary_host: Host
    backup_host: Host
    sub_host: Host
    primary: Broker
    backup: Broker
    subscriber: Subscriber
    config: SystemConfig
    publisher: Optional[PublisherProxy] = None
    publisher_stats: PublisherStats = field(default_factory=PublisherStats)

    def publish(self, messages, resend=False, publisher_id="test-pub") -> None:
        """Inject a batch directly from the publisher host."""
        self.network.send(self.pub_host, self.primary.ingress_address,
                          PublishBatch(publisher_id, list(messages), resend=resend))

    def delivered_seqs(self, topic_id: int):
        return self.subscriber.stats.delivered_seqs(topic_id)

    def latencies(self, topic_id: int) -> Dict[int, float]:
        return self.subscriber.stats.latency_by_seq.get(topic_id, {})


def build_mini(specs: List[TopicSpec], policy: ConfigPolicy = FRAME,
               costs: CostModel = TEST_COSTS,
               link_latency: float = ms(0.25),
               broker_link: float = ms(0.05),
               backup_capacity: int = 10,
               delivery_workers: int = 2,
               with_publisher: bool = False,
               with_promoter: bool = False,
               traced_topics: Tuple[int, ...] = (),
               seed: int = 0) -> MiniSystem:
    engine = Engine(seed=seed)
    network = Network(engine)
    pub_host = Host(engine, "pub")
    primary_host = Host(engine, "primary")
    backup_host = Host(engine, "backup")
    sub_host = Host(engine, "sub")
    network.connect(pub_host, primary_host, link_latency)
    network.connect(pub_host, backup_host, link_latency)
    network.connect(primary_host, backup_host, broker_link)
    network.connect(primary_host, sub_host, link_latency)
    network.connect(backup_host, sub_host, link_latency)

    config = SystemConfig.from_specs(
        specs, policy=policy, params=TEST_PARAMS, costs=costs,
        subscriptions={spec.topic_id: ("sub/sub",) for spec in specs},
        backup_buffer_capacity=backup_capacity,
        delivery_workers=delivery_workers,
    )
    primary = Broker(engine, primary_host, network, config, name="B1",
                     role=PRIMARY, peer_name="B2")
    backup = Broker(engine, backup_host, network, config, name="B2",
                    role=BACKUP, peer_name=None)
    primary.stats.set_window(0.0, 1e9)
    backup.stats.set_window(0.0, 1e9)
    subscriber = Subscriber(engine, sub_host, network, name="sub",
                            traced_topics=traced_topics)
    system = MiniSystem(engine=engine, network=network, pub_host=pub_host,
                        primary_host=primary_host, backup_host=backup_host,
                        sub_host=sub_host, primary=primary, backup=backup,
                        subscriber=subscriber, config=config)
    if with_publisher:
        system.publisher = PublisherProxy(
            engine, pub_host, network, publisher_id="proxy-0",
            specs=list(config.topics.values()),
            primary_ingress=primary.ingress_address,
            backup_ingress=backup.ingress_address,
            failover_bound=ms(50), detector_poll=ms(15),
            detector_timeout=ms(10), detector_misses=2,
            jitter_fraction=0.0, stats=system.publisher_stats,
        )
    if with_promoter:
        FailureDetector(engine, backup_host, network, name="promoter",
                        target_ctl_address=primary.ctl_address,
                        on_failure=backup.promote,
                        poll_interval=ms(10), reply_timeout=ms(8),
                        miss_threshold=2)
    return system
