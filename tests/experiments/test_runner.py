"""Tests for the experiment runner: invariants every cell must satisfy."""

import math
from dataclasses import replace

import pytest

from repro.core.policy import FCFS_MINUS, FRAME, FRAME_PLUS
from repro.experiments.runner import ExperimentSettings, run_experiment

#: A tiny but complete cell (all six categories present).
TINY = ExperimentSettings(paper_total=1525, scale=0.02, seed=5,
                          warmup=1.0, measure=4.0, grace=0.5)


@pytest.fixture(scope="module")
def faultfree():
    return run_experiment(TINY)


@pytest.fixture(scope="module")
def crashed():
    return run_experiment(replace(TINY, crash_at=2.0, traced_categories=(0, 2, 5)))


# ----------------------------------------------------------------------
# Conservation and sanity invariants
# ----------------------------------------------------------------------
def test_delivered_is_subset_of_published(faultfree):
    result = faultfree
    for spec in result.workload.specs:
        delivered = result.subscriber_stats.delivered_seqs(spec.topic_id)
        created = len(result.publisher_stats.created.get(spec.topic_id, []))
        assert all(1 <= seq <= created for seq in delivered)


def test_every_topic_has_traffic(faultfree):
    for spec in faultfree.workload.specs:
        assert len(faultfree.publisher_stats.created.get(spec.topic_id, [])) > 0


def test_utilizations_are_fractions(faultfree):
    for name, value in faultfree.utilizations().items():
        assert 0.0 <= value <= 1.0, name


def test_faultfree_run_has_no_promotion(faultfree):
    assert faultfree.crash_time is None
    assert faultfree.backup_broker.stats.promotion_time is None
    assert faultfree.publisher_stats.failover_at is None


def test_faultfree_light_load_meets_everything(faultfree):
    for rate in faultfree.loss_success_by_row().values():
        assert rate == 1.0
    for rate in faultfree.latency_success_by_row().values():
        assert rate == 1.0


def test_rows_cover_all_six_categories(faultfree):
    assert len(faultfree.loss_success_by_row()) == 6


# ----------------------------------------------------------------------
# Crash-run invariants
# ----------------------------------------------------------------------
def test_crash_triggers_promotion_and_failover(crashed):
    result = crashed
    assert result.crash_time is not None
    promotion = result.backup_broker.stats.promotion_time
    assert promotion is not None
    assert promotion > result.crash_time
    assert promotion - result.crash_time < 0.06
    assert result.publisher_stats.failover_at is not None
    assert (result.publisher_stats.failover_at - result.crash_time
            <= result.settings.failover_bound)


def test_crash_run_still_meets_loss_tolerance_at_light_load(crashed):
    for key, rate in crashed.loss_success_by_row().items():
        assert rate == 1.0, key


def test_backup_dispatches_after_promotion(crashed):
    assert crashed.backup_broker.stats.dispatched > 0


def test_traced_categories_have_series(crashed):
    for category in (0, 2, 5):
        trace = crashed.trace_of_category(category)
        assert len(trace) > 0
        # Deliveries happen on both sides of the crash.
        assert any(t.received_true_time < crashed.crash_time for t in trace)
        assert any(t.received_true_time > crashed.crash_time for t in trace)


def test_duplicates_only_arise_from_recovery(faultfree, crashed):
    assert faultfree.subscriber_stats.duplicates == 0
    assert crashed.subscriber_stats.duplicates >= 0


# ----------------------------------------------------------------------
# Settings validation and determinism
# ----------------------------------------------------------------------
def test_crash_outside_measure_rejected():
    with pytest.raises(ValueError, match="measuring phase"):
        run_experiment(replace(TINY, crash_at=100.0))


def test_same_seed_same_results():
    a = run_experiment(TINY)
    b = run_experiment(TINY)
    assert a.loss_success_by_row() == b.loss_success_by_row()
    assert a.latency_success_by_row() == b.latency_success_by_row()
    assert a.utilizations() == b.utilizations()


def test_different_seeds_differ_somewhere():
    a = run_experiment(TINY)
    b = run_experiment(replace(TINY, seed=6))
    assert a.utilizations() != b.utilizations()


def test_published_seqs_respects_accounting_window(faultfree):
    spec = faultfree.workload.specs[0]
    seqs = faultfree.published_seqs(spec.topic_id)
    log = faultfree.publisher_stats.created[spec.topic_id]
    t0, _ = faultfree.window
    for seq in seqs:
        assert t0 <= log[seq - 1] < faultfree.accounting_end


def test_latency_percentiles_by_row(faultfree):
    p50 = faultfree.latency_percentile_by_row(0.5)
    p99 = faultfree.latency_percentile_by_row(0.99)
    assert set(p50) == set(faultfree.loss_success_by_row())
    for key in p50:
        assert 0.0 < p50[key] <= p99[key]
    # Cloud rows ride the WAN (>=20 ms floor): their median clearly
    # exceeds the edge rows' (which carry only LAN + service time).
    assert p50[(500.0, 0)] > 2 * p50[(100.0, 0)]
    assert p50[(500.0, 0)] > 0.020


def test_fanout_delivers_to_all_and_judges_worst_case():
    """subscribers_per_topic=2: every edge message reaches both edge
    subscriber hosts; guarantees still hold at light load and the broker
    dispatches once per message (one job, two pushes)."""
    single = run_experiment(TINY)
    fanned = run_experiment(replace(TINY, subscribers_per_topic=2))
    for rate in fanned.loss_success_by_row().values():
        assert rate == 1.0
    for rate in fanned.latency_success_by_row().values():
        assert rate == 1.0
    # Dispatch count is per message, not per subscriber...
    assert fanned.primary_broker.stats.dispatched == pytest.approx(
        single.primary_broker.stats.dispatched, rel=0.02)
    # ...while the wire carries roughly one extra push per edge message.
    edge_specs = [spec for spec in fanned.workload.specs
                  if spec.destination != "cloud"]
    assert len(edge_specs) > 0


def test_fanout_validation():
    with pytest.raises(ValueError, match="subscribers_per_topic"):
        run_experiment(replace(TINY, subscribers_per_topic=3))
    with pytest.raises(ValueError, match="subscribers_per_topic"):
        run_experiment(replace(TINY, subscribers_per_topic=0))


def test_topic_spec_lookup(faultfree):
    spec = faultfree.workload.specs[3]
    assert faultfree.topic_spec(spec.topic_id) == spec
    with pytest.raises(KeyError):
        faultfree.topic_spec(10**9)
