"""Sanity checks on the transcribed paper numbers (paper_reference.py).

These guard against transcription slips: every table block must cover all
six rows and all four policies, with percentages in range, and the
qualitative relationships the paper's text states must hold *within the
transcription itself*.
"""

import math

from repro.experiments import paper_reference as ref


def test_tables_cover_all_rows_and_policies():
    for table in (ref.TABLE4, ref.TABLE5):
        for workload, rows in table.items():
            assert set(rows) == set(ref.ROWS), workload
            for row, by_policy in rows.items():
                assert set(by_policy) == set(ref.POLICIES), (workload, row)


def test_values_are_percentages():
    for table in (ref.TABLE4, ref.TABLE5):
        for rows in table.values():
            for by_policy in rows.values():
                for value in by_policy.values():
                    assert 0.0 <= value <= 100.0


def test_table4_fcfs_collapse_is_transcribed():
    for workload in (7525, 10525, 13525):
        for row in ref.ROWS:
            expected = 100.0 if math.isinf(row[1]) else 0.0
            assert ref.TABLE4[workload][row]["FCFS"] == expected


def test_table4_frame_plus_always_100():
    for workload, rows in ref.TABLE4.items():
        for by_policy in rows.values():
            assert by_policy["FRAME+"] == 100.0


def test_frame_degrades_only_at_13525():
    for workload in (7525, 10525):
        for row in ref.ROWS:
            assert ref.TABLE4[workload][row]["FRAME"] == 100.0
    finite_rows = [row for row in ref.ROWS if not math.isinf(row[1])]
    degraded = [ref.TABLE4[13525][row]["FRAME"] for row in finite_rows]
    assert all(value < 100.0 for value in degraded)
    assert all(value >= 70.0 for value in degraded)


def test_table5_orderings_match_paper_text():
    # At 13525: FRAME+ and FCFS- in the high 90s, FRAME in the mid 80s,
    # FCFS collapsed.
    for row in ref.ROWS:
        block = ref.TABLE5[13525][row]
        assert block["FCFS"] < 1.0
        assert 80.0 <= block["FRAME"] <= 90.0
        assert block["FRAME+"] >= 97.0
        assert block["FCFS-"] >= 98.0


def test_paper_value_lookup():
    assert ref.paper_value(ref.TABLE4, 13525, (100, 0), "FCFS-") == 78.4
    assert ref.paper_value(ref.TABLE4, 1525, (50, 0), "FRAME") is None
    assert ref.paper_value(ref.TABLE4, 7525, (50, 0), "NoSuchPolicy") is None
    assert ref.paper_value(ref.TABLE4, 7525, (49, 0), "FRAME") is None


def test_fig8_constants():
    assert ref.FIG8_DELTA_BS_SETUP_MS == 20.7
    assert ref.FIG8_SPIKE_MS == 104.0
    assert set(ref.FIG9_NOTES) == set(ref.POLICIES)
