"""Tests for the multi-edge extension (Fig. 1: N edges, one cloud)."""

from dataclasses import replace

import pytest

from repro.experiments.multi_edge import EDGE_TOPIC_STRIDE, run_multi_edge
from repro.experiments.runner import ExperimentSettings

TINY = ExperimentSettings(paper_total=1525, scale=0.02, seed=9,
                          warmup=1.0, measure=4.0, grace=0.5)


@pytest.fixture(scope="module")
def two_edges_crash():
    return run_multi_edge(replace(TINY, crash_at=2.0), num_edges=2,
                          crash_edge=0)


def test_both_edges_carry_traffic(two_edges_crash):
    for edge in two_edges_crash.edges:
        assert edge.primary_broker.stats.dispatched > 0 or (
            edge.backup_broker.stats.dispatched > 0)


def test_topic_ids_do_not_collide(two_edges_crash):
    ids_0 = {spec.topic_id for spec in two_edges_crash.edge(0).workload.specs}
    ids_1 = {spec.topic_id for spec in two_edges_crash.edge(1).workload.specs}
    assert ids_0.isdisjoint(ids_1)
    assert all(topic_id >= EDGE_TOPIC_STRIDE for topic_id in ids_1)


def test_crash_is_isolated_to_one_edge(two_edges_crash):
    crashed = two_edges_crash.edge(0)
    healthy = two_edges_crash.edge(1)
    # The crashed edge failed over...
    assert crashed.crash_time is not None
    assert crashed.backup_broker.stats.promotion_time is not None
    assert crashed.publisher_stats.failover_at is not None
    # ...the healthy edge never noticed.
    assert healthy.crash_time is None
    assert healthy.backup_broker.stats.promotion_time is None
    assert healthy.publisher_stats.failover_at is None
    assert healthy.primary_broker.host.alive


def test_guarantees_hold_on_both_edges_at_light_load(two_edges_crash):
    for edge in two_edges_crash.edges:
        for key, rate in edge.loss_success_by_row().items():
            assert rate == 1.0, (edge.workload.name, key)


def test_cloud_receives_from_every_edge(two_edges_crash):
    received = two_edges_crash.cloud_topics_received()
    assert received[0] > 0
    assert received[1] > 0


def test_cloud_rows_present_per_edge(two_edges_crash):
    for edge in two_edges_crash.edges:
        latency = edge.latency_success_by_row()
        assert (500.0, 0) in latency
        assert latency[(500.0, 0)] == 1.0


def test_validation():
    with pytest.raises(ValueError, match="at least one edge"):
        run_multi_edge(TINY, num_edges=0)
    with pytest.raises(ValueError, match="out of range"):
        run_multi_edge(replace(TINY, crash_at=2.0), num_edges=2, crash_edge=5)
    with pytest.raises(ValueError, match="requires settings.crash_at"):
        run_multi_edge(TINY, num_edges=2, crash_edge=0)


def test_single_edge_reduces_to_normal_shape():
    result = run_multi_edge(TINY, num_edges=1)
    assert len(result.edges) == 1
    assert result.crashed_edge is None
    edge = result.edge(0)
    assert len(edge.loss_success_by_row()) == 6
