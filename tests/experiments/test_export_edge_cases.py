"""Edge-case tests for export, cells, and reporting utilities."""

import math

import pytest

from repro.experiments import paper_reference
from repro.experiments.cells import TABLE_ROWS
from repro.metrics.report import format_table, format_value


def test_table_rows_match_paper_reference_rows():
    """The harness's row order must equal the paper's (both are (Di, Li))."""
    assert [(float(di), li) for di, li in paper_reference.ROWS] == [
        (di, li) for di, li in TABLE_ROWS
    ]


def test_format_value_digit_control():
    assert format_value(12.345, 0.0, digits=2) == "12.35"
    assert format_value(12.345, 0.5, digits=2) == "12.35 ± 0.50"


def test_format_value_tiny_interval_uses_scientific():
    rendered = format_value(99.9, 0.00025)
    assert "E" in rendered
    assert rendered.startswith("99.9")


def test_format_table_empty_rows():
    text = format_table("T", ["a"], [])
    assert "T" in text
    assert text.count("\n") >= 3


def test_format_table_handles_wide_cells():
    text = format_table("T", ["col"], [["a-very-very-long-cell-value"]])
    header_line = text.splitlines()[2]
    value_line = text.splitlines()[4]
    assert len(header_line) <= len(value_line)


def test_row_keys_infinity_is_json_safe():
    from repro.experiments.export import _row_key_obj

    obj = _row_key_obj((100.0, math.inf))
    assert obj == {"di_ms": 100.0, "li": "inf"}
    obj = _row_key_obj((50.0, 3))
    assert obj == {"di_ms": 50.0, "li": 3}
