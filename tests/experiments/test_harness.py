"""Tests for the harness: cells cache, tables, figures, export, CLI."""

import json
import os
from dataclasses import replace

import pytest

from repro.core.policy import FCFS_MINUS, FRAME
from repro.experiments import ablations, cells, export, figures, tables
from repro.experiments.cli import main as cli_main
from repro.experiments.runner import ExperimentSettings

TINY = ExperimentSettings(paper_total=1525, scale=0.02, seed=1,
                          warmup=1.0, measure=3.0, grace=0.5)


# ----------------------------------------------------------------------
# Cell cache
# ----------------------------------------------------------------------
def test_run_cell_caches_by_settings():
    cells.clear_cache()
    first = cells.run_cell(TINY)
    size_after_first = cells.cache_size()
    second = cells.run_cell(TINY)
    assert first is second
    assert cells.cache_size() == size_after_first


def test_different_settings_get_different_cells():
    cells.clear_cache()
    a = cells.run_cell(TINY)
    b = cells.run_cell(replace(TINY, seed=2))
    assert a is not b
    assert cells.cache_size() == 2


def test_keep_series_upgrades_cached_cell():
    cells.clear_cache()
    traced = replace(TINY, traced_categories=(0,))
    without = cells.run_cell(traced)              # summary without series
    assert without.traces[0].series == ()
    upgraded = cells.run_cell(traced, keep_series=True)
    assert upgraded.traces[0].series != ()
    assert cells.run_cell(traced, keep_series=True) is upgraded


def test_summary_counters_are_consistent():
    cells.clear_cache()
    summary = cells.run_cell(TINY)
    counters = summary.broker_counters
    assert counters["primary_dispatched"] > 0
    # Everything replicated was stored (reliable broker link, no crash).
    assert counters["backup_replicas_stored"] == counters["primary_replicated"]
    assert counters["backup_prunes_applied"] == counters["primary_prunes_sent"]


# ----------------------------------------------------------------------
# Tables and figures over a tiny sweep
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_table4():
    return tables.table4(workloads=(1525,), seeds=(1, 2), settings=TINY)


def test_table4_structure(tiny_table4):
    assert tiny_table4.workloads == (1525,)
    assert set(tiny_table4.policies) == {"FRAME+", "FRAME", "FCFS", "FCFS-"}
    cell = tiny_table4.cell(1525, (50.0, 0), "FRAME")
    assert cell.mean == 100.0
    assert cell.paper is None   # the paper has no 1525 block in Table 4


def test_table4_render_contains_rows(tiny_table4):
    text = tiny_table4.render()
    assert "TABLE 4" in text
    assert "inf" in text
    assert "FRAME+" in text


def test_fig7_tiny():
    result = figures.fig7(workloads=(1525,), seeds=(1,), settings=TINY)
    assert result.value("primary_delivery", 1525, "FCFS") >= result.value(
        "primary_delivery", 1525, "FRAME+")
    assert "FIG 7" in result.render()


def test_fig9_tiny():
    result = figures.fig9(paper_total=1525, scale=0.05,
                          settings=replace(TINY, scale=0.05, measure=4.0),
                          policies=(FRAME, FCFS_MINUS))
    frame = result.trace("FRAME", 0)
    assert frame.delivered > 0
    assert "FIG 9" in result.render()
    assert result.series[("FRAME", 0)]   # full series retained


def test_fig8_tiny():
    result = figures.fig8(scale=0.02, day_length=20.0,
                          settings=ExperimentSettings(warmup=1.0))
    assert result.losses == 0
    assert result.max_delta_bs > result.min_delta_bs
    assert "FIG 8" in result.render()


def test_retention_sweep_analysis():
    sweep = ablations.retention_sweep(bonuses=(0, 1))
    assert sweep.replicated_categories[0] == (2, 5)
    assert sweep.replicated_categories[1] == ()


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------
def test_table_to_dict_and_csv(tiny_table4, tmp_path):
    obj = export.table_to_dict(tiny_table4)
    assert obj["metric"] == "loss"
    assert len(obj["cells"]) == 1 * 6 * 4
    inf_cells = [c for c in obj["cells"] if c["li"] == "inf"]
    assert len(inf_cells) == 4

    json_path = tmp_path / "table4.json"
    export.save_json(obj, str(json_path))
    loaded = json.loads(json_path.read_text())
    assert loaded["cells"][0]["workload"] == 1525

    csv_path = tmp_path / "table4.csv"
    export.table_to_csv(tiny_table4, str(csv_path))
    lines = csv_path.read_text().strip().splitlines()
    assert lines[0].startswith("workload,di_ms,li,policy")
    assert len(lines) == 1 + 24


def test_fig_exports(tmp_path):
    fig8 = figures.fig8(scale=0.02, day_length=20.0,
                        settings=ExperimentSettings(warmup=1.0))
    obj = export.fig8_to_dict(fig8)
    assert obj["losses"] == 0
    assert obj["series"]
    fig9 = figures.fig9(paper_total=1525, scale=0.05,
                        settings=replace(TINY, scale=0.05, measure=4.0),
                        policies=(FRAME,), categories=(0,))
    obj9 = export.fig9_to_dict(fig9)
    assert obj9["panels"][0]["policy"] == "FRAME"
    assert obj9["panels"][0]["series"]
    fig7 = figures.fig7(workloads=(1525,), seeds=(1,), settings=TINY)
    obj7 = export.fig7_to_dict(fig7)
    assert len(obj7["points"]) == 3 * 1 * 4


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_fig8_writes_output(tmp_path, capsys, monkeypatch):
    out_file = tmp_path / "out.txt"
    # fig8 is the cheapest full command; shrink it via the scale flag.
    code = cli_main(["--scale", "0.02", "--seeds", "1",
                     "--out", str(out_file), "fig8"])
    assert code == 0
    printed = capsys.readouterr().out
    assert "FIG 8" in printed
    assert "FIG 8" in out_file.read_text()


def test_cli_json_export(tmp_path):
    json_dir = tmp_path / "json"
    code = cli_main(["--scale", "0.02", "--seeds", "1",
                     "--json-dir", str(json_dir), "fig8"])
    assert code == 0
    exported = json.loads((json_dir / "fig8.json").read_text())
    assert exported["losses"] == 0


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        cli_main([])


def test_cli_parser_has_all_commands():
    parser = __import__("repro.experiments.cli", fromlist=["build_parser"]).build_parser()
    text = parser.format_help()
    for command in ("table4", "table5", "fig7", "fig8", "fig9", "ablations",
                    "strategies", "plan", "all"):
        assert command in text


def test_cli_plan_with_table2_workload(capsys):
    code = cli_main(["plan", "--workload", "7525", "--policy", "FCFS"])
    assert code == 0
    out = capsys.readouterr().out
    assert "OVERLOADED" in out
    assert "NOT deployable" in out


def test_cli_plan_with_custom_topic_file(tmp_path, capsys):
    from repro.workloads.custom import save_topics
    from repro.workloads.spec import build_workload

    path = tmp_path / "topics.json"
    save_topics(list(build_workload(1525, scale=0.1).specs), str(path))
    code = cli_main(["plan", "--topics", str(path), "--policy", "FRAME"])
    assert code == 0
    out = capsys.readouterr().out
    assert "DEPLOYABLE" in out
    assert "rejected topics : 0" in out


def test_summarize_records_series_reduction_flag():
    cells.clear_cache()
    traced = replace(TINY, traced_categories=(0,), seed=5)
    without = cells.run_cell(traced)
    assert not without.series_kept
    kept = cells.run_cell(traced, keep_series=True)
    assert kept.series_kept


def test_zero_delivery_traced_cell_round_trips_with_keep_series():
    """Regression: ``_has_series`` inferred reduction from non-empty
    series tuples, so a cached cell whose traced topic legitimately
    delivered zero messages re-simulated on every ``keep_series=True``
    sweep.  The reduction is now recorded explicitly."""
    from repro.experiments.cells import CellSummary, TraceSummary

    cells.clear_cache()
    settings = replace(TINY, traced_categories=(0,), seed=97)
    empty_trace = TraceSummary(
        category=0, peak_latency_before=float("nan"),
        peak_latency_after=float("nan"), total_losses=0,
        max_consecutive_losses=0, delivered=0, series=())
    summary = CellSummary(
        policy_name="FRAME", paper_total=TINY.paper_total, seed=97,
        crashed=False, loss_by_row={}, latency_by_row={}, utilizations={},
        traces={0: empty_trace}, broker_counters={}, series_kept=True)
    cells.adopt_cell(settings, summary)
    # In-memory recall: a zero-delivery series still satisfies keep_series.
    assert cells.cached_cell(settings, keep_series=True) is summary
    # Disk-cache round trip preserves the flag.
    cells.clear_cache()
    recalled = cells.cached_cell(settings, keep_series=True)
    assert recalled is not None
    assert recalled.series_kept
    assert recalled.traces[0].delivered == 0
