"""Tests for the parallel sweep executor and the persistent cell cache.

The load-bearing property: a sweep's summaries are bit-for-bit identical
whatever ``jobs`` is, and a summary survives a disk round-trip into a
fresh process losslessly.
"""

import os
import pickle
import subprocess
import sys
from dataclasses import replace

import pytest

from repro.core.policy import FCFS_MINUS, FRAME
from repro.experiments import cellcache, cells
from repro.experiments.parallel import (
    resolve_jobs,
    run_cells,
    run_multi_edge_cells,
)
from repro.experiments.runner import ExperimentSettings

TINY = ExperimentSettings(paper_total=1525, scale=0.02, seed=1,
                          warmup=1.0, measure=3.0, grace=0.5)


def same_summary(a, b) -> bool:
    """Strict structural equality that also treats NaN == NaN as true.

    Dataclass ``==`` falls over on summaries that crossed a process or
    disk boundary: ``peak_latency_after`` is NaN for fault-free traces,
    and a deserialized NaN is a different object, defeating the container
    identity shortcut.  Identical pickle bytes ⇒ identical structure.
    """
    return pickle.dumps(a) == pickle.dumps(b)

#: The acceptance-criteria sweep shape: 2 policies x 3 seeds, one crash
#: (Table 4-style) and one fault-free (Table 5-style) variant each.
SWEEP = [replace(TINY, policy=policy, seed=seed, crash_at=crash_at)
         for policy in (FRAME, FCFS_MINUS)
         for seed in (1, 2, 3)
         for crash_at in (None, TINY.measure / 2.0)]


@pytest.fixture()
def fresh_cache(tmp_path):
    """A private, empty disk cache for one test; restores the previous one."""
    previous = cellcache.cache_dir()
    cellcache.set_cache_dir(str(tmp_path / "cellcache"))
    cells.clear_cache()
    yield str(tmp_path / "cellcache")
    cells.clear_cache()
    cellcache.set_cache_dir(previous)


# ----------------------------------------------------------------------
# jobs resolution
# ----------------------------------------------------------------------
def test_resolve_jobs_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(None) == 1
    assert resolve_jobs(3) == 3
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs(None) == 5
    assert resolve_jobs(2) == 2          # explicit argument wins
    assert resolve_jobs(0) == (os.cpu_count() or 1)
    monkeypatch.setenv("REPRO_JOBS", "many")
    with pytest.raises(ValueError, match="REPRO_JOBS"):
        resolve_jobs(None)


# ----------------------------------------------------------------------
# Parallel-vs-serial equivalence
# ----------------------------------------------------------------------
def test_parallel_and_serial_sweeps_are_identical(fresh_cache):
    serial = run_cells(SWEEP, jobs=1)
    cells.clear_cache()
    cellcache.clear_disk_cache()
    parallel = run_cells(SWEEP, jobs=4)
    assert len(serial) == len(SWEEP)
    for cell_serial, cell_parallel in zip(serial, parallel):
        assert cell_serial == cell_parallel


def test_run_cells_preserves_order_and_dedupes(fresh_cache):
    sweep = [TINY, replace(TINY, seed=2), TINY]    # duplicate first cell
    summaries = run_cells(sweep, jobs=2)
    assert summaries[0] == summaries[2]
    assert summaries[0].seed == 1
    assert summaries[1].seed == 2
    # The duplicate was simulated once: two unique cells, two disk entries.
    assert cellcache.disk_cache_size() == 2


def test_multi_edge_parallel_matches_serial(fresh_cache):
    tasks = [(replace(TINY, seed=9, measure=4.0, crash_at=2.0), 2, 0),
             (replace(TINY, seed=9, measure=4.0), 2, None)]
    serial = run_multi_edge_cells(tasks, jobs=1)
    parallel = run_multi_edge_cells(tasks, jobs=2)
    assert serial == parallel
    crashed, healthy = serial[0]
    assert crashed.crashed and not healthy.crashed


# ----------------------------------------------------------------------
# Persistent cache
# ----------------------------------------------------------------------
def test_cache_round_trip_is_lossless(fresh_cache):
    original = cells.run_cell(TINY)
    assert cellcache.disk_cache_size() == 1
    cells.clear_cache()                      # simulate a fresh process
    reloaded = cells.run_cell(TINY)
    assert reloaded == original
    assert cells.cache_size() == 1           # served from disk, no rerun


def test_cache_round_trip_in_fresh_process(fresh_cache):
    traced = replace(TINY, traced_categories=(0,))
    original = cells.run_cell(traced, keep_series=True)
    script = (
        "from dataclasses import replace\n"
        "import pickle, sys\n"
        "from repro.experiments import cellcache, cells\n"
        "from repro.experiments.runner import ExperimentSettings\n"
        f"cellcache.set_cache_dir({fresh_cache!r})\n"
        "settings = replace(ExperimentSettings(paper_total=1525, scale=0.02,"
        " seed=1, warmup=1.0, measure=3.0, grace=0.5),"
        " traced_categories=(0,))\n"
        "summary = cells.cached_cell(settings, keep_series=True)\n"
        "assert summary is not None, 'disk cache missed in fresh process'\n"
        "sys.stdout.buffer.write(pickle.dumps(summary))\n"
    )
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run([sys.executable, "-c", script], env=env,
                          capture_output=True, check=True)
    assert same_summary(pickle.loads(proc.stdout), original)


def test_keep_series_upgrade_through_disk_cache(fresh_cache):
    traced = replace(TINY, traced_categories=(0,))
    without = cells.run_cell(traced)
    assert without.traces[0].series == ()
    cells.clear_cache()                      # only the series-free disk entry
    upgraded = cells.run_cell(traced, keep_series=True)
    assert upgraded.traces[0].series != ()
    cells.clear_cache()
    # The richer summary overwrote the disk entry; both request styles hit it.
    assert cells.run_cell(traced, keep_series=True).traces[0].series != ()
    assert same_summary(cells.run_cell(traced), upgraded)


def test_cache_key_depends_on_settings_and_code_version(fresh_cache, monkeypatch):
    key = cellcache.cache_key(TINY)
    assert key == cellcache.cache_key(TINY)
    assert key != cellcache.cache_key(replace(TINY, seed=2))
    monkeypatch.setattr(cellcache, "_code_version", "somethingelse")
    assert key != cellcache.cache_key(TINY)


def test_corrupt_cache_entry_is_a_miss(fresh_cache):
    original = cells.run_cell(TINY)
    path = os.path.join(fresh_cache, cellcache.cache_key(TINY) + ".pkl")
    with open(path, "wb") as handle:
        handle.write(b"not a pickle")
    cells.clear_cache()
    recovered = cells.run_cell(TINY)         # rerun, re-persisted
    assert recovered == original
    assert cellcache.disk_cache_size() == 1


def test_clear_disk_cache(fresh_cache):
    cells.run_cell(TINY)
    cells.run_cell(replace(TINY, seed=2))
    assert cellcache.disk_cache_size() == 2
    assert cellcache.clear_disk_cache() == 2
    assert cellcache.disk_cache_size() == 0


def test_disabled_cache_never_touches_disk(fresh_cache):
    cellcache.set_cache_dir(None)
    assert not cellcache.enabled()
    summary = cells.run_cell(TINY)
    assert summary is not None
    assert cellcache.disk_cache_size() == 0
    assert cellcache.load_cell(TINY) is None
