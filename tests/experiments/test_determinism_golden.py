"""Golden determinism: the optimized engine reproduces identical cells.

The hot-path overhaul (ready queue, tuple-keyed heap, inlined scheduling)
must be invisible to results: the same settings must produce the same
``CellSummary`` content, the same result digest, and the same cell-cache
key, run after run.  A drift in any of these would silently poison the
persistent cell cache and every table built from it.
"""

from dataclasses import replace

import pytest

from repro.core.policy import FRAME
from repro.experiments.cellcache import cache_key
from repro.experiments.cells import summarize, summary_digest
from repro.experiments.runner import ExperimentSettings, run_experiment

# Small but non-trivial: a crash mid-measure exercises fail-over,
# recovery, and resend on top of the steady-state hot path.
GOLDEN = ExperimentSettings(paper_total=4525, scale=0.02, policy=FRAME,
                            seed=7, warmup=0.5, measure=1.5, grace=0.25,
                            crash_at=0.75)


def test_same_settings_same_summary_and_digest():
    first = summarize(run_experiment(GOLDEN))
    second = summarize(run_experiment(GOLDEN))
    assert first == second
    assert summary_digest(first) == summary_digest(second)


def test_cache_key_is_stable_for_equal_settings():
    # Equal settings values — even distinct objects — must map to the
    # same cache slot, or warm lookups would miss and re-simulate.
    assert cache_key(GOLDEN) == cache_key(replace(GOLDEN))


def test_different_seed_changes_digest():
    # Digest sensitivity: if this fails, the digest is not actually
    # covering the measured results and the golden test above is vacuous.
    base = summary_digest(summarize(run_experiment(GOLDEN)))
    other = summary_digest(summarize(run_experiment(replace(GOLDEN, seed=8))))
    assert base != other


@pytest.mark.parametrize("crash_at", [None, 0.75])
def test_fault_free_and_crash_cells_are_each_deterministic(crash_at):
    settings = replace(GOLDEN, crash_at=crash_at)
    assert (summary_digest(summarize(run_experiment(settings)))
            == summary_digest(summarize(run_experiment(settings))))
