"""Tests for the analytic capacity model — including validation against
the simulator, which is the substantive check: the closed-form demands
must predict measured module utilization to within a few percent."""

import pytest

from repro.analysis import plan_capacity, predict_utilization
from repro.analysis.capacity import max_admissible_workload
from repro.core.config import CostModel
from repro.core.policy import FCFS, FCFS_MINUS, FRAME, FRAME_PLUS
from repro.core.units import ms
from repro.experiments.runner import ExperimentSettings, run_experiment
from repro.workloads.spec import build_workload

PARAMS = ExperimentSettings().deadline_parameters()
COSTS = CostModel.calibrated(1.0)


def specs_of(total, scale=1.0):
    return build_workload(total, scale=scale).specs


# ----------------------------------------------------------------------
# Model structure
# ----------------------------------------------------------------------
def test_frame_plus_has_zero_backup_demand():
    plan = predict_utilization(specs_of(7525), FRAME_PLUS, PARAMS, COSTS)
    assert plan.replicated_rate == 0.0
    assert plan.module("backup_proxy").demand == 0.0


def test_frame_replicates_only_categories_2_and_5():
    plan = predict_utilization(specs_of(7525), FRAME, PARAMS, COSTS)
    # cat 2: 2500 topics @ 10 Hz, cat 5: 5 topics @ 2 Hz
    assert plan.replicated_rate == pytest.approx(25_010.0)
    assert plan.message_rate == pytest.approx(75_410.0)


def test_fcfs_replicates_everything():
    plan = predict_utilization(specs_of(7525), FCFS, PARAMS, COSTS)
    assert plan.replicated_rate == plan.message_rate


def test_policy_ordering_of_delivery_demand():
    demands = {}
    for policy in (FRAME_PLUS, FRAME, FCFS_MINUS, FCFS):
        plan = predict_utilization(specs_of(7525), policy, PARAMS, COSTS)
        demands[policy.name] = plan.module("primary_delivery").demand
    assert demands["FRAME+"] < demands["FRAME"]
    assert demands["FRAME+"] < demands["FCFS-"]
    assert demands["FCFS-"] < demands["FCFS"]
    assert demands["FRAME"] < demands["FCFS"]


def test_paper_crossovers_in_the_model():
    """The calibrated model reproduces the paper's overload crossovers."""
    def delivery_overloaded(policy, total):
        plan = predict_utilization(specs_of(total), policy, PARAMS, COSTS)
        return plan.module("primary_delivery").overloaded

    assert not delivery_overloaded(FCFS, 4525)
    assert delivery_overloaded(FCFS, 7525)           # Table 4/5 collapse point
    assert not delivery_overloaded(FRAME, 10525)
    assert not delivery_overloaded(FRAME_PLUS, 13525)
    # FRAME at 13525 sits just under the knee (background load tips it).
    plan = predict_utilization(specs_of(13525), FRAME, PARAMS, COSTS)
    ratio = plan.module("primary_delivery").demand / 2.0
    assert 0.90 <= ratio <= 1.0


def test_bottleneck_identification():
    plan = predict_utilization(specs_of(13525), FRAME_PLUS, PARAMS, COSTS)
    # With no replication, the single-core proxy is the bottleneck.
    assert plan.bottleneck.name == "primary_proxy"


def test_utilization_caps_at_one():
    plan = predict_utilization(specs_of(13525), FCFS, PARAMS, COSTS)
    delivery = plan.module("primary_delivery")
    assert delivery.overloaded
    assert delivery.utilization == 1.0


# ----------------------------------------------------------------------
# Admission + deployability
# ----------------------------------------------------------------------
def test_plan_capacity_accepts_paper_workload():
    report = plan_capacity(specs_of(4525), FRAME, PARAMS, COSTS)
    assert report.deployable
    assert report.admitted == 4525
    assert report.rejected == ()


def test_plan_capacity_rejects_inadmissible_topic():
    from repro.core.model import EDGE, TopicSpec
    bad = TopicSpec(topic_id=9_999_999, period=ms(10), deadline=ms(10),
                    loss_tolerance=0, retention=0, destination=EDGE, category=0)
    report = plan_capacity(list(specs_of(1525)) + [bad], FRAME, PARAMS, COSTS)
    assert not report.deployable
    assert report.rejected[0][0] == 9_999_999
    assert "Dr" in report.rejected[0][1]


def test_max_admissible_workload_matches_crossovers():
    """With 5 % headroom (the paper's noisy-run margin), the model picks
    the same maximum workloads the measured tables support."""
    candidates = (1525, 4525, 7525, 10525, 13525)
    assert max_admissible_workload(specs_of, FCFS, PARAMS, COSTS,
                                   candidates, headroom=0.05) == 4525
    assert max_admissible_workload(specs_of, FRAME, PARAMS, COSTS,
                                   candidates, headroom=0.05) == 10525
    assert max_admissible_workload(specs_of, FRAME_PLUS, PARAMS, COSTS,
                                   candidates, headroom=0.05) == 13525


def test_headroom_validation_and_monotonicity():
    plan = predict_utilization(specs_of(10525), FRAME, PARAMS, COSTS)
    assert plan.feasible_with(0.0)
    assert not plan.feasible_with(0.5)   # delivery at 74 % > 50 % limit
    with pytest.raises(ValueError):
        plan.feasible_with(1.0)
    with pytest.raises(ValueError):
        plan.feasible_with(-0.1)


# ----------------------------------------------------------------------
# Validation against the simulator (the load-bearing test)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", [FRAME_PLUS, FRAME, FCFS_MINUS])
def test_prediction_matches_simulation(policy):
    total = 4525
    scale = 0.1
    settings = ExperimentSettings(
        policy=policy, paper_total=total, scale=scale, seed=0,
        warmup=2.0, measure=6.0, grace=0.5,
        background_noise_probability=0.0,
        background_idle_load=(0.0, 0.0),
    )
    result = run_experiment(settings)
    measured = result.utilizations()
    plan = predict_utilization(
        result.workload.specs, policy,
        settings.deadline_parameters(), CostModel.calibrated(scale))
    for key in ("primary_proxy", "primary_delivery", "backup_proxy"):
        predicted = plan.module(key).utilization
        assert measured[key] == pytest.approx(predicted, abs=0.05), (
            f"{policy.name}/{key}: predicted {predicted:.3f}, "
            f"measured {measured[key]:.3f}")
