"""Tests for the EDF demand-bound schedulability analysis."""

import math

import pytest

from repro.analysis.schedulability import (
    SporadicTask,
    check_topic_set,
    delivery_task_set,
    edf_schedulability,
)
from repro.core.config import CostModel
from repro.core.policy import DISK_LOG, FCFS, FRAME, FRAME_PLUS
from repro.experiments.runner import ExperimentSettings
from repro.workloads.spec import build_workload

PARAMS = ExperimentSettings().deadline_parameters()
COSTS = CostModel.calibrated(1.0)


# ----------------------------------------------------------------------
# SporadicTask basics
# ----------------------------------------------------------------------
def test_task_demand_bound_steps():
    task = SporadicTask("t", period=10.0, wcet=2.0, deadline=4.0)
    assert task.demand(3.9) == 0.0
    assert task.demand(4.0) == 2.0
    assert task.demand(13.9) == 2.0
    assert task.demand(14.0) == 4.0
    assert task.utilization == pytest.approx(0.2)
    assert task.density == pytest.approx(0.5)


def test_task_validation():
    with pytest.raises(ValueError):
        SporadicTask("t", period=0.0, wcet=1.0, deadline=1.0)
    with pytest.raises(ValueError, match="non-positive deadline"):
        SporadicTask("t", period=1.0, wcet=0.1, deadline=0.0)


# ----------------------------------------------------------------------
# Hand-checkable EDF cases (uniprocessor)
# ----------------------------------------------------------------------
def test_two_task_feasible_set():
    tasks = [SporadicTask("a", 10.0, 3.0, 10.0),
             SporadicTask("b", 20.0, 8.0, 20.0)]
    verdict = edf_schedulability(tasks, capacity=1.0)
    # Implicit deadlines: EDF feasible iff U <= 1 (U = 0.7 here).
    assert verdict.feasible_necessary
    assert verdict.feasible_sufficient
    assert verdict.total_utilization == pytest.approx(0.7)


def test_constrained_deadline_infeasible_set():
    # Two tasks each demanding 3 units within deadline 4: dbf(4) = 6 > 4.
    tasks = [SporadicTask("a", 10.0, 3.0, 4.0),
             SporadicTask("b", 10.0, 3.0, 4.0)]
    verdict = edf_schedulability(tasks, capacity=1.0)
    assert not verdict.feasible_necessary
    assert verdict.worst_slack < 0
    assert verdict.worst_time == pytest.approx(4.0)


def test_over_utilized_set_fails_fast():
    tasks = [SporadicTask("a", 1.0, 0.7, 1.0),
             SporadicTask("b", 1.0, 0.7, 1.0)]
    verdict = edf_schedulability(tasks, capacity=1.0)
    assert not verdict.feasible_necessary
    assert verdict.total_utilization == pytest.approx(1.4)


def test_empty_set_is_trivially_schedulable():
    verdict = edf_schedulability([], capacity=1.0)
    assert verdict.feasible_necessary and verdict.feasible_sufficient


# ----------------------------------------------------------------------
# FRAME delivery job sets
# ----------------------------------------------------------------------
def test_task_set_reflects_replication_plan():
    specs = build_workload(1525, scale=1.0).specs
    frame_tasks = delivery_task_set(specs, FRAME, PARAMS, COSTS)
    frame_plus_tasks = delivery_task_set(specs, FRAME_PLUS, PARAMS, COSTS)
    fcfs_tasks = delivery_task_set(specs, FCFS, PARAMS, COSTS)
    dispatches = sum(1 for t in frame_tasks if t.name.startswith("dispatch"))
    replications = sum(1 for t in frame_tasks if t.name.startswith("replicate"))
    assert dispatches == len(specs)
    assert replications == len([s for s in specs if s.category in (2, 5)])
    assert all(t.name.startswith("dispatch") for t in frame_plus_tasks)
    # FCFS replicates every topic; best-effort ones get an implicit
    # deadline in the analysis (the engine still does the work).
    fcfs_replications = sum(1 for t in fcfs_tasks
                            if t.name.startswith("replicate"))
    assert fcfs_replications == len(specs)


def test_disk_policy_inflates_dispatch_wcet():
    specs = build_workload(1525, scale=1.0).specs
    plain = delivery_task_set(specs, FRAME_PLUS, PARAMS, COSTS)
    journaled = delivery_task_set(specs, DISK_LOG, PARAMS, COSTS)
    assert journaled[0].wcet == pytest.approx(plain[0].wcet + COSTS.disk_write)


def test_paper_workloads_schedulability_ordering():
    """The analysis agrees with the measured crossovers: FRAME's job set
    passes the demand-bound test at 7525 while FCFS's fails it."""
    specs = build_workload(7525, scale=1.0).specs
    frame = check_topic_set(specs, FRAME, PARAMS, COSTS, max_points=4000)
    fcfs = check_topic_set(specs, FCFS, PARAMS, COSTS, max_points=4000)
    assert frame.feasible_necessary
    assert not fcfs.feasible_necessary
    assert "NOT schedulable" in fcfs.verdict


def test_verdict_text():
    good = edf_schedulability([SporadicTask("a", 10.0, 1.0, 10.0)])
    assert "schedulable" in good.verdict
