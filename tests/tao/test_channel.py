"""Tests for the TAO-style event-channel facade."""

import pytest

from repro.core.config import SystemConfig
from repro.core.model import EDGE, TopicSpec
from repro.core.units import ms
from repro.net.topology import Network
from repro.sim import Engine, Host
from repro.tao import Event, EventChannel

from tests.helpers import TEST_COSTS, TEST_PARAMS, topic


def build_channel(specs):
    engine = Engine(seed=3)
    network = Network(engine)
    supplier_host = Host(engine, "supplier")
    consumer_host = Host(engine, "consumer")
    primary_host = Host(engine, "primary")
    backup_host = Host(engine, "backup")
    network.connect(supplier_host, primary_host, ms(0.25))
    network.connect(supplier_host, backup_host, ms(0.25))
    network.connect(primary_host, backup_host, ms(0.05))
    network.connect(primary_host, consumer_host, ms(0.25))
    network.connect(backup_host, consumer_host, ms(0.25))
    config = SystemConfig.from_specs(specs, params=TEST_PARAMS, costs=TEST_COSTS)
    channel = EventChannel(engine, network, primary_host, backup_host, config)
    return engine, channel, supplier_host, consumer_host


def test_push_event_reaches_connected_consumer():
    engine, channel, sup_host, con_host = build_channel([topic(topic_id=7)])
    got = []
    consumer = channel.obtain_push_supplier(con_host)
    consumer.connect_push_consumer(got.append, type_ids=[7])
    supplier = channel.obtain_push_consumer(sup_host)
    supplier.push(Event(7, data="reading-1", source="sensor-a"))
    engine.run(until=0.1)
    assert len(got) == 1
    assert got[0].type_id == 7
    assert got[0].data == "reading-1"


def test_sequence_numbers_shared_across_suppliers_of_a_type():
    engine, channel, sup_host, con_host = build_channel([topic(topic_id=7)])
    got = []
    consumer = channel.obtain_push_supplier(con_host)
    consumer.connect_push_consumer(got.append, type_ids=[7])
    supplier_a = channel.obtain_push_consumer(sup_host)
    supplier_b = channel.obtain_push_consumer(sup_host)
    supplier_a.push(Event(7, data="a"))
    supplier_b.push(Event(7, data="b"))
    engine.run(until=0.1)
    assert [event.data for event in got] == ["a", "b"]
    assert channel._sequences[7] == 2


def test_undeclared_event_type_rejected():
    engine, channel, sup_host, _ = build_channel([topic(topic_id=7)])
    supplier = channel.obtain_push_consumer(sup_host)
    with pytest.raises(KeyError, match="no declared requirement spec"):
        supplier.push(Event(99))


def test_disconnected_supplier_cannot_push():
    engine, channel, sup_host, _ = build_channel([topic(topic_id=7)])
    supplier = channel.obtain_push_consumer(sup_host)
    supplier.disconnect_push_consumer()
    with pytest.raises(RuntimeError, match="disconnected"):
        supplier.push(Event(7))


def test_consumer_filtering_by_type():
    specs = [topic(topic_id=1), topic(topic_id=2)]
    engine, channel, sup_host, con_host = build_channel(specs)
    only_type_1 = []
    consumer = channel.obtain_push_supplier(con_host)
    consumer.connect_push_consumer(only_type_1.append, type_ids=[1])
    supplier = channel.obtain_push_consumer(sup_host)
    supplier.push(Event(1, data="wanted"))
    supplier.push(Event(2, data="unwanted"))
    engine.run(until=0.1)
    assert [event.data for event in only_type_1] == ["wanted"]


def test_two_consumers_fan_out():
    engine, channel, sup_host, con_host = build_channel([topic(topic_id=7)])
    first, second = [], []
    proxy1 = channel.obtain_push_supplier(con_host)
    proxy1.connect_push_consumer(first.append, type_ids=[7])
    proxy2 = channel.obtain_push_supplier(con_host)
    proxy2.connect_push_consumer(second.append, type_ids=[7])
    supplier = channel.obtain_push_consumer(sup_host)
    supplier.push(Event(7, data="x"))
    engine.run(until=0.1)
    assert len(first) == len(second) == 1
    assert channel.primary.stats.dispatched == 1   # one job, two pushes


def test_double_connect_rejected():
    engine, channel, _, con_host = build_channel([topic(topic_id=7)])
    consumer = channel.obtain_push_supplier(con_host)
    consumer.connect_push_consumer(lambda e: None, type_ids=[7])
    with pytest.raises(RuntimeError, match="already connected"):
        consumer.connect_push_consumer(lambda e: None, type_ids=[7])


def test_disconnect_stops_delivery():
    engine, channel, sup_host, con_host = build_channel([topic(topic_id=7)])
    got = []
    consumer = channel.obtain_push_supplier(con_host)
    consumer.connect_push_consumer(got.append, type_ids=[7])
    supplier = channel.obtain_push_consumer(sup_host)
    supplier.push(Event(7, data="first"))
    engine.run(until=0.1)
    consumer.disconnect_push_supplier()
    supplier.push(Event(7, data="second"))
    engine.run(until=0.2)
    assert [event.data for event in got] == ["first"]


def test_channel_replication_follows_frame_plan():
    """The channel body is a full FRAME broker: a category-2 type gets
    replicated to the Backup, coordination prunes it after dispatch."""
    engine, channel, sup_host, con_host = build_channel([topic(topic_id=7)])
    consumer = channel.obtain_push_supplier(con_host)
    consumer.connect_push_consumer(lambda e: None, type_ids=[7])
    supplier = channel.obtain_push_consumer(sup_host)
    supplier.push(Event(7))
    engine.run(until=0.1)
    assert channel.primary.stats.replicated == 1
    assert channel.backup.backup_buffer.get(7, 1).discard


def test_declared_types_and_spec_lookup():
    specs = [topic(topic_id=3), topic(topic_id=1)]
    engine, channel, _, _ = build_channel(specs)
    assert channel.declared_types() == (1, 3)
    assert channel.spec_of(3).topic_id == 3
