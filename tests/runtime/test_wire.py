"""Wire-protocol robustness tests (framing, limits, malformed input)."""

import asyncio
import struct

import pytest

from repro.core.model import Message
from repro.runtime.wire import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_message,
    encode_message,
    read_frame,
    write_frame,
)


class FakeWriter:
    def __init__(self):
        self.chunks = []

    def write(self, data):
        self.chunks.append(data)

    async def drain(self):
        pass


def roundtrip(frame):
    async def scenario():
        writer = FakeWriter()
        await write_frame(writer, frame)
        data = b"".join(writer.chunks)
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(scenario())


def test_frame_roundtrip():
    frame = {"type": "publish", "messages": [], "resend": False}
    assert roundtrip(frame) == frame


def test_unicode_payload_roundtrip():
    frame = {"type": "deliver", "note": "überspannung ≤ 3σ"}
    assert roundtrip(frame) == frame


def test_eof_returns_none():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_eof()
        return await read_frame(reader)

    assert asyncio.run(scenario()) is None


def test_truncated_frame_returns_none():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(struct.pack(">I", 100) + b"short")
        reader.feed_eof()
        return await read_frame(reader)

    assert asyncio.run(scenario()) is None


def test_oversized_header_rejected():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(struct.pack(">I", MAX_FRAME_BYTES + 1))
        reader.feed_eof()
        return await read_frame(reader)

    with pytest.raises(ProtocolError, match="exceeds limit"):
        asyncio.run(scenario())


def test_oversized_outgoing_frame_rejected():
    async def scenario():
        writer = FakeWriter()
        await write_frame(writer, {"type": "x", "blob": "a" * (MAX_FRAME_BYTES + 1)})

    with pytest.raises(ProtocolError, match="exceeds limit"):
        asyncio.run(scenario())


def test_non_json_frame_rejected():
    async def scenario():
        payload = b"\xff\xfe not json"
        reader = asyncio.StreamReader()
        reader.feed_data(struct.pack(">I", len(payload)) + payload)
        reader.feed_eof()
        return await read_frame(reader)

    with pytest.raises(ProtocolError, match="undecodable"):
        asyncio.run(scenario())


def test_frame_without_type_rejected():
    async def scenario():
        payload = b'{"no_type": 1}'
        reader = asyncio.StreamReader()
        reader.feed_data(struct.pack(">I", len(payload)) + payload)
        reader.feed_eof()
        return await read_frame(reader)

    with pytest.raises(ProtocolError, match="without type"):
        asyncio.run(scenario())


def test_non_object_frame_rejected():
    async def scenario():
        payload = b"[1, 2, 3]"
        reader = asyncio.StreamReader()
        reader.feed_data(struct.pack(">I", len(payload)) + payload)
        reader.feed_eof()
        return await read_frame(reader)

    with pytest.raises(ProtocolError, match="without type"):
        asyncio.run(scenario())


def test_decode_message_validation():
    good = encode_message(Message(1, 2, 3.0, data="x"))
    assert decode_message(good).key() == (1, 2)
    with pytest.raises(ProtocolError, match="bad message"):
        decode_message({"topic": 1})                       # missing fields
    with pytest.raises(ProtocolError, match="bad message"):
        decode_message({"topic": "a", "seq": 1, "created_at": 0.0})


def test_back_to_back_frames():
    async def scenario():
        writer = FakeWriter()
        await write_frame(writer, {"type": "a"})
        await write_frame(writer, {"type": "b"})
        reader = asyncio.StreamReader()
        reader.feed_data(b"".join(writer.chunks))
        reader.feed_eof()
        first = await read_frame(reader)
        second = await read_frame(reader)
        third = await read_frame(reader)
        return first, second, third

    first, second, third = asyncio.run(scenario())
    assert first == {"type": "a"}
    assert second == {"type": "b"}
    assert third is None
