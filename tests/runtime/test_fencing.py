"""Epoch fencing: split-brain resolution, stale-frame rejection, grace.

The headline test builds a real partition with ``LocalDeployment(chaos=
True)``: the Backup promotes behind the partition, the stale Primary
keeps accepting publishes, and the heal must resolve the brain — the
stale Primary demotes to ``fenced``, the publisher fails over, and
*every* message (including those published into the stale side) reaches
the subscriber exactly once.  The remaining tests pin the mechanism
piece by piece: the ``fence`` reply to stale replicas, the subscriber's
stale-epoch drop, journal-persisted epochs across restarts, and the
watch-grace fix that keeps a freshly booted Backup from promoting off
its very first failed polls.
"""

import asyncio

from repro.core.model import EDGE, TopicSpec
from repro.core.timing import DeadlineParameters
from repro.runtime.broker import (
    BACKUP,
    FENCED,
    PRIMARY,
    BrokerServer,
    RuntimeBrokerConfig,
)
from repro.runtime.client import Subscriber
from repro.runtime.deployment import LocalDeployment
from repro.runtime.journal import epoch_record
from repro.runtime.wire import encode_message, read_frame, write_frame
from repro.core.model import Message

from tests.runtime.test_runtime import PARAMS, wait_for

#: Fast-failover deployment knobs: the Backup notices a dead/partitioned
#: Primary in about watch_grace + miss_threshold * poll ≈ 3 s.
FAST = dict(poll_interval=0.1, reply_timeout=0.3, miss_threshold=5)

#: Retention 8 covers every burst the tests publish into a fault window,
#: so zero loss is the exact expectation (FRAME's retention argument).
SPEC = TopicSpec(topic_id=0, period=0.2, deadline=2.0, loss_tolerance=0,
                 retention=8, destination=EDGE, category=2)

SPLIT_PARAMS = DeadlineParameters(
    delta_pb=0.01, delta_bb=0.01, delta_bs_edge=0.02,
    delta_bs_cloud=0.1, failover_time=0.5)


def test_partition_heal_fences_stale_primary():
    """Split-brain forms behind a partition and resolves on heal with
    zero loss and exactly one unfenced Primary."""
    async def scenario():
        deployment = LocalDeployment([SPEC], params=SPLIT_PARAMS,
                                     chaos=True, **FAST)
        await deployment.start()
        try:
            subscriber = await deployment.add_subscriber()
            publisher = await deployment.add_publisher()
            await publisher.publish({0: "before"})
            assert await wait_for(
                lambda: subscriber.delivered_seqs(0) == {1})

            stale = deployment.primary
            deployment.partition()
            await asyncio.wait_for(deployment.backup.promoted.wait(),
                                   timeout=10.0)
            # The publisher still points at the stale Primary: these
            # publishes land on the minority side of the brain.
            for index in range(4):
                await publisher.publish({0: f"minority-{index}"})

            deployment.heal()
            assert await wait_for(lambda: stale.role == FENCED,
                                  timeout=10.0), "stale Primary not fenced"
            await asyncio.wait_for(publisher.failed_over.wait(),
                                   timeout=10.0)
            await publisher.publish({0: "after"})

            # Zero loss: all 6 seqs delivered, nothing beyond them.
            assert await wait_for(
                lambda: subscriber.delivered_seqs(0) == set(range(1, 7)),
                timeout=10.0), (
                f"lost messages: have {sorted(subscriber.delivered_seqs(0))}")

            # Exactly one unfenced Primary remains.
            roles = [deployment.primary.role, deployment.backup.role]
            assert roles.count(PRIMARY) == 1
            assert deployment.backup.role == PRIMARY
            assert deployment.backup.epoch > stale.epoch or \
                deployment.backup.epoch == stale.epoch  # stale adopted it

            fencing = stale.snapshot()["fencing"]
            assert fencing["fenced"] is True
            assert fencing["events"] == 1
            assert fencing["fenced_by"] >= 2
            return True
        finally:
            await deployment.close()

    assert asyncio.run(scenario())


def test_fenced_broker_rejects_publishes():
    async def scenario():
        broker = BrokerServer("127.0.0.1", 0, RuntimeBrokerConfig(
            topics={0: SPEC}, params=PARAMS), role=PRIMARY)
        await broker.start()
        try:
            broker._fence(7)
            assert broker.role == FENCED and broker.epoch == 7
            reader, writer = await asyncio.open_connection(*broker.address)
            message = Message(0, 1, 0.0, data="refused")
            await write_frame(writer, {"type": "publish",
                                       "messages": [encode_message(message)]})
            # The ping path must advertise the fencing to pollers.
            await write_frame(writer, {"type": "ping", "nonce": 1})
            pong = await asyncio.wait_for(read_frame(reader), timeout=2.0)
            writer.close()
            return broker.publishes_rejected_fenced, pong
        finally:
            await broker.close()

    rejected, pong = asyncio.run(scenario())
    assert rejected == 1
    assert pong["fenced"] is True and pong["epoch"] == 7


def test_stale_replica_answered_with_fence_frame():
    async def scenario():
        broker = BrokerServer("127.0.0.1", 0, RuntimeBrokerConfig(
            topics={0: SPEC}, params=PARAMS), role=BACKUP)
        await broker.start()
        broker.epoch = 5        # as if promoted to epoch 5 already
        try:
            reader, writer = await asyncio.open_connection(*broker.address)
            await write_frame(writer, {"type": "hello", "role": "peer"})
            ack = await asyncio.wait_for(read_frame(reader), timeout=2.0)
            message = Message(0, 1, 0.0, data="stale")
            await write_frame(writer, {"type": "replica", "epoch": 3,
                                       "message": encode_message(message)})
            fence = await asyncio.wait_for(read_frame(reader), timeout=2.0)
            stored = broker.backup_buffer.total_count()
            writer.close()
            return ack, fence, stored, broker.stale_frames_rejected
        finally:
            await broker.close()

    ack, fence, stored, rejected = asyncio.run(scenario())
    assert ack == {"type": "hello_ack", "epoch": 5}
    assert fence["type"] == "fence" and fence["epoch"] == 5
    assert stored == 0, "a stale replica must not be stored"
    assert rejected == 1


def test_current_epoch_replica_accepted():
    async def scenario():
        broker = BrokerServer("127.0.0.1", 0, RuntimeBrokerConfig(
            topics={0: SPEC}, params=PARAMS), role=BACKUP)
        await broker.start()
        broker.epoch = 5
        try:
            reader, writer = await asyncio.open_connection(*broker.address)
            message = Message(0, 1, 0.0, data="fresh")
            await write_frame(writer, {"type": "replica", "epoch": 5,
                                       "message": encode_message(message)})
            ok = await wait_for(
                lambda: broker.backup_buffer.total_count() == 1)
            writer.close()
            return ok, broker.stale_frames_rejected
        finally:
            await broker.close()

    ok, rejected = asyncio.run(scenario())
    assert ok and rejected == 0


def test_subscriber_drops_stale_epoch_deliveries():
    subscriber = Subscriber([0], ("127.0.0.1", 1), ("127.0.0.1", 1))
    subscriber._on_deliver(Message(0, 1, 0.0, data="new"), epoch=3)
    subscriber._on_deliver(Message(0, 2, 0.0, data="old"), epoch=2)
    subscriber._on_deliver(Message(0, 2, 0.0, data="resent"), epoch=3)
    assert subscriber.delivered_seqs(0) == {1, 2}
    assert subscriber.stale_epoch_drops == 1
    assert subscriber.max_epoch == 3
    # Unstamped deliveries (pre-epoch brokers) still pass.
    subscriber._on_deliver(Message(0, 3, 0.0, data="legacy"))
    assert subscriber.delivered_seqs(0) == {1, 2, 3}


def test_epoch_survives_crash_restart_via_journal(tmp_path):
    """A crash-restarted broker resumes from its journaled epoch, and a
    journaled fencing mark pins it in the fenced role."""
    path = tmp_path / "epoch.journal"

    def make_broker(role=PRIMARY):
        return BrokerServer("127.0.0.1", 0, RuntimeBrokerConfig(
            topics={0: SPEC}, params=PARAMS, journal_path=str(path),
            recover_journal=True), role=role)

    async def scenario():
        path.write_bytes(epoch_record(9))
        promoted = make_broker()
        await promoted.start()
        epoch_after_boot = promoted.epoch
        role_after_boot = promoted.role
        await promoted.close()

        path.write_bytes(epoch_record(4, fenced=True))
        fenced = make_broker()
        await fenced.start()
        fenced_state = (fenced.epoch, fenced.role, fenced.fenced_by)
        await fenced.close()
        return epoch_after_boot, role_after_boot, fenced_state

    epoch_after_boot, role_after_boot, fenced_state = asyncio.run(scenario())
    assert epoch_after_boot == 9 and role_after_boot == PRIMARY
    assert fenced_state == (4, FENCED, 4)


def test_promotion_journals_the_new_epoch(tmp_path):
    path = tmp_path / "promo.journal"

    async def scenario():
        broker = BrokerServer("127.0.0.1", 0, RuntimeBrokerConfig(
            topics={0: SPEC}, params=PARAMS, journal_path=str(path),
            recover_journal=True), role=BACKUP)
        await broker.start()
        broker._promote()
        first = (broker.role, broker.epoch)
        await broker.close()

        # The restart must resume from the promoted epoch, not boot at 1.
        restarted = BrokerServer("127.0.0.1", 0, RuntimeBrokerConfig(
            topics={0: SPEC}, params=PARAMS, journal_path=str(path),
            recover_journal=True), role=PRIMARY)
        await restarted.start()
        second = (restarted.role, restarted.epoch)
        await restarted.close()
        return first, second

    first, second = asyncio.run(scenario())
    assert first == (PRIMARY, 2)
    assert second == (PRIMARY, 2)


# ----------------------------------------------------------------------
# Watch-grace regression (the Backup used to promote off its very first
# missed polls, e.g. while the Primary was still binding its socket)
# ----------------------------------------------------------------------
def test_backup_does_not_promote_during_grace():
    async def scenario():
        # Watch a port nobody listens on: every poll fails immediately.
        backup = BrokerServer("127.0.0.1", 0, RuntimeBrokerConfig(
            topics={0: SPEC}, params=PARAMS,
            watch_address=("127.0.0.1", 1), watch_grace=30.0,
            poll_interval=0.02, reply_timeout=0.1, miss_threshold=3,
        ), role=BACKUP)
        await backup.start()
        # Well past miss_threshold * poll_interval without a promotion.
        await asyncio.sleep(0.5)
        role = backup.role
        await backup.close()
        return role

    assert asyncio.run(scenario()) == BACKUP


def test_backup_promotes_after_grace_expires():
    async def scenario():
        backup = BrokerServer("127.0.0.1", 0, RuntimeBrokerConfig(
            topics={0: SPEC}, params=PARAMS,
            watch_address=("127.0.0.1", 1), watch_grace=0.0,
            poll_interval=0.02, reply_timeout=0.1, miss_threshold=3,
        ), role=BACKUP)
        await backup.start()
        ok = await wait_for(lambda: backup.role == PRIMARY, timeout=5.0)
        epoch = backup.epoch
        await backup.close()
        return ok, epoch

    ok, epoch = asyncio.run(scenario())
    assert ok, "a truly dead Primary must still be taken over"
    assert epoch >= 2, "promotion must supersede the boot epoch"
