"""Tests for the LocalDeployment convenience wrapper."""

import asyncio

import pytest

from repro.runtime.deployment import LocalDeployment

from tests.runtime.test_runtime import replicated_topic, suppressed_topic, wait_for


def test_deployment_lifecycle_and_delivery():
    async def scenario():
        spec = replicated_topic()
        async with LocalDeployment([spec]) as deployment:
            subscriber = await deployment.add_subscriber()
            publisher = await deployment.add_publisher()
            await publisher.publish({spec.topic_id: "v1"})
            ok = await wait_for(
                lambda: subscriber.delivered_seqs(spec.topic_id) == {1})
            assert ok
            assert deployment.current_primary() is deployment.primary
        return True

    assert asyncio.run(scenario())


def test_deployment_crash_drill():
    async def scenario():
        spec = replicated_topic()
        async with LocalDeployment([spec]) as deployment:
            subscriber = await deployment.add_subscriber()
            publisher = await deployment.add_publisher()
            await publisher.publish({spec.topic_id: "before"})
            await wait_for(lambda: subscriber.delivered_seqs(spec.topic_id) == {1})
            await deployment.crash_primary()
            assert deployment.current_primary() is deployment.backup
            await publisher.publish({spec.topic_id: "after"})
            ok = await wait_for(
                lambda: subscriber.delivered_seqs(spec.topic_id) >= {1, 2})
            assert ok
        return True

    assert asyncio.run(scenario())


def test_deployment_multiple_clients():
    async def scenario():
        rep = replicated_topic(0)
        sup = suppressed_topic(1)
        async with LocalDeployment([rep, sup]) as deployment:
            sub_all = await deployment.add_subscriber()
            sub_one = await deployment.add_subscriber([1])
            pub_a = await deployment.add_publisher([rep])
            pub_b = await deployment.add_publisher([sup])
            await pub_a.publish({0: "a"})
            await pub_b.publish({1: "b"})
            ok = await wait_for(lambda: (
                sub_all.delivered_seqs(0) == {1}
                and sub_all.delivered_seqs(1) == {1}
                and sub_one.delivered_seqs(1) == {1}))
            assert ok
            assert sub_one.delivered_seqs(0) == set()
        return True

    assert asyncio.run(scenario())


def test_periodic_publishing():
    async def scenario():
        from repro.core.model import EDGE, TopicSpec

        spec = TopicSpec(topic_id=0, period=0.05, deadline=5.0,
                         loss_tolerance=3, retention=5, destination=EDGE,
                         category=3)
        async with LocalDeployment([spec]) as deployment:
            subscriber = await deployment.add_subscriber()
            publisher = await deployment.add_publisher()
            publisher.start_periodic(lambda topic, seq: f"v{seq}")
            with pytest.raises(RuntimeError, match="already started"):
                publisher.start_periodic()
            ok = await wait_for(
                lambda: len(subscriber.delivered_seqs(spec.topic_id)) >= 4)
            assert ok
            # Payload factory threaded through.
            first = subscriber.received[spec.topic_id]
            assert first  # latencies recorded
        return True

    assert asyncio.run(scenario())


def test_deployment_validation():
    with pytest.raises(ValueError, match="at least one topic"):
        LocalDeployment([])

    async def not_started():
        deployment = LocalDeployment([replicated_topic()])
        with pytest.raises(RuntimeError, match="not started"):
            await deployment.add_publisher()
        return True

    assert asyncio.run(not_started())


def test_double_start_rejected():
    async def scenario():
        deployment = LocalDeployment([replicated_topic()])
        await deployment.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                await deployment.start()
        finally:
            await deployment.close()
        return True

    assert asyncio.run(scenario())


def test_close_is_idempotent():
    # Chaos teardown paths (harness finally-blocks plus context-manager
    # exits) can close the same deployment twice; the second close must
    # be a no-op, not a cascade of double-close errors.
    async def scenario():
        deployment = LocalDeployment([replicated_topic()])
        await deployment.start()
        await deployment.close()
        await deployment.close()
        return True

    assert asyncio.run(scenario())


def test_chaos_controls_require_chaos_mode():
    async def scenario():
        async with LocalDeployment([replicated_topic()]) as deployment:
            with pytest.raises(RuntimeError, match="chaos=True"):
                deployment.partition()
            with pytest.raises(RuntimeError, match="chaos=True"):
                deployment.heal()
        return True

    assert asyncio.run(scenario())
