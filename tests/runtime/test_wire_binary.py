"""Binary codec robustness: property roundtrips, truncation, interop.

The ``bin1`` codec shares the length-prefixed framing with JSON and is
self-describing (marker byte 0x00 vs JSON's ``{``), so these tests drive
both codecs through the same reader paths: property-based roundtrips
across frame kinds and payload shapes, mid-frame truncation, oversized
frames, corrupt binary interiors, and mixed-codec blobs.
"""

import asyncio
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import Message
from repro.runtime.wire import (
    BINARY_CODEC,
    MAX_FRAME_BYTES,
    FrameReader,
    ProtocolError,
    decode_message,
    encode_frames,
    write_frame,
)
from tests.runtime.test_wire import FakeWriter


def decode_all(blob, chunk_size=None):
    """Run ``blob`` through a :class:`FrameReader`, optionally drip-fed."""
    async def scenario():
        reader = asyncio.StreamReader()
        frames = FrameReader(reader)
        if chunk_size is None:
            reader.feed_data(blob)
            reader.feed_eof()
        else:
            async def drip():
                for start in range(0, len(blob), chunk_size):
                    reader.feed_data(blob[start:start + chunk_size])
                    await asyncio.sleep(0)
                reader.feed_eof()
            asyncio.get_event_loop().create_task(drip())
        out = []
        while True:
            frame = await frames.read_frame()
            if frame is None:
                return out
            out.append(frame)

    return asyncio.run(scenario())


def assert_same_message(decoded_obj, original: Message):
    decoded = decode_message(decoded_obj)
    assert decoded.topic_id == original.topic_id
    assert decoded.seq == original.seq
    assert decoded.created_at == original.created_at
    assert decoded.data == original.data


# ----------------------------------------------------------------------
# Property-based roundtrips across both codecs
# ----------------------------------------------------------------------
payloads = st.one_of(
    st.none(),
    st.text(max_size=64),                       # includes unicode
    st.integers(-2**31, 2**31),
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=False),
    st.lists(st.integers(0, 255), max_size=8),
    st.dictionaries(st.text(max_size=8), st.integers(0, 100), max_size=4),
)

messages = st.builds(
    Message,
    st.integers(0, 2**32 - 1),                  # full u32 topic range
    st.integers(0, 2**64 - 1),                  # full u64 seq range
    st.floats(min_value=0.0, max_value=4e12, allow_nan=False),
    data=payloads,
)

# Epoch stamps on broker-originated frames: absent or >= 1 (0 is the
# wire-level "unstamped" sentinel and decodes back to an absent key).
epochs = st.one_of(st.none(), st.integers(1, 2**32 - 1))

frames = st.one_of(
    st.builds(lambda m, e: ({"type": "deliver", "message": m} if e is None
                            else {"type": "deliver", "message": m,
                                  "epoch": e}),
              messages, epochs),
    st.builds(lambda ms, resend, pub: (
                  {"type": "publish", "resend": resend, "messages": ms}
                  if pub is None else
                  {"type": "publish", "resend": resend, "messages": ms,
                   "publisher": pub}),
              st.lists(messages, max_size=4), st.booleans(),
              st.one_of(st.none(), st.text(max_size=16))),
    st.builds(lambda m, a, e: dict(
                  {"type": "replica", "message": m},
                  **({} if a is None else {"arrived_at": a}),
                  **({} if e is None else {"epoch": e})),
              messages,
              st.one_of(st.none(), st.floats(min_value=0.0, max_value=4e12,
                                             allow_nan=False)),
              epochs),
    st.builds(lambda t, s, e: dict(
                  {"type": "prune", "topic": t, "seq": s},
                  **({} if e is None else {"epoch": e})),
              st.integers(0, 2**32 - 1), st.integers(0, 2**64 - 1), epochs),
)


@settings(max_examples=60, deadline=None)
@given(frame=frames, binary=st.booleans())
def test_frame_roundtrip_property(frame, binary):
    blob = encode_frames((frame,), binary=binary)
    (decoded,) = decode_all(blob)
    assert decoded["type"] == frame["type"]
    assert decoded.get("epoch") == frame.get("epoch")
    if frame["type"] in ("deliver", "replica"):
        assert_same_message(decoded["message"], frame["message"])
        if frame["type"] == "replica":
            original = frame.get("arrived_at")
            roundtripped = decoded.get("arrived_at")
            if original is None:
                assert roundtripped is None
            else:
                assert roundtripped == pytest.approx(original, abs=1e-9)
    elif frame["type"] == "publish":
        assert bool(decoded.get("resend")) == frame["resend"]
        assert decoded.get("publisher") == frame.get("publisher")
        assert len(decoded["messages"]) == len(frame["messages"])
        for got, sent in zip(decoded["messages"], frame["messages"]):
            assert_same_message(got, sent)
    else:
        assert decoded["topic"] == frame["topic"]
        assert decoded["seq"] == frame["seq"]


# ----------------------------------------------------------------------
# Codec selection and fallback
# ----------------------------------------------------------------------
def test_binary_deliver_is_smaller_than_json():
    frame = {"type": "deliver",
             "message": Message(1, 42, 1234.5, data="x" * 16)}
    json_blob = encode_frames((frame,))
    bin_blob = encode_frames((frame,), binary=True)
    assert len(bin_blob) < len(json_blob) * 0.6
    assert bin_blob[4] == 0x00                   # binary marker
    assert json_blob[4:5] == b"{"


def test_binary_publish_preserves_publisher_id():
    # The publisher id must survive the binary codec, not silently vanish
    # (JSON keeps it, so both codecs have to decode the same frame).
    frame = {"type": "publish", "publisher": "edge-α", "resend": False,
             "messages": [Message(1, 2, 3.0, data="x")]}
    blob = encode_frames((frame,), binary=True)
    assert blob[4] == 0x00        # publisher does not force a JSON fallback
    (decoded,) = decode_all(blob)
    assert decoded["publisher"] == "edge-α"
    assert bool(decoded.get("resend")) is False
    assert_same_message(decoded["messages"][0], frame["messages"][0])


def test_binary_request_falls_back_to_json_when_unrepresentable():
    # topic outside u32 cannot be struct-packed; the frame must still go
    # out (as JSON) rather than fail.
    frame = {"type": "deliver",
             "message": Message(2**32, 1, 0.0, data=None)}
    blob = encode_frames((frame,), binary=True)
    assert blob[4:5] == b"{"
    (decoded,) = decode_all(blob)
    assert_same_message(decoded["message"], frame["message"])


def test_control_frames_always_json():
    blob = encode_frames(({"type": "hello", "codecs": [BINARY_CODEC]},),
                         binary=True)
    assert blob[4:5] == b"{"


def test_mixed_codec_blob():
    deliver = {"type": "deliver", "message": Message(0, 1, 1.0, data="hi")}
    hello = {"type": "hello", "role": "subscriber"}
    blob = encode_frames((deliver, hello, deliver), binary=True)
    first, second, third = decode_all(blob)
    assert_same_message(first["message"], deliver["message"])
    assert second == hello
    assert_same_message(third["message"], deliver["message"])


def test_write_frame_binary_routes_through_encode_frames():
    async def scenario():
        writer = FakeWriter()
        await write_frame(writer, {"type": "prune", "topic": 3, "seq": 9},
                          binary=True)
        return b"".join(writer.chunks)

    blob = asyncio.run(scenario())
    (decoded,) = decode_all(blob)
    assert decoded == {"type": "prune", "topic": 3, "seq": 9}


def test_max_size_frame_roundtrip():
    payload = "a" * (MAX_FRAME_BYTES - 1024)
    frame = {"type": "deliver", "message": Message(0, 1, 0.0, data=payload)}
    (decoded,) = decode_all(encode_frames((frame,), binary=True))
    assert decoded["message"].data == payload


# ----------------------------------------------------------------------
# Truncation, corruption, limits (FrameReader paths)
# ----------------------------------------------------------------------
def full_blob():
    return encode_frames(
        ({"type": "deliver", "message": Message(5, 6, 7.0, data="payload")},),
        binary=True)


def test_framereader_chunked_feed():
    blob = encode_frames(
        ({"type": "deliver", "message": Message(1, 2, 3.0, data="abc")},
         {"type": "prune", "topic": 1, "seq": 2}), binary=True)
    frames = decode_all(blob, chunk_size=3)
    assert len(frames) == 2
    assert frames[1] == {"type": "prune", "topic": 1, "seq": 2}


@pytest.mark.parametrize("cut", [1, 3, 5])
def test_truncated_frame_mid_stream_returns_none(cut):
    blob = full_blob()
    assert decode_all(blob[:len(blob) - cut]) == []


def test_truncated_header_returns_none():
    assert decode_all(b"\x00\x00") == []


def test_frames_before_truncation_still_decode():
    blob = full_blob()
    assert len(decode_all(blob + blob[:len(blob) // 2])) == 1


def test_oversized_frame_rejected_by_framereader():
    header = struct.pack(">I", MAX_FRAME_BYTES + 1)
    with pytest.raises(ProtocolError, match="exceeds limit"):
        decode_all(header)


def test_corrupt_binary_interior_raises():
    # A complete frame whose binary interior is truncated: deliver kind
    # but the message struct is cut short.
    payload = b"\x00\x02" + b"\x00" * 4
    blob = struct.pack(">I", len(payload)) + payload
    with pytest.raises(ProtocolError, match="truncated binary"):
        decode_all(blob)


def test_unknown_binary_kind_raises():
    payload = b"\x00\x7f"
    blob = struct.pack(">I", len(payload)) + payload
    with pytest.raises(ProtocolError, match="unknown binary frame kind"):
        decode_all(blob)


def test_unknown_payload_tag_raises():
    # deliver head (marker, kind, epoch) + valid message header, then a
    # payload tag that isn't 0/1/2.
    interior = (b"\x00\x02" + struct.pack(">I", 0)
                + struct.pack(">IQd", 1, 1, 0.0)
                + b"\x09" + struct.pack(">I", 0))
    blob = struct.pack(">I", len(interior)) + interior
    with pytest.raises(ProtocolError, match="unknown payload tag"):
        decode_all(blob)


def test_out_of_range_epoch_falls_back_to_json():
    frame = {"type": "deliver", "epoch": 1 << 40,
             "message": Message(1, 1, 0.0, data=None)}
    blob = encode_frames((frame,), binary=True)
    assert blob[4:5] == b"{"
    (decoded,) = decode_all(blob)
    assert decoded["epoch"] == 1 << 40
