"""ChaosProxy behavior: each fault kind, and byte integrity across heals.

Every test runs a trivial upstream echo server and talks to it through
the proxy, so what is asserted is exactly what the runtime brokers see:
a byte stream that stalls, slows, tears, or dies according to the
injected fault — and resumes *intact* after a heal (stall-not-drop).
"""

import asyncio

import pytest

from repro.runtime.chaosproxy import C2S, S2C, ChaosProxy


class EchoServer:
    """Echoes every chunk back; records all bytes it received."""

    def __init__(self):
        self.server = None
        self.received = bytearray()

    async def start(self):
        self.server = await asyncio.start_server(self._handle, "127.0.0.1", 0)
        self.address = self.server.sockets[0].getsockname()[:2]

    async def _handle(self, reader, writer):
        try:
            while True:
                chunk = await reader.read(4096)
                if not chunk:
                    break
                self.received.extend(chunk)
                writer.write(chunk)
                await writer.drain()
        except (OSError, ConnectionResetError):
            pass
        finally:
            writer.close()

    async def close(self):
        self.server.close()
        await self.server.wait_closed()


async def proxied_echo():
    upstream = EchoServer()
    await upstream.start()
    proxy = ChaosProxy(upstream.address)
    await proxy.start()
    return upstream, proxy


async def teardown(upstream, proxy, *writers):
    for writer in writers:
        try:
            writer.close()
        except Exception:
            pass
    await proxy.close()
    await upstream.close()


def test_clean_passthrough():
    async def scenario():
        upstream, proxy = await proxied_echo()
        reader, writer = await asyncio.open_connection(*proxy.address)
        writer.write(b"hello")
        await writer.drain()
        echoed = await asyncio.wait_for(reader.readexactly(5), timeout=2.0)
        stats = proxy.stats()
        await teardown(upstream, proxy, writer)
        return echoed, stats

    echoed, stats = asyncio.run(scenario())
    assert echoed == b"hello"
    assert stats["connections_accepted"] == 1
    assert stats["bytes_forwarded"][C2S] == 5
    assert stats["bytes_forwarded"][S2C] == 5


def test_latency_injection_delays_chunks():
    async def scenario():
        upstream, proxy = await proxied_echo()
        reader, writer = await asyncio.open_connection(*proxy.address)
        proxy.set_latency(0.15)
        loop = asyncio.get_running_loop()
        started = loop.time()
        writer.write(b"ping")
        await writer.drain()
        await asyncio.wait_for(reader.readexactly(4), timeout=5.0)
        elapsed = loop.time() - started
        await teardown(upstream, proxy, writer)
        return elapsed

    # Two traversals (c2s + s2c), each delayed 0.15 s.
    assert asyncio.run(scenario()) >= 0.25


def test_partition_stalls_then_heal_releases_bytes_intact():
    async def scenario():
        upstream, proxy = await proxied_echo()
        reader, writer = await asyncio.open_connection(*proxy.address)
        writer.write(b"pre-")
        await asyncio.wait_for(reader.readexactly(4), timeout=2.0)
        proxy.partition()
        writer.write(b"held")
        await writer.drain()
        await asyncio.sleep(0.2)
        stalled = bytes(upstream.received)   # must not contain "held" yet
        proxy.heal()
        echoed = await asyncio.wait_for(reader.readexactly(4), timeout=2.0)
        await teardown(upstream, proxy, writer)
        return stalled, echoed, bytes(upstream.received)

    stalled, echoed, final = asyncio.run(scenario())
    assert stalled == b"pre-", "partitioned bytes leaked through the stall"
    assert echoed == b"held", "held bytes were dropped instead of released"
    assert final == b"pre-held", "byte stream was reordered across the heal"


def test_blackhole_is_one_directional():
    async def scenario():
        upstream, proxy = await proxied_echo()
        reader, writer = await asyncio.open_connection(*proxy.address)
        proxy.blackhole(S2C)   # requests arrive, echoes never come back
        writer.write(b"lost?")
        await writer.drain()
        arrived = False
        for _ in range(50):
            if upstream.received == b"lost?":
                arrived = True
                break
            await asyncio.sleep(0.02)
        with pytest.raises(asyncio.TimeoutError):
            await asyncio.wait_for(reader.readexactly(5), timeout=0.3)
        proxy.heal()
        echoed = await asyncio.wait_for(reader.readexactly(5), timeout=2.0)
        await teardown(upstream, proxy, writer)
        return arrived, echoed

    arrived, echoed = asyncio.run(scenario())
    assert arrived, "c2s direction should stay open under an s2c blackhole"
    assert echoed == b"lost?"


def test_half_open_swallows_without_upstream():
    async def scenario():
        upstream, proxy = await proxied_echo()
        proxy.set_half_open()
        reader, writer = await asyncio.open_connection(*proxy.address)
        writer.write(b"into the void")
        await writer.drain()
        await asyncio.sleep(0.1)
        received_upstream = bytes(upstream.received)
        stats = proxy.stats()
        await teardown(upstream, proxy, writer)
        return received_upstream, stats

    received_upstream, stats = asyncio.run(scenario())
    assert received_upstream == b""
    assert stats["connections_half_open"] == 1
    assert stats["connections_accepted"] == 0


def test_reject_connections_closes_on_accept():
    async def scenario():
        upstream, proxy = await proxied_echo()
        proxy.set_reject_connections()
        reader, writer = await asyncio.open_connection(*proxy.address)
        eof = await asyncio.wait_for(reader.read(1), timeout=2.0)
        stats = proxy.stats()
        await teardown(upstream, proxy, writer)
        return eof, stats

    eof, stats = asyncio.run(scenario())
    assert eof == b""
    assert stats["connections_rejected"] == 1


def test_truncate_next_tears_mid_frame_and_resets():
    async def scenario():
        upstream, proxy = await proxied_echo()
        reader, writer = await asyncio.open_connection(*proxy.address)
        proxy.truncate_next(S2C, nbytes=2)
        writer.write(b"abcdef")
        await writer.drain()
        got = await asyncio.wait_for(reader.read(1024), timeout=2.0)
        tail = await asyncio.wait_for(reader.read(1024), timeout=2.0)
        stats = proxy.stats()
        await teardown(upstream, proxy, writer)
        return got, tail, stats

    got, tail, stats = asyncio.run(scenario())
    assert got == b"ab", "truncation must forward exactly the prefix"
    assert tail == b"", "connection must be torn down after the prefix"
    assert stats["resets"] == 1


def test_reset_connections_aborts_live_pipes():
    async def scenario():
        upstream, proxy = await proxied_echo()
        reader, writer = await asyncio.open_connection(*proxy.address)
        writer.write(b"warm")
        await asyncio.wait_for(reader.readexactly(4), timeout=2.0)
        proxy.reset_connections()
        dead = await asyncio.wait_for(reader.read(1024), timeout=2.0)
        stats = proxy.stats()
        await teardown(upstream, proxy, writer)
        return dead, stats

    dead, stats = asyncio.run(scenario())
    assert dead == b""
    assert stats["resets"] >= 1


def test_connection_during_partition_waits_for_heal():
    async def scenario():
        upstream, proxy = await proxied_echo()
        proxy.partition()

        async def connect_and_echo():
            reader, writer = await asyncio.open_connection(*proxy.address)
            writer.write(b"late")
            await writer.drain()
            out = await asyncio.wait_for(reader.readexactly(4), timeout=5.0)
            writer.close()
            return out

        task = asyncio.create_task(connect_and_echo())
        await asyncio.sleep(0.2)
        assert not task.done(), "handshake should ride out the partition"
        proxy.heal()
        echoed = await task
        await teardown(upstream, proxy)
        return echoed

    assert asyncio.run(scenario()) == b"late"


def test_invalid_fault_parameters_rejected():
    proxy = ChaosProxy(("127.0.0.1", 1))
    with pytest.raises(ValueError):
        proxy.set_latency(-1)
    with pytest.raises(ValueError):
        proxy.set_bandwidth(0)
    with pytest.raises(ValueError):
        proxy.truncate_next(S2C, nbytes=-1)
    with pytest.raises(ValueError):
        proxy.blackhole("sideways")
    assert C2S in proxy.stats()["bytes_forwarded"]
