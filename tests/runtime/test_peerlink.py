"""Peer-link supervision, re-protection, and worker containment tests.

These cover the runtime-hardening layer: the supervised Primary→Backup
link (reconnect + backoff + queued frames), runtime re-protection
(re-adopting a restarted or freshly provisioned Backup), crash-contained
delivery workers, and the expanded stats snapshot.
"""

import asyncio

import pytest

from repro.core.policy import FCFS_MINUS
from repro.runtime import BrokerServer, PeerLink, Publisher, Subscriber
from repro.runtime.broker import BACKUP, RuntimeBrokerConfig
from repro.runtime.client import fetch_stats
from repro.runtime.deployment import LocalDeployment
from repro.runtime.wire import MAX_FRAME_BYTES, read_frame, write_frame

from tests.runtime.test_runtime import (
    PARAMS,
    replicated_topic,
    start_pair,
    wait_for,
)


# ----------------------------------------------------------------------
# PeerLink unit behavior
# ----------------------------------------------------------------------
def test_peerlink_validates_knobs():
    with pytest.raises(ValueError):
        PeerLink(("127.0.0.1", 1), backoff_initial=0.0)
    with pytest.raises(ValueError):
        PeerLink(("127.0.0.1", 1), backoff_initial=2.0, backoff_max=1.0)
    with pytest.raises(ValueError):
        PeerLink(("127.0.0.1", 1), backoff_factor=0.5)
    with pytest.raises(ValueError):
        PeerLink(("127.0.0.1", 1), queue_limit=-1)


def test_peerlink_queue_bound_drops_oldest():
    async def scenario():
        link = PeerLink(("127.0.0.1", 1), queue_limit=2)
        for index in range(4):
            sent = await link.send({"type": "replica", "index": index})
            assert not sent
        assert link.frames_queued == 4
        assert link.frames_dropped == 2
        assert link.queue_depth == 2
        assert [frame["index"] for frame in link._queue] == [2, 3]

    asyncio.run(scenario())


def test_peerlink_connects_late_and_flushes_queue_in_order():
    async def scenario():
        received = []

        async def on_peer(reader, writer):
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                received.append(frame)

        link = PeerLink(("127.0.0.1", 1), backoff_initial=0.02,
                        backoff_max=0.05)
        # Queue while nothing is listening yet.
        for index in range(3):
            await link.send({"type": "replica", "index": index})
        await link.start()
        await wait_for(lambda: link.connect_failures >= 1)   # backoff cycles
        server = await asyncio.start_server(on_peer, "127.0.0.1", 0)
        link.retarget(("127.0.0.1", server.sockets[0].getsockname()[1]))
        await link.wait_connected(timeout=5.0)
        ok = await wait_for(lambda: len(received) >= 4)
        await link.stop()
        server.close()
        await server.wait_closed()
        assert ok
        assert received[0]["type"] == "hello"
        assert [f["index"] for f in received[1:4]] == [0, 1, 2]
        assert link.connect_failures >= 1
        assert link.stats()["state"] == "disconnected"   # after stop()

    asyncio.run(scenario())


def test_send_true_only_after_flush_oversized_frame_drops_alone():
    """The replication-protection contract: ``send() -> True`` means the
    frame reached the socket.  An oversized (unencodable) frame must
    return False and drop by itself — not take the rest of its corked
    batch down with it."""
    async def scenario():
        received = []

        async def on_peer(reader, writer):
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                received.append(frame)

        server = await asyncio.start_server(on_peer, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        link = PeerLink(("127.0.0.1", port), hello_timeout=0.05)
        await link.start()
        await link.wait_connected(timeout=5.0)
        oversized = {"type": "replica",
                     "payload": "x" * (MAX_FRAME_BYTES + 16)}
        results = await asyncio.gather(
            link.send({"type": "replica", "index": 0}),
            link.send(oversized),
            link.send({"type": "replica", "index": 1}),
        )
        assert results == [True, False, True]
        ok = await wait_for(
            lambda: len([f for f in received if "index" in f]) >= 2)
        await link.stop()
        server.close()
        await server.wait_closed()
        assert ok
        assert [f["index"] for f in received if "index" in f] == [0, 1]
        assert link.frames_sent == 2
        assert link.frames_dropped == 1

    asyncio.run(scenario())


def test_send_false_when_flush_fails_frame_lands_in_outage_queue():
    """A frame whose corked flush never reaches the peer must resolve
    ``send()`` to False (the caller keeps the entry un-replicated) and
    migrate into the outage queue for the next reconnect."""
    async def scenario():
        async def on_peer(reader, writer):
            while await read_frame(reader) is not None:
                pass

        server = await asyncio.start_server(on_peer, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        link = PeerLink(("127.0.0.1", port), hello_timeout=0.05)
        await link.start()
        await link.wait_connected(timeout=5.0)

        class _BrokenWriter:
            def write(self, data):
                pass

            async def drain(self):
                raise BrokenPipeError("peer gone mid-flush")

            def close(self):
                pass

        real_writer = link._writer
        link._writer = _BrokenWriter()
        sent = await link.send({"type": "replica", "index": 7})
        assert sent is False
        assert link.queue_depth == 1
        assert link._queue[0]["index"] == 7
        assert link.frames_queued == 1
        real_writer.close()
        await link.stop()
        server.close()
        await server.wait_closed()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# The chaos acceptance test: Backup blip under live publishers
# ----------------------------------------------------------------------
def test_backup_blip_reconnect_resync_zero_loss():
    async def scenario():
        spec = replicated_topic()
        deployment = LocalDeployment([spec])
        await deployment.start()
        try:
            subscriber = await deployment.add_subscriber()
            publisher = await deployment.add_publisher()
            link = deployment.primary.peer_link
            assert link is not None

            await publisher.publish({spec.topic_id: "before-1"})
            await publisher.publish({spec.topic_id: "before-2"})
            ok = await wait_for(
                lambda: subscriber.delivered_seqs(spec.topic_id) == {1, 2})
            assert ok

            # SIGKILL-equivalent: fail-stop the Backup under live traffic.
            await deployment.crash_backup()
            await wait_for(lambda: not link.connected, timeout=5.0)

            # Publishing continues; dispatch must not lose anything.
            await publisher.publish({spec.topic_id: "during-1"})
            await publisher.publish({spec.topic_id: "during-2"})
            ok = await wait_for(
                lambda: subscriber.delivered_seqs(spec.topic_id)
                == {1, 2, 3, 4})
            assert ok, "dispatch lost messages while the Backup was down"

            # Restart the Backup on the same address: automatic
            # reconnection + re-adoption.
            await deployment.restart_backup(timeout=10.0)
            assert link.connected
            assert link.connects >= 2

            # Replication capability is restored: new messages land in the
            # *new* Backup's buffer.
            await publisher.publish({spec.topic_id: "after-1"})
            ok = await wait_for(
                lambda: deployment.backup.backup_buffer.get(spec.topic_id, 5)
                is not None, timeout=10.0)
            assert ok, "replication did not resume after the Backup restart"

            # Zero dispatched-message loss across the whole episode.
            ok = await wait_for(
                lambda: subscriber.delivered_seqs(spec.topic_id)
                == {1, 2, 3, 4, 5})
            assert ok

            # The stats snapshot reflects the disconnect/reconnect episode.
            stats = await fetch_stats(deployment.primary.address)
            peer = stats["peer_link"]
            assert peer is not None
            assert peer["state"] == "connected"
            assert peer["disconnects"] >= 1
            assert peer["reconnects"] >= 1
            assert stats["workers"]["alive"] == stats["workers"]["configured"]
            assert stats["per_topic"][str(spec.topic_id)]["dispatched"] >= 5
        finally:
            await deployment.close()

    asyncio.run(scenario())


def test_replicas_queued_during_outage_are_flushed_on_reconnect():
    """Without coordination (FCFS−) every message replicates, so replica
    frames produced during the outage must be queued and delivered to the
    restarted Backup."""
    async def scenario():
        spec = replicated_topic()
        deployment = LocalDeployment([spec], policy=FCFS_MINUS)
        await deployment.start()
        try:
            publisher = await deployment.add_publisher()
            link = deployment.primary.peer_link
            await publisher.publish({spec.topic_id: "up-1"})
            ok = await wait_for(
                lambda: deployment.backup.backup_buffer.get(spec.topic_id, 1)
                is not None)
            assert ok

            await deployment.crash_backup()
            await wait_for(lambda: not link.connected, timeout=5.0)
            await publisher.publish({spec.topic_id: "down-1"})
            await publisher.publish({spec.topic_id: "down-2"})
            await wait_for(lambda: link.queue_depth > 0
                           or link.frames_queued > 0, timeout=5.0)

            await deployment.restart_backup(timeout=10.0)
            ok = await wait_for(
                lambda: deployment.backup.backup_buffer.get(spec.topic_id, 2)
                is not None
                and deployment.backup.backup_buffer.get(spec.topic_id, 3)
                is not None, timeout=10.0)
            assert ok, "queued replicas were not flushed to the new Backup"
        finally:
            await deployment.close()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# Runtime re-protection after a fail-over (attach_peer counterpart)
# ----------------------------------------------------------------------
def test_attach_fresh_backup_restores_replication_after_failover():
    async def scenario():
        spec = replicated_topic()
        deployment = LocalDeployment([spec])
        await deployment.start()
        try:
            subscriber = await deployment.add_subscriber()
            publisher = await deployment.add_publisher()
            await publisher.publish({spec.topic_id: "pre-crash"})
            await wait_for(
                lambda: subscriber.delivered_seqs(spec.topic_id) == {1})

            await deployment.crash_primary()
            survivor = deployment.current_primary()
            assert survivor.role == "primary"
            assert survivor.peer_link is None   # one-failure model

            fresh = await deployment.attach_fresh_backup(timeout=10.0)
            assert survivor.peer_link is not None
            assert survivor.peer_link.connected
            assert deployment.backup is fresh
            assert deployment.primary is survivor

            await publisher.publish({spec.topic_id: "re-protected"})
            ok = await wait_for(
                lambda: fresh.backup_buffer.total_count() >= 1, timeout=10.0)
            assert ok, "survivor did not replicate to the fresh Backup"
            ok = await wait_for(
                lambda: subscriber.delivered_seqs(spec.topic_id) >= {1, 2})
            assert ok
        finally:
            await deployment.close()

    asyncio.run(scenario())


def test_attach_peer_rejected_on_backup_role():
    async def scenario():
        primary, backup = await start_pair([replicated_topic()])
        try:
            with pytest.raises(RuntimeError, match="only a Primary"):
                await backup.attach_peer(primary.address)
        finally:
            await primary.close()
            await backup.close()

    asyncio.run(scenario())


def test_resync_requeues_inflight_undispatched_entries():
    """Unit check of the attach_peer/resync semantics on the broker."""
    import time

    from repro.core.model import Message

    broker = BrokerServer("127.0.0.1", 0, RuntimeBrokerConfig(
        topics={0: replicated_topic()}, params=PARAMS,
        peer_address=("127.0.0.1", 1)))
    broker._peer_link = object()   # replication capability without sockets
    now = time.time()
    broker._ingest(Message(0, 1, now), arrived_at=now)
    broker._ingest(Message(0, 2, now), arrived_at=now)
    entry = broker._entries[(0, 1)]
    entry.dispatched = True        # dispatched entries need no replica
    heap_before = len(broker._heap)
    resynced = broker._resync_with_peer()
    assert resynced == 1
    assert broker.peer_resyncs == 1
    assert len(broker._heap) == heap_before + 1
    assert broker._entries[(0, 2)].wants_replication


# ----------------------------------------------------------------------
# Worker containment and supervision
# ----------------------------------------------------------------------
def test_worker_survives_broken_pipe_and_keeps_delivering():
    async def scenario():
        spec = replicated_topic()
        primary, backup = await start_pair([spec])
        subscriber = Subscriber([spec.topic_id], primary.address, backup.address)
        await subscriber.start()
        await asyncio.sleep(0.2)
        publisher = Publisher([spec], primary.address, backup.address)
        await publisher.start()

        original = primary._do_dispatch

        async def exploding(entry, coordination, deadline):
            raise BrokenPipeError("peer went away mid-write")

        primary._do_dispatch = exploding
        await publisher.publish({spec.topic_id: "boom"})
        ok = await wait_for(lambda: primary.worker_errors >= 1)
        assert ok, "BrokenPipeError was not contained"
        assert len(primary._worker_tasks) == primary.config.dispatch_workers

        primary._do_dispatch = original
        await publisher.publish({spec.topic_id: "fine"})
        ok = await wait_for(
            lambda: 2 in subscriber.delivered_seqs(spec.topic_id))
        await publisher.close()
        await subscriber.close()
        await primary.close()
        await backup.close()
        assert ok, "pool stopped delivering after a contained error"

    asyncio.run(scenario())


def test_worker_respawns_after_unexpected_death():
    class _WorkerBomb(BaseException):
        """Escapes the Exception containment: simulates a worker dying."""

    async def scenario():
        spec = replicated_topic()
        primary, backup = await start_pair([spec])
        subscriber = Subscriber([spec.topic_id], primary.address, backup.address)
        await subscriber.start()
        await asyncio.sleep(0.2)
        publisher = Publisher([spec], primary.address, backup.address)
        await publisher.start()

        original = primary._do_dispatch

        async def lethal(entry, coordination, deadline):
            raise _WorkerBomb()

        primary._do_dispatch = lethal
        await publisher.publish({spec.topic_id: "kill-a-worker"})
        ok = await wait_for(lambda: primary.workers_respawned >= 1)
        assert ok, "dead worker was not respawned"
        ok = await wait_for(lambda: len(primary._worker_tasks)
                            == primary.config.dispatch_workers)
        assert ok, "pool did not return to full strength"

        primary._do_dispatch = original
        await publisher.publish({spec.topic_id: "recovered"})
        ok = await wait_for(
            lambda: 2 in subscriber.delivered_seqs(spec.topic_id))
        await publisher.close()
        await subscriber.close()
        await primary.close()
        await backup.close()
        assert ok

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# Expanded stats snapshot
# ----------------------------------------------------------------------
def test_snapshot_exposes_hardening_surface():
    async def scenario():
        spec = replicated_topic()
        primary, backup = await start_pair([spec])
        subscriber = Subscriber([spec.topic_id], primary.address, backup.address)
        await subscriber.start()
        await asyncio.sleep(0.2)
        publisher = Publisher([spec], primary.address, backup.address)
        await publisher.start()
        await publisher.publish({spec.topic_id: "x"})
        await wait_for(lambda: primary.dispatched >= 1)
        stats = await fetch_stats(primary.address)
        backup_stats = await fetch_stats(backup.address)
        await publisher.close()
        await subscriber.close()
        await primary.close()
        await backup.close()
        assert stats["uptime"] > 0
        assert stats["per_topic"][str(spec.topic_id)]["dispatched"] >= 1
        assert stats["dispatch_latency"]["count"] >= 1
        assert stats["dispatch_latency"]["mean"] >= 0.0
        assert stats["deadline_misses"] >= 0
        assert stats["peer_link"]["state"] == "connected"
        assert stats["peer_link"]["frames_sent"] >= 1
        assert stats["workers"]["configured"] == 4
        assert stats["workers"]["alive"] == 4
        assert backup_stats["peer_link"] is None   # Backups have no link

    asyncio.run(scenario())
