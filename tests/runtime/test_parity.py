"""Parity between the simulator broker and the asyncio runtime broker.

Both implementations consume the same timing theory and policy matrix, so
their *decisions* must agree: the replication plan per topic, the FCFS
ordering flag, and coordination behavior.  (Timing itself cannot be
compared — one is virtual, one is wall clock.)
"""

import pytest

from repro.core.broker import PRIMARY as SIM_PRIMARY
from repro.core.broker import Broker
from repro.core.policy import ALL_POLICIES, DISK_LOG
from repro.runtime.broker import BrokerServer, RuntimeBrokerConfig

from tests.helpers import TEST_PARAMS, build_mini, topic


def sim_plan(specs, policy):
    system = build_mini(specs, policy=policy)
    return {topic_id: pseudo_dr is not None
            for topic_id, (_, pseudo_dr, _) in system.primary._plan.items()}


def runtime_plan(specs, policy):
    config = RuntimeBrokerConfig(
        topics={spec.topic_id: spec for spec in specs},
        policy=policy, params=TEST_PARAMS,
        peer_address=("127.0.0.1", 1))
    broker = BrokerServer("127.0.0.1", 0, config, role="primary")
    return {topic_id: pseudo_dr is not None
            for topic_id, (_, pseudo_dr) in broker._plan.items()}


TOPIC_SET = [
    topic(topic_id=0, category=2),                       # needs replication
    topic(topic_id=1, loss=3, retention=0, category=3),  # suppressed
    topic(topic_id=2, loss=float("inf"), retention=0, category=4),
    topic(topic_id=3, retention=5, category=2),          # suppressed by Ni
]


@pytest.mark.parametrize("policy", ALL_POLICIES + (DISK_LOG,),
                         ids=lambda p: p.name)
def test_replication_plans_agree(policy):
    assert sim_plan(TOPIC_SET, policy) == runtime_plan(TOPIC_SET, policy)


def test_frame_plan_content():
    plan = sim_plan(TOPIC_SET, ALL_POLICIES[1])   # FRAME
    assert plan == {0: True, 1: False, 2: False, 3: False}


def test_disk_plan_disables_all_replication():
    plan = runtime_plan(TOPIC_SET, DISK_LOG)
    assert plan == {0: False, 1: False, 2: False, 3: False}


def test_runtime_journals_to_disk(tmp_path):
    """The runtime's disk strategy writes a real fsynced journal."""
    import asyncio

    from repro.runtime.client import Publisher, Subscriber
    from repro.runtime.journal import scan_journal
    from tests.runtime.test_runtime import PARAMS, wait_for

    async def scenario():
        spec = topic(topic_id=0)
        journal = tmp_path / "broker.journal"
        broker = BrokerServer("127.0.0.1", 0, RuntimeBrokerConfig(
            topics={0: spec}, policy=DISK_LOG, params=PARAMS,
            journal_path=str(journal)), role="primary")
        await broker.start()
        subscriber = Subscriber([0], broker.address, broker.address)
        await subscriber.start()
        await asyncio.sleep(0.2)
        publisher = Publisher([spec], broker.address, broker.address)
        await publisher.start()
        await publisher.publish({0: "persisted"})
        await wait_for(lambda: subscriber.delivered_seqs(0) == {1})
        await publisher.close()
        await subscriber.close()
        await broker.close()
        scan = scan_journal(str(journal))
        assert scan.corrupt_records == 0 and not scan.torn_tail
        return scan.records

    records = asyncio.run(scenario())
    assert len(records) == 1
    assert records[0]["topic"] == 0
    assert records[0]["payload"] == "persisted"


def test_runtime_journal_recovery_after_restart(tmp_path):
    """Crash-restart: a fresh broker replays the journal and re-delivers
    every persisted message to reconnecting subscribers, exactly once."""
    import asyncio

    from repro.runtime.client import Publisher, Subscriber
    from repro.runtime.journal import scan_journal
    from tests.runtime.test_runtime import PARAMS, wait_for

    async def scenario():
        spec = topic(topic_id=0)
        journal = tmp_path / "broker.journal"

        def make_broker(recover):
            return BrokerServer("127.0.0.1", 0, RuntimeBrokerConfig(
                topics={0: spec}, policy=DISK_LOG, params=PARAMS,
                journal_path=str(journal), recover_journal=recover,
                journal_recovery_delay=0.3), role="primary")

        first = make_broker(recover=False)
        await first.start()
        publisher = Publisher([spec], first.address, first.address)
        await publisher.start()
        subscriber1 = Subscriber([0], first.address, first.address)
        await subscriber1.start()
        await asyncio.sleep(0.2)
        await publisher.publish({0: "m1"})
        await publisher.publish({0: "m2"})
        await wait_for(lambda: subscriber1.delivered_seqs(0) == {1, 2})
        await publisher.close()
        await subscriber1.close()
        await first.close()          # "crash" (journal survives on disk)

        second = make_broker(recover=True)
        await second.start()
        subscriber2 = Subscriber([0], second.address, second.address)
        await subscriber2.start()
        ok = await wait_for(lambda: subscriber2.delivered_seqs(0) == {1, 2},
                            timeout=8.0)
        recovered = second.recovery_dispatched
        await subscriber2.close()
        await second.close()
        # The replay must not have re-journaled the replayed messages.
        return ok, recovered, len(scan_journal(str(journal)).records)

    ok, recovered, journal_records = asyncio.run(scenario())
    assert ok, "journaled messages were not re-delivered after restart"
    assert recovered == 2
    assert journal_records == 2
