"""Journal integrity: CRC framing, torn tails, corruption, migration.

Unit tests drive :mod:`repro.runtime.journal` directly on crafted files;
the end-to-end test corrupts a real broker journal (one record flipped
mid-file, the final record torn) and asserts that a crash-restart
recovers every intact record, surfaces both defects through
``snapshot()``, and keeps serving.
"""

import asyncio
import json
import struct

from repro.core.policy import DISK_LOG
from repro.runtime import journal
from repro.runtime.broker import BrokerServer, RuntimeBrokerConfig
from repro.runtime.client import Publisher, Subscriber
from repro.runtime.journal import (
    MAX_RECORD_BYTES,
    encode_record,
    epoch_record,
    prepare_journal,
    record_offsets,
    scan_journal,
)

from tests.helpers import topic
from tests.runtime.test_runtime import PARAMS, wait_for


def message_obj(seq, topic_id=0):
    return {"topic": topic_id, "seq": seq, "created_at": float(seq),
            "payload": f"m{seq}"}


def write_records(path, objs):
    with open(path, "wb") as handle:
        for obj in objs:
            handle.write(encode_record(obj))


# ----------------------------------------------------------------------
# Scan classification
# ----------------------------------------------------------------------
def test_scan_clean_journal(tmp_path):
    path = tmp_path / "j"
    write_records(path, [message_obj(1), message_obj(2), message_obj(3)])
    scan = scan_journal(str(path))
    assert [r["seq"] for r in scan.records] == [1, 2, 3]
    assert scan.corrupt_records == 0
    assert not scan.torn_tail and not scan.legacy
    assert scan.good_offset == path.stat().st_size


def test_scan_missing_file_is_empty():
    scan = scan_journal("/nonexistent/journal")
    assert scan.records == [] and not scan.torn_tail


def test_torn_tail_detected_and_truncated(tmp_path):
    path = tmp_path / "j"
    write_records(path, [message_obj(1), message_obj(2)])
    intact_size = path.stat().st_size
    # Append half of a third record: the write died mid-flight.
    torn = encode_record(message_obj(3))
    with open(path, "ab") as handle:
        handle.write(torn[:len(torn) // 2])
    scan = scan_journal(str(path))
    assert [r["seq"] for r in scan.records] == [1, 2]
    assert scan.torn_tail
    assert scan.good_offset == intact_size
    # prepare_journal repairs in place: the tail is gone, appends are safe.
    prepare_journal(str(path))
    assert path.stat().st_size == intact_size
    rescan = scan_journal(str(path))
    assert not rescan.torn_tail and len(rescan.records) == 2


def test_torn_header_alone_is_a_torn_tail(tmp_path):
    path = tmp_path / "j"
    write_records(path, [message_obj(1)])
    with open(path, "ab") as handle:
        handle.write(b"\x00\x00")   # 2 of the 8 header bytes
    scan = scan_journal(str(path))
    assert scan.torn_tail and [r["seq"] for r in scan.records] == [1]


def test_mid_file_corrupt_record_skipped_not_fatal(tmp_path):
    path = tmp_path / "j"
    write_records(path, [message_obj(1), message_obj(2), message_obj(3)])
    # Flip one payload byte inside record 2: its CRC no longer matches,
    # but the framing is intact so record 3 must still be recovered.
    offsets = record_offsets(str(path))
    data = bytearray(path.read_bytes())
    data[offsets[1] + 8 + 4] ^= 0xFF
    path.write_bytes(bytes(data))
    scan = scan_journal(str(path))
    assert [r["seq"] for r in scan.records] == [1, 3]
    assert scan.corrupt_records == 1
    assert not scan.torn_tail
    # Repair leaves mid-file corruption in place (replay just skips it).
    prepare_journal(str(path))
    assert scan_journal(str(path)).corrupt_records == 1


def test_corrupt_length_header_stops_the_scan(tmp_path):
    path = tmp_path / "j"
    write_records(path, [message_obj(1)])
    with open(path, "ab") as handle:
        handle.write(struct.pack(">II", MAX_RECORD_BYTES + 1, 0))
        handle.write(encode_record(message_obj(2)))
    scan = scan_journal(str(path))
    # Framing is lost at the bad header: nothing after it can be trusted.
    assert [r["seq"] for r in scan.records] == [1]
    assert scan.corrupt_records == 1


# ----------------------------------------------------------------------
# Epoch marks
# ----------------------------------------------------------------------
def test_epoch_records_latest_wins(tmp_path):
    path = tmp_path / "j"
    with open(path, "wb") as handle:
        handle.write(epoch_record(2))
        handle.write(encode_record(message_obj(1)))
        handle.write(epoch_record(5, fenced=True))
    scan = scan_journal(str(path))
    assert scan.max_epoch == 5 and scan.fenced
    assert [r["seq"] for r in scan.records] == [1]


def test_epoch_tie_takes_latest_fencing_state(tmp_path):
    path = tmp_path / "j"
    with open(path, "wb") as handle:
        handle.write(epoch_record(3, fenced=True))
        handle.write(epoch_record(3, fenced=False))
    assert not scan_journal(str(path)).fenced


# ----------------------------------------------------------------------
# Legacy JSON-lines migration
# ----------------------------------------------------------------------
def test_legacy_journal_migrates_to_framed(tmp_path):
    path = tmp_path / "j"
    lines = [json.dumps(message_obj(seq)) for seq in (1, 2)]
    path.write_text("\n".join(lines) + "\n")
    scan = prepare_journal(str(path))
    assert scan.legacy and [r["seq"] for r in scan.records] == [1, 2]
    # The rewrite is framed: a fresh scan is no longer legacy.
    rescan = scan_journal(str(path))
    assert not rescan.legacy
    assert [r["seq"] for r in rescan.records] == [1, 2]
    assert not rescan.torn_tail and rescan.corrupt_records == 0


def test_legacy_torn_last_line(tmp_path):
    path = tmp_path / "j"
    blob = json.dumps(message_obj(1)) + "\n" + json.dumps(message_obj(2))
    path.write_text(blob[:-4])   # the last line was cut mid-write
    scan = scan_journal(str(path))
    assert scan.torn_tail and [r["seq"] for r in scan.records] == [1]


# ----------------------------------------------------------------------
# End to end: a corrupted broker journal survives a crash-restart
# ----------------------------------------------------------------------
def test_broker_recovers_from_corrupt_and_torn_journal(tmp_path):
    """Torn final record + one corrupt mid-file record: the restarted
    broker replays the intact records, reports both defects in its
    snapshot, and keeps accepting new publishes."""
    spec = topic(topic_id=0)
    path = tmp_path / "broker.journal"

    def make_broker(recover):
        return BrokerServer("127.0.0.1", 0, RuntimeBrokerConfig(
            topics={0: spec}, policy=DISK_LOG, params=PARAMS,
            journal_path=str(path), recover_journal=recover,
            journal_recovery_delay=0.3), role="primary")

    async def scenario():
        first = make_broker(recover=False)
        await first.start()
        publisher = Publisher([spec], first.address, first.address)
        await publisher.start()
        subscriber = Subscriber([0], first.address, first.address)
        await subscriber.start()
        await asyncio.sleep(0.2)
        for seq in (1, 2, 3):
            await publisher.publish({0: f"m{seq}"})
        await wait_for(lambda: subscriber.delivered_seqs(0) == {1, 2, 3})
        await publisher.close()
        await subscriber.close()
        await first.close()

        # Corrupt record 2 in place and tear a fourth record's tail.
        offsets = record_offsets(str(path))
        assert len(offsets) == 3
        data = bytearray(path.read_bytes())
        data[offsets[1] + 8 + 4] ^= 0xFF
        blob = journal.encode_record(
            {"topic": 0, "seq": 4, "created_at": 4.0, "payload": "torn"})
        path.write_bytes(bytes(data) + blob[:len(blob) - 5])

        second = make_broker(recover=True)
        await second.start()
        subscriber2 = Subscriber([0], second.address, second.address)
        await subscriber2.start()
        ok = await wait_for(
            lambda: subscriber2.delivered_seqs(0) == {1, 3}, timeout=8.0)
        snapshot = second.snapshot()
        # The broker still serves after the damaged replay.
        publisher2 = Publisher([spec], second.address, second.address)
        await publisher2.start()
        publisher2._seq[0] = 3   # continue the stream past the recovery
        await publisher2.publish({0: "m4"})
        served = await wait_for(
            lambda: subscriber2.delivered_seqs(0) == {1, 3, 4}, timeout=8.0)
        await publisher2.close()
        await subscriber2.close()
        await second.close()
        return ok, served, snapshot

    ok, served, snapshot = asyncio.run(scenario())
    assert ok, "intact journal records were not replayed"
    assert served, "broker did not serve after recovering a damaged journal"
    assert snapshot["journal"]["corrupt_records"] == 1
    assert snapshot["journal"]["torn_tail"] == 1
    # The boot repair truncated the torn tail off the file itself.
    scan = scan_journal(str(tmp_path / "broker.journal"))
    assert not scan.torn_tail
