"""End-to-end tests of the asyncio runtime on loopback sockets.

Timing assertions are deliberately loose (this runtime is best-effort;
see the package docstring) — the tests verify *functional* behavior:
delivery, selective replication, coordination, fail-over, recovery.
"""

import asyncio

import pytest

from repro.core.model import EDGE, Message, TopicSpec
from repro.core.policy import FCFS_MINUS, FRAME
from repro.core.timing import DeadlineParameters
from repro.core.units import ms
from repro.runtime import BrokerServer, Publisher, RuntimeBrokerConfig, Subscriber
from repro.runtime.broker import BACKUP, PRIMARY
from repro.runtime.wire import decode_message, encode_message

#: Generous parameters suited to wall-clock CI machines.
PARAMS = DeadlineParameters(
    delta_pb=ms(5), delta_bb=ms(5), delta_bs_edge=ms(10),
    delta_bs_cloud=ms(50), failover_time=2.0,
)


def replicated_topic(topic_id=0):
    """Needs replication: Dr(=1*0.5-...-2 <0? choose period big) ..."""
    # (Ni + Li) * Ti = 1 * 1.0 s; x = 2 s => Dr < 0 is inadmissible, so
    # pick Ti large enough: Ni=1, Ti=3 s, Dr ~ 0.99 s < Dd? Di=5 s gives
    # Dd ~ 4.99 > Dr => replication needed.
    return TopicSpec(topic_id=topic_id, period=3.0, deadline=5.0,
                     loss_tolerance=0, retention=1, destination=EDGE,
                     category=2)


def suppressed_topic(topic_id=1):
    """Proposition 1 suppresses: huge retention makes Dr >> Dd."""
    return TopicSpec(topic_id=topic_id, period=3.0, deadline=5.0,
                     loss_tolerance=0, retention=10, destination=EDGE,
                     category=3)


async def start_pair(topics, policy=FRAME):
    config_topics = {spec.topic_id: spec for spec in topics}
    backup = BrokerServer("127.0.0.1", 0, RuntimeBrokerConfig(
        topics=config_topics, policy=policy, params=PARAMS,
        poll_interval=0.05, reply_timeout=0.2, miss_threshold=3,
    ), role=BACKUP, name="B2")
    await backup.start()
    primary = BrokerServer("127.0.0.1", 0, RuntimeBrokerConfig(
        topics=config_topics, policy=policy, params=PARAMS,
        peer_address=backup.address,
    ), role=PRIMARY, name="B1")
    await primary.start()
    backup.config.watch_address = primary.address
    backup._tasks.append(asyncio.create_task(backup._watch_primary()))
    await asyncio.sleep(0.1)   # let the peer link come up
    return primary, backup


async def wait_for(predicate, timeout=5.0, interval=0.02):
    deadline = asyncio.get_event_loop().time() + timeout
    while asyncio.get_event_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return False


# ----------------------------------------------------------------------
def test_wire_message_roundtrip():
    message = Message(3, 7, 123.5, data="hello")
    decoded = decode_message(encode_message(message))
    assert decoded.key() == message.key()
    assert decoded.created_at == message.created_at
    assert decoded.data == "hello"


def test_publish_deliver_roundtrip():
    async def scenario():
        spec = replicated_topic()
        primary, backup = await start_pair([spec])
        subscriber = Subscriber([spec.topic_id], primary.address, backup.address)
        await subscriber.start()
        await asyncio.sleep(0.2)
        publisher = Publisher([spec], primary.address, backup.address)
        await publisher.start()
        await publisher.publish({spec.topic_id: "m1"})
        await publisher.publish({spec.topic_id: "m2"})
        ok = await wait_for(lambda: subscriber.delivered_seqs(spec.topic_id) == {1, 2})
        await publisher.close()
        await subscriber.close()
        await primary.close()
        await backup.close()
        assert ok, "messages not delivered"

    asyncio.run(scenario())


def test_selective_replication_in_runtime():
    async def scenario():
        rep = replicated_topic(0)
        sup = suppressed_topic(1)
        primary, backup = await start_pair([rep, sup])
        publisher = Publisher([rep, sup], primary.address, backup.address)
        await publisher.start()
        await publisher.publish({0: "a", 1: "b"})
        await wait_for(lambda: primary.dispatched >= 1)
        await asyncio.sleep(0.3)
        replicated = backup.backup_buffer.get(0, 1)
        suppressed = backup.backup_buffer.get(1, 1)
        await publisher.close()
        await primary.close()
        await backup.close()
        assert replicated is not None
        assert suppressed is None

    asyncio.run(scenario())


def test_coordination_prunes_backup_copy():
    async def scenario():
        spec = replicated_topic()
        primary, backup = await start_pair([spec])
        subscriber = Subscriber([spec.topic_id], primary.address, backup.address)
        await subscriber.start()
        await asyncio.sleep(0.2)
        publisher = Publisher([spec], primary.address, backup.address)
        await publisher.start()
        await publisher.publish({spec.topic_id: "x"})
        ok = await wait_for(lambda: (
            backup.backup_buffer.get(spec.topic_id, 1) is not None
            and backup.backup_buffer.get(spec.topic_id, 1).discard))
        await publisher.close()
        await subscriber.close()
        await primary.close()
        await backup.close()
        assert ok, "backup copy was not pruned after dispatch"

    asyncio.run(scenario())


def test_no_coordination_leaves_copy_live():
    async def scenario():
        spec = replicated_topic()
        primary, backup = await start_pair([spec], policy=FCFS_MINUS)
        subscriber = Subscriber([spec.topic_id], primary.address, backup.address)
        await subscriber.start()
        await asyncio.sleep(0.2)
        publisher = Publisher([spec], primary.address, backup.address)
        await publisher.start()
        await publisher.publish({spec.topic_id: "x"})
        await wait_for(lambda: backup.backup_buffer.get(spec.topic_id, 1) is not None)
        await asyncio.sleep(0.2)
        entry = backup.backup_buffer.get(spec.topic_id, 1)
        await publisher.close()
        await subscriber.close()
        await primary.close()
        await backup.close()
        assert entry is not None and not entry.discard

    asyncio.run(scenario())


def test_failover_and_recovery_deliver_all_messages():
    async def scenario():
        spec = replicated_topic()
        primary, backup = await start_pair([spec])
        subscriber = Subscriber([spec.topic_id], primary.address, backup.address)
        await subscriber.start()
        await asyncio.sleep(0.2)
        publisher = Publisher([spec], primary.address, backup.address,
                              poll_interval=0.05, reply_timeout=0.2,
                              miss_threshold=3)
        await publisher.start()
        await publisher.publish({spec.topic_id: "before-1"})
        await publisher.publish({spec.topic_id: "before-2"})
        await wait_for(lambda: subscriber.delivered_seqs(spec.topic_id) == {1, 2})

        await primary.close()   # crash the primary
        await asyncio.wait_for(backup.promoted.wait(), timeout=5.0)
        await asyncio.wait_for(publisher.failed_over.wait(), timeout=5.0)

        await publisher.publish({spec.topic_id: "after-1"})
        ok = await wait_for(lambda: subscriber.delivered_seqs(spec.topic_id)
                            >= {1, 2, 3})
        duplicates_ok = subscriber.duplicates >= 0
        await publisher.close()
        await subscriber.close()
        await backup.close()
        assert ok, "post-failover message not delivered"
        assert duplicates_ok

    asyncio.run(scenario())


def test_stats_frame_roundtrip():
    async def scenario():
        spec = replicated_topic()
        primary, backup = await start_pair([spec])
        subscriber = Subscriber([spec.topic_id], primary.address, backup.address)
        await subscriber.start()
        await asyncio.sleep(0.2)
        publisher = Publisher([spec], primary.address, backup.address)
        await publisher.start()
        await publisher.publish({spec.topic_id: "x"})
        await wait_for(lambda: primary.dispatched >= 1)
        from repro.runtime.client import fetch_stats
        stats = await fetch_stats(primary.address)
        await publisher.close()
        await subscriber.close()
        await primary.close()
        await backup.close()
        assert stats["role"] == "primary"
        assert stats["dispatched"] >= 1
        assert stats["topics"] == 1

    asyncio.run(scenario())


def test_publisher_validates_topics():
    with pytest.raises(ValueError):
        Publisher([], ("127.0.0.1", 1), ("127.0.0.1", 2))
    publisher = Publisher([replicated_topic()], ("127.0.0.1", 1), ("127.0.0.1", 2))
    with pytest.raises(KeyError):
        asyncio.run(publisher.publish({99: "x"}))


def test_replica_frame_preserves_primary_arrival_stamp():
    """Regression: the Backup used to stamp replicas with its own clock,
    skewing recovery ordering across hosts.  The frame's ``arrived_at``
    must win; local time is only a fallback when the field is absent."""
    import time

    from repro.runtime.wire import write_frame

    async def scenario():
        spec = replicated_topic()
        backup = BrokerServer("127.0.0.1", 0, RuntimeBrokerConfig(
            topics={spec.topic_id: spec}, params=PARAMS,
        ), role=BACKUP, name="B2")
        await backup.start()
        _, writer = await asyncio.open_connection(*backup.address)
        await write_frame(writer, {"type": "hello", "role": "peer"})
        await write_frame(writer, {
            "type": "replica",
            "message": encode_message(Message(spec.topic_id, 1, 10.0)),
            "arrived_at": 123.456,
        })
        await write_frame(writer, {   # no arrived_at: legacy peer
            "type": "replica",
            "message": encode_message(Message(spec.topic_id, 2, 10.0)),
        })
        ok = await wait_for(
            lambda: backup.backup_buffer.get(spec.topic_id, 2) is not None)
        stamped = backup.backup_buffer.get(spec.topic_id, 1)
        fallback = backup.backup_buffer.get(spec.topic_id, 2)
        writer.close()
        await backup.close()
        assert ok
        assert stamped.arrived_at == 123.456
        assert abs(fallback.arrived_at - time.time()) < 5.0

    asyncio.run(scenario())


def test_concurrent_journal_writes_never_interleave(tmp_path):
    """Regression: ``_journal_write`` ran on ``asyncio.to_thread`` from
    several workers against one shared handle with no lock.  With the
    journal serialized, every record must parse and replay cleanly."""
    import time

    from repro.core.policy import DISK_LOG
    from repro.runtime.journal import scan_journal
    from repro.runtime.wire import write_frame

    async def scenario():
        specs = [replicated_topic(i) for i in range(4)]
        journal = tmp_path / "journal.ndjson"
        broker = BrokerServer("127.0.0.1", 0, RuntimeBrokerConfig(
            topics={s.topic_id: s for s in specs}, policy=DISK_LOG,
            params=PARAMS, journal_path=str(journal),
        ), name="J1")
        await broker.start()
        _, writer = await asyncio.open_connection(*broker.address)
        now = time.time()
        messages = [encode_message(Message(t, s, now))
                    for t in range(4) for s in range(1, 11)]
        await write_frame(writer, {"type": "publish", "messages": messages})
        ok = await wait_for(lambda: broker.dispatched >= 40)
        await broker.close()
        writer.close()
        assert ok
        scan = scan_journal(str(journal))
        assert scan.corrupt_records == 0 and not scan.torn_tail
        assert len(scan.records) == 40                   # all CRC-verified
        keys = {(decode_message(r).topic_id, decode_message(r).seq)
                for r in scan.records}
        assert keys == {(t, s) for t in range(4) for s in range(1, 11)}

    asyncio.run(scenario())


def test_worker_pool_survives_oserror_from_dead_subscriber():
    """Regression: ``_worker`` caught only ``(ConnectionResetError,
    ProtocolError)``; a ``BrokenPipeError`` (plain ``OSError`` subclass
    outside that tuple) killed the worker task and silently shrank the
    pool."""
    async def scenario():
        spec = replicated_topic()
        primary, backup = await start_pair([spec])
        subscriber = Subscriber([spec.topic_id], primary.address, backup.address)
        await subscriber.start()
        await asyncio.sleep(0.2)
        publisher = Publisher([spec], primary.address, backup.address)
        await publisher.start()

        original = primary._do_replicate

        async def broken_pipe(entry, coordination):
            raise BrokenPipeError("replica socket died mid-write")

        primary._do_replicate = broken_pipe
        await publisher.publish({spec.topic_id: "one"})
        ok = await wait_for(lambda: primary.worker_errors >= 1)
        assert ok
        assert len(primary._worker_tasks) == primary.config.dispatch_workers
        assert primary.workers_respawned == 0   # contained, not respawned

        primary._do_replicate = original
        await publisher.publish({spec.topic_id: "two"})
        delivered = await wait_for(
            lambda: subscriber.delivered_seqs(spec.topic_id) >= {1, 2})
        await publisher.close()
        await subscriber.close()
        await primary.close()
        await backup.close()
        assert delivered

    asyncio.run(scenario())
