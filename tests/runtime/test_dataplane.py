"""Data-plane integration tests: codec interop, micro-batching,
slow-subscriber backpressure, and journal group commit.

These cover the throughput-overhaul layer end to end over real loopback
sockets: JSON-only and binary clients sharing one broker, legacy clients
that never see a ``hello_ack``, bounded per-subscriber queues under both
drop and block policies, and the group-committed journal staying
replay-compatible with the per-record format.
"""

import asyncio
import json
import socket

import pytest

from repro.core.model import Message
from repro.core.policy import DISK_LOG
from repro.runtime import BrokerServer, Publisher, RuntimeBrokerConfig, Subscriber
from repro.runtime.client import fetch_stats
from repro.runtime.journal import scan_journal
from repro.runtime.wire import BINARY_CODEC, decode_message, read_frame, write_frame

from tests.runtime.test_runtime import (
    PARAMS,
    suppressed_topic,
    wait_for,
)


async def start_single(topic, **config_overrides):
    """One standalone Primary (no peer): pure data-plane harness."""
    broker = BrokerServer("127.0.0.1", 0, RuntimeBrokerConfig(
        topics={topic.topic_id: topic}, params=PARAMS, **config_overrides))
    await broker.start()
    return broker


async def open_raw(address, hello=None, rcvbuf=None):
    """A hand-rolled JSON client connection (legacy wire behavior)."""
    if rcvbuf is not None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, rcvbuf)
        sock.setblocking(False)
        await asyncio.get_event_loop().sock_connect(sock, address)
        reader, writer = await asyncio.open_connection(sock=sock)
    else:
        reader, writer = await asyncio.open_connection(*address)
    if hello is not None:
        await write_frame(writer, hello)
    return reader, writer


def clamp_broker_send_buffers(broker, size=8192):
    """Shrink SO_SNDBUF on every accepted connection so a wedged reader
    exerts backpressure after kilobytes, not after the megabytes the
    kernel would otherwise autotune loopback buffers to."""
    for writer in broker._connections:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, size)
        writer.transport.set_write_buffer_limits(high=size)


# ----------------------------------------------------------------------
# JSON <-> binary interop
# ----------------------------------------------------------------------
def test_json_and_binary_subscribers_both_receive_everything():
    async def scenario():
        spec = suppressed_topic(0)
        broker = await start_single(spec)
        binary_sub = Subscriber([spec.topic_id], broker.address,
                                broker.address, binary=True)
        json_sub = Subscriber([spec.topic_id], broker.address,
                              broker.address, binary=False)
        await binary_sub.start()
        await json_sub.start()
        await asyncio.sleep(0.2)
        publisher = Publisher([spec], broker.address, broker.address,
                              binary=True)
        await publisher.start()
        try:
            assert publisher.binary_active
            for index in range(40):
                await publisher.publish({spec.topic_id: f"msg-{index}"})
            await publisher.flush()
            expected = set(range(1, 41))
            ok = await wait_for(
                lambda: binary_sub.delivered_seqs(spec.topic_id) == expected
                and json_sub.delivered_seqs(spec.topic_id) == expected)
            assert ok, "codec mix lost messages"
            # Payloads survive both codecs identically.
            assert binary_sub.received[spec.topic_id].keys() \
                == json_sub.received[spec.topic_id].keys()
            stats = await fetch_stats(broker.address)
            plane = stats["data_plane"]
            assert plane["binary_codec"] is True
            assert plane["flushes"] >= 1
            assert plane["frames_flushed"] >= 80
        finally:
            await publisher.close()
            await binary_sub.close()
            await json_sub.close()
            await broker.close()

    asyncio.run(scenario())


def test_legacy_json_client_sees_pure_json_and_no_ack():
    async def scenario():
        spec = suppressed_topic(0)
        broker = await start_single(spec)
        reader, writer = await open_raw(
            broker.address, hello={"type": "hello", "role": "subscriber"})
        try:
            await write_frame(writer, {"type": "subscribe",
                                       "topics": [spec.topic_id]})
            frame = await asyncio.wait_for(read_frame(reader), timeout=2.0)
            # No codecs advertised => no hello_ack may ever be sent; the
            # first reply must be the subscribe confirmation.
            assert frame == {"type": "subscribed"}

            publisher = Publisher([spec], broker.address, broker.address,
                                  binary=False, cork=False)
            await publisher.start()
            assert not publisher.binary_active
            sent = await publisher.publish({spec.topic_id: "plain"})
            frame = await asyncio.wait_for(read_frame(reader), timeout=2.0)
            assert frame["type"] == "deliver"
            # A legacy reader gets a JSON object, never a packed message.
            assert isinstance(frame["message"], dict)
            message = decode_message(frame["message"])
            assert message.key() == sent[0].key()
            assert message.data == "plain"
            await publisher.close()
        finally:
            writer.close()
            await broker.close()

    asyncio.run(scenario())


def test_binary_publisher_against_json_only_broker_falls_back():
    async def scenario():
        spec = suppressed_topic(0)
        broker = await start_single(spec, enable_binary_codec=False)
        subscriber = Subscriber([spec.topic_id], broker.address,
                                broker.address, binary=True)
        await subscriber.start()
        await asyncio.sleep(0.2)
        publisher = Publisher([spec], broker.address, broker.address,
                              binary=True, hello_timeout=0.05)
        await publisher.start()
        try:
            assert not publisher.binary_active   # broker never acked
            await publisher.publish({spec.topic_id: "fallback"})
            ok = await wait_for(
                lambda: subscriber.delivered_seqs(spec.topic_id) == {1})
            assert ok
        finally:
            await publisher.close()
            await subscriber.close()
            await broker.close()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# Slow-subscriber backpressure
# ----------------------------------------------------------------------
def test_stuck_subscriber_drop_policy_does_not_stall_others():
    async def scenario():
        spec = suppressed_topic(0)
        broker = await start_single(spec, sub_queue_limit=64,
                                    sub_queue_policy="drop")
        healthy = Subscriber([spec.topic_id], broker.address, broker.address)
        await healthy.start()
        await asyncio.sleep(0.2)
        # A subscriber that wedges: tiny receive buffer, never reads.
        _, stuck_writer = await open_raw(
            broker.address,
            hello={"type": "hello", "role": "subscriber"}, rcvbuf=8192)
        await write_frame(stuck_writer, {"type": "subscribe",
                                         "topics": [spec.topic_id]})
        await asyncio.sleep(0.1)
        clamp_broker_send_buffers(broker)
        publisher = Publisher([spec], broker.address, broker.address)
        await publisher.start()
        try:
            total = 800
            payload = "x" * 2048
            for index in range(total):
                await publisher.publish({spec.topic_id: payload})
                if index % 25 == 0:      # let the healthy reader breathe
                    await asyncio.sleep(0.002)
            await publisher.flush()
            ok = await wait_for(
                lambda: len(healthy.delivered_seqs(spec.topic_id)) == total,
                timeout=30.0)
            assert ok, (
                f"healthy subscriber stalled at "
                f"{len(healthy.delivered_seqs(spec.topic_id))}/{total}")
            assert broker.dispatched == total
            stats = await fetch_stats(broker.address)
            plane = stats["data_plane"]
            assert plane["queue_policy"] == "drop"
            assert plane["frames_dropped"] > 0, \
                "the wedged subscriber never overflowed its bounded queue"
        finally:
            await publisher.close()
            stuck_writer.close()
            await healthy.close()
            await broker.close()

    asyncio.run(scenario())


def test_stuck_subscriber_block_policy_backpressures_then_recovers():
    async def scenario():
        spec = suppressed_topic(0)
        broker = await start_single(spec, sub_queue_limit=8,
                                    sub_queue_policy="block")
        healthy = Subscriber([spec.topic_id], broker.address, broker.address)
        await healthy.start()
        await asyncio.sleep(0.2)
        _, stuck_writer = await open_raw(
            broker.address,
            hello={"type": "hello", "role": "subscriber"}, rcvbuf=8192)
        await write_frame(stuck_writer, {"type": "subscribe",
                                         "topics": [spec.topic_id]})
        await asyncio.sleep(0.1)
        clamp_broker_send_buffers(broker)
        publisher = Publisher([spec], broker.address, broker.address)
        await publisher.start()
        try:
            total = 120
            payload = "x" * 4096
            for _ in range(total):
                await publisher.publish({spec.topic_id: payload})
            await publisher.flush()
            # Dispatch must wedge on the full bounded queue...
            ok = await wait_for(lambda: broker.sub_dispatch_blocks >= 1,
                                timeout=10.0)
            assert ok, "block policy never applied backpressure"
            # ...and severing the stuck subscriber must release it.
            stuck_writer.close()
            ok = await wait_for(
                lambda: len(healthy.delivered_seqs(spec.topic_id)) == total,
                timeout=30.0)
            assert ok, (
                f"dispatch did not recover after the stuck subscriber "
                f"died ({len(healthy.delivered_seqs(spec.topic_id))}/{total})")
            stats = await fetch_stats(broker.address)
            assert stats["data_plane"]["dispatch_blocks"] >= 1
        finally:
            await publisher.close()
            await healthy.close()
            await broker.close()

    asyncio.run(scenario())


def test_resubscribe_after_transient_close_gets_fresh_subscription():
    """A transient write error closes the subscription while the
    connection's read loop lives on; a later subscribe on the same
    connection must get a working replacement, not the dead one."""
    async def scenario():
        spec = suppressed_topic(0)
        broker = await start_single(spec)
        reader, writer = await open_raw(
            broker.address, hello={"type": "hello", "role": "subscriber"})
        publisher = Publisher([spec], broker.address, broker.address)
        try:
            await write_frame(writer, {"type": "subscribe",
                                       "topics": [spec.topic_id]})
            frame = await asyncio.wait_for(read_frame(reader), timeout=2.0)
            assert frame == {"type": "subscribed"}
            await publisher.start()
            await publisher.publish({spec.topic_id: "one"})
            frame = await asyncio.wait_for(read_frame(reader), timeout=2.0)
            assert frame["type"] == "deliver"

            (sub,) = broker._subscriptions
            broker._close_subscription(sub)   # the transient-error path
            assert sub.closed

            await write_frame(writer, {"type": "subscribe",
                                       "topics": [spec.topic_id]})
            frame = await asyncio.wait_for(read_frame(reader), timeout=2.0)
            assert frame == {"type": "subscribed"}
            await publisher.publish({spec.topic_id: "two"})
            frame = await asyncio.wait_for(read_frame(reader), timeout=2.0)
            assert frame["type"] == "deliver"
            assert decode_message(frame["message"]).data == "two"
        finally:
            await publisher.close()
            writer.close()
            await broker.close()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# Publisher corking
# ----------------------------------------------------------------------
def test_publisher_cork_backpressure_and_flush():
    async def scenario():
        spec = suppressed_topic(0)
        broker = await start_single(spec)
        subscriber = Subscriber([spec.topic_id], broker.address, broker.address)
        await subscriber.start()
        await asyncio.sleep(0.2)
        publisher = Publisher([spec], broker.address, broker.address,
                              cork=True, pending_limit=4)
        await publisher.start()
        try:
            total = 200
            for index in range(total):
                await publisher.publish({spec.topic_id: index})
            await publisher.flush()
            assert publisher.frames_sent == total
            assert publisher.bytes_sent > 0
            ok = await wait_for(
                lambda: subscriber.delivered_seqs(spec.topic_id)
                == set(range(1, total + 1)))
            assert ok, "corked publisher lost or reordered messages"
        finally:
            await publisher.close()
            await subscriber.close()
            await broker.close()

    asyncio.run(scenario())


def test_unserializable_payload_does_not_kill_publisher_flusher():
    """A payload no codec can encode must be counted as a send failure
    and dropped — the flusher task has to survive so later publishes
    (and flush() waiters) keep working."""
    async def scenario():
        spec = suppressed_topic(0)
        broker = await start_single(spec)
        subscriber = Subscriber([spec.topic_id], broker.address,
                                broker.address)
        await subscriber.start()
        await asyncio.sleep(0.2)
        publisher = Publisher([spec], broker.address, broker.address,
                              cork=True)
        await publisher.start()
        try:
            await publisher.publish({spec.topic_id: object()})
            await publisher.flush()           # must not hang on a dead task
            assert publisher.send_failures >= 1
            await publisher.publish({spec.topic_id: "fine"})
            await publisher.flush()
            ok = await wait_for(
                lambda: 2 in subscriber.delivered_seqs(spec.topic_id))
            assert ok, "flusher died after an unencodable payload"
        finally:
            await publisher.close()
            await subscriber.close()
            await broker.close()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# Journal group commit
# ----------------------------------------------------------------------
def test_journal_group_commit_format_matches_per_record(tmp_path):
    async def scenario(group_commit, path):
        spec = suppressed_topic(0)
        broker = await start_single(spec, policy=DISK_LOG,
                                    journal_path=str(path),
                                    journal_group_commit=group_commit)
        publisher = Publisher([spec], broker.address, broker.address)
        await publisher.start()
        try:
            async def burst(count):
                for index in range(count):
                    await publisher.publish({spec.topic_id: f"r-{index}"})
            await asyncio.gather(burst(10), burst(10))
            await publisher.flush()
            ok = await wait_for(lambda: broker.dispatched >= 20)
            assert ok
            return broker.journal_flushes, broker.journal_records
        finally:
            await publisher.close()
            await broker.close()

    grouped = tmp_path / "grouped.ndjson"
    per_record = tmp_path / "per_record.ndjson"
    flushes, records = asyncio.run(scenario(True, grouped))
    assert records == 20
    assert 1 <= flushes <= records
    asyncio.run(scenario(False, per_record))

    def parse(path):
        scan = scan_journal(str(path))
        assert scan.corrupt_records == 0 and not scan.torn_tail
        return [decode_message(record) for record in scan.records]

    grouped_messages = parse(grouped)
    per_record_messages = parse(per_record)
    assert len(grouped_messages) == len(per_record_messages) == 20
    # Same framed record schema either way: replay cannot tell them apart.
    assert ({m.seq for m in grouped_messages}
            == {m.seq for m in per_record_messages} == set(range(1, 21)))


def test_group_committed_journal_replays(tmp_path):
    async def scenario():
        spec = suppressed_topic(0)
        path = tmp_path / "journal.ndjson"
        broker = await start_single(spec, policy=DISK_LOG,
                                    journal_path=str(path),
                                    journal_group_commit=True)
        publisher = Publisher([spec], broker.address, broker.address)
        await publisher.start()
        for index in range(15):
            await publisher.publish({spec.topic_id: index})
        await publisher.flush()
        await wait_for(lambda: broker.dispatched >= 15)
        await publisher.close()
        await broker.close()

        # Crash-restart recovery: a fresh broker replays the journal.
        recovered = await start_single(spec, policy=DISK_LOG,
                                       journal_path=str(path),
                                       recover_journal=True,
                                       journal_recovery_delay=0.2)
        subscriber = Subscriber([spec.topic_id], recovered.address,
                                recovered.address)
        await subscriber.start()
        try:
            ok = await wait_for(
                lambda: subscriber.delivered_seqs(spec.topic_id)
                == set(range(1, 16)), timeout=10.0)
            assert ok, "replay from a group-committed journal lost messages"
        finally:
            await subscriber.close()
            await recovered.close()

    asyncio.run(scenario())
