"""Broker-engine tests: job generation, delivery, replication, coordination.

These use the hand-wired mini deployment of ``tests/helpers.py`` (constant
latencies, no clock error) so timing assertions are exact.
"""

import pytest

from repro.core.model import LOSS_UNBOUNDED, Message
from repro.core.policy import FCFS, FCFS_MINUS, FRAME, ConfigPolicy
from repro.core.units import ms

from tests.helpers import build_mini, topic


def msg(topic_id, seq, created_at):
    return Message(topic_id=topic_id, seq=seq, created_at=created_at)


#: A topic that FRAME replicates (category 2: Ni=1, Li=0, Ti=Di=100 ms).
REPLICATED = topic(topic_id=0, category=2)

#: A topic Proposition 1 suppresses (category 3: Li=3, Ni=0).
SUPPRESSED = topic(topic_id=1, loss=3, retention=0, category=3)

#: Best effort (category 4).
BEST_EFFORT = topic(topic_id=2, loss=LOSS_UNBOUNDED, retention=0, category=4)


# ----------------------------------------------------------------------
# Basic delivery
# ----------------------------------------------------------------------
def test_message_reaches_subscriber():
    system = build_mini([REPLICATED])
    system.publish([msg(0, 1, created_at=0.0)])
    system.engine.run(until=0.1)
    assert system.delivered_seqs(0) == {1}


def test_end_to_end_latency_is_links_plus_service():
    system = build_mini([REPLICATED])
    system.publish([msg(0, 1, created_at=0.0)])
    system.engine.run(until=0.1)
    latency = system.latencies(0)[1]
    # 0.25 ms up + 10 us proxy + 20 us dispatch + 0.25 ms down, all exact.
    assert latency == pytest.approx(ms(0.25) + 10e-6 + 20e-6 + ms(0.25), abs=1e-9)


def test_unknown_topic_is_dropped():
    system = build_mini([REPLICATED])
    system.publish([msg(99, 1, created_at=0.0)])
    system.engine.run(until=0.1)
    assert system.delivered_seqs(99) == set()
    assert system.primary.stats.dispatched == 0


def test_batch_preserves_all_messages():
    system = build_mini([REPLICATED, SUPPRESSED])
    system.publish([msg(0, 1, 0.0), msg(1, 1, 0.0)])
    system.engine.run(until=0.1)
    assert system.delivered_seqs(0) == {1}
    assert system.delivered_seqs(1) == {1}


# ----------------------------------------------------------------------
# Selective replication (Proposition 1)
# ----------------------------------------------------------------------
def test_frame_replicates_only_needed_topics():
    system = build_mini([REPLICATED, SUPPRESSED, BEST_EFFORT])
    system.publish([msg(0, 1, 0.0), msg(1, 1, 0.0), msg(2, 1, 0.0)])
    system.engine.run(until=0.1)
    assert system.primary.stats.replicated == 1
    assert system.backup.backup_buffer.get(0, 1) is not None
    assert system.backup.backup_buffer.get(1, 1) is None
    assert system.backup.backup_buffer.get(2, 1) is None


def test_fcfs_replicates_everything():
    system = build_mini([REPLICATED, SUPPRESSED, BEST_EFFORT], policy=FCFS)
    system.publish([msg(0, 1, 0.0), msg(1, 1, 0.0), msg(2, 1, 0.0)])
    system.engine.run(until=0.1)
    assert system.primary.stats.replicated == 3


def test_backup_never_replicates():
    """The Backup has no peer: ingesting a batch creates no replication."""
    system = build_mini([REPLICATED])
    system.network.send(system.pub_host, system.backup.ingress_address,
                        __import__("repro.core.protocol", fromlist=["PublishBatch"])
                        .PublishBatch("p", [msg(0, 1, 0.0)]))
    system.engine.run(until=0.1)
    assert system.backup.stats.replicated == 0
    assert system.delivered_seqs(0) == {1}


# ----------------------------------------------------------------------
# Dispatch-replicate coordination (Table 3)
# ----------------------------------------------------------------------
def test_prune_sent_after_dispatch_of_replicated_message():
    system = build_mini([REPLICATED])
    system.publish([msg(0, 1, 0.0)])
    system.engine.run(until=0.1)
    # Replication deadline (≈50 ms) precedes dispatch deadline (≈99 ms),
    # so EDF replicates first, then dispatch triggers the prune.
    assert system.primary.stats.replicated == 1
    assert system.primary.stats.prunes_sent == 1
    assert system.backup.stats.prunes_applied == 1
    assert system.backup.backup_buffer.get(0, 1).discard


def test_no_prune_without_coordination():
    system = build_mini([REPLICATED], policy=FCFS_MINUS)
    system.publish([msg(0, 1, 0.0)])
    system.engine.run(until=0.1)
    assert system.primary.stats.replicated == 1
    assert system.primary.stats.prunes_sent == 0
    assert not system.backup.backup_buffer.get(0, 1).discard


def test_dispatch_first_cancels_pending_replication():
    """A topic whose dispatch deadline precedes its replication deadline
    (but still needs replication under FCFS policy ordering off) has its
    replication job cancelled by coordination once dispatched."""
    # Large retention makes Dr >> Dd; with selective replication *off*
    # (EDF variant) a replication job still gets created.
    edf_all = ConfigPolicy(name="edf-all", selective_replication=False,
                           coordination=True)
    spec = topic(topic_id=0, retention=5, category=2)
    # One worker: the replication job stays queued while dispatch runs.
    system = build_mini([spec], policy=edf_all, delivery_workers=1)
    system.publish([msg(0, 1, 0.0)])
    system.engine.run(until=0.1)
    stats = system.primary.stats
    assert stats.dispatched == 1
    # The replication was either cancelled while queued or aborted at pop.
    assert stats.replications_cancelled + stats.replications_aborted == 1
    assert stats.replicated == 0
    assert system.backup.backup_buffer.get(0, 1) is None


def test_fcfs_minus_replicates_even_after_dispatch():
    edf_all_nocoord = ConfigPolicy(name="edf-all-nc", selective_replication=False,
                                   coordination=False)
    spec = topic(topic_id=0, retention=5, category=2)
    system = build_mini([spec], policy=edf_all_nocoord)
    system.publish([msg(0, 1, 0.0)])
    system.engine.run(until=0.1)
    assert system.primary.stats.dispatched == 1
    assert system.primary.stats.replicated == 1


def test_message_buffer_settles_and_releases():
    system = build_mini([REPLICATED, SUPPRESSED])
    system.publish([msg(0, 1, 0.0), msg(1, 1, 0.0)])
    system.engine.run(until=0.1)
    assert len(system.primary.message_buffer) == 0


# ----------------------------------------------------------------------
# EDF differentiation
# ----------------------------------------------------------------------
def test_edf_orders_by_deadline_not_arrival():
    """With one worker busy, a later-arriving tighter-deadline message is
    dispatched before an earlier loose-deadline one."""
    tight = topic(topic_id=0, period=ms(50), deadline=ms(50), loss=3,
                  retention=0, category=1)
    loose = topic(topic_id=1, period=ms(500), deadline=ms(500), loss=3,
                  retention=0, category=5)
    from tests.helpers import TEST_COSTS
    from dataclasses import replace as dc_replace
    slow = dc_replace(TEST_COSTS, dispatch=ms(2.0))  # serialize the workers
    system = build_mini([tight, loose], costs=slow)
    # Two loose messages arrive first and occupy both workers; then one
    # tight and one more loose message queue up - EDF must pick tight.
    system.publish([msg(1, 1, 0.0), msg(1, 2, 0.0)])
    system.engine.call_after(ms(1.0), system.publish, [msg(1, 3, 0.0)])
    system.engine.call_after(ms(1.2), system.publish, [msg(0, 1, 0.0)])
    system.engine.run(until=1.0)
    lat_tight = system.latencies(0)[1]
    lat_loose3 = system.latencies(1)[3]
    assert lat_tight < lat_loose3


def test_fcfs_orders_by_arrival():
    tight = topic(topic_id=0, period=ms(50), deadline=ms(50), loss=3,
                  retention=0, category=1)
    loose = topic(topic_id=1, period=ms(500), deadline=ms(500), loss=3,
                  retention=0, category=5)
    from tests.helpers import TEST_COSTS
    from dataclasses import replace as dc_replace
    slow = dc_replace(TEST_COSTS, dispatch=ms(2.0), replicate=ms(0.001))
    system = build_mini([tight, loose], policy=FCFS_MINUS, costs=slow)
    system.publish([msg(1, 1, 0.0), msg(1, 2, 0.0)])
    system.engine.call_after(ms(1.0), system.publish, [msg(1, 3, 0.0)])
    system.engine.call_after(ms(1.2), system.publish, [msg(0, 1, 0.0)])
    system.engine.run(until=1.0)
    lat_tight = system.latencies(0)[1]
    lat_loose3 = system.latencies(1)[3]
    assert lat_tight > lat_loose3   # arrival order ignores the deadline


# ----------------------------------------------------------------------
# Promotion and recovery
# ----------------------------------------------------------------------
def test_promotion_dispatches_undiscarded_copies():
    system = build_mini([REPLICATED])
    # Stop the prune from arriving by crashing the primary right after
    # replication: publish, give the replica time to arrive, then crash
    # before dispatch happens.  Use huge dispatch cost to delay dispatch.
    from tests.helpers import TEST_COSTS
    from dataclasses import replace as dc_replace
    slow = dc_replace(TEST_COSTS, dispatch=ms(50.0))
    system = build_mini([REPLICATED], costs=slow)
    system.publish([msg(0, 1, 0.0)])
    system.engine.call_after(ms(10), system.primary_host.crash)
    system.engine.call_after(ms(20), system.backup.promote)
    system.engine.run(until=1.0)
    assert system.backup.stats.recovery_dispatch_jobs == 1
    assert system.delivered_seqs(0) == {1}


def test_promotion_skips_discarded_copies():
    system = build_mini([REPLICATED])
    system.publish([msg(0, 1, 0.0)])
    system.engine.run(until=0.1)          # replicated, dispatched, pruned
    system.primary_host.crash()
    system.backup.promote()
    system.engine.run(until=0.2)
    assert system.backup.stats.recovery_skipped == 1
    assert system.backup.stats.recovery_dispatch_jobs == 0
    assert system.subscriber.stats.duplicates == 0


def test_promote_is_idempotent_and_primary_noop():
    system = build_mini([REPLICATED])
    system.primary.promote()              # already primary: no-op
    assert system.primary.stats.promotion_time is None
    system.backup.promote()
    first = system.backup.stats.promotion_time
    system.backup.promote()
    assert system.backup.stats.promotion_time == first


def test_resend_skips_discarded_and_dedups():
    system = build_mini([REPLICATED])
    system.publish([msg(0, 1, 0.0)])
    system.engine.run(until=0.1)          # dispatched + pruned at backup
    system.primary_host.crash()
    system.backup.promote()
    system.engine.run(until=0.15)
    # Publisher resends the retained copy to the (new) primary.
    system.network.send(
        system.pub_host, system.backup.ingress_address,
        __import__("repro.core.protocol", fromlist=["PublishBatch"])
        .PublishBatch("p", [msg(0, 1, 0.0)], resend=True))
    system.engine.run(until=0.3)
    assert system.backup.stats.resend_messages == 1
    assert system.backup.stats.resend_skipped == 1
    assert system.subscriber.stats.duplicates == 0


def test_recovered_message_not_lost_when_neither_dispatched_nor_pruned():
    """Replica at backup + crash before dispatch => recovery delivers it."""
    from tests.helpers import TEST_COSTS
    from dataclasses import replace as dc_replace
    slow_dispatch = dc_replace(TEST_COSTS, dispatch=ms(30.0))
    system = build_mini([REPLICATED], costs=slow_dispatch, with_promoter=True)
    system.publish([msg(0, 1, 0.0)])
    # Replication (20 us) completes quickly; dispatch takes 30 ms.
    system.engine.call_after(ms(5), system.primary_host.crash)
    system.engine.run(until=1.0)
    assert system.delivered_seqs(0) == {1}
    assert system.backup.stats.promotion_time is not None


def test_promotion_detector_triggers_within_bound():
    system = build_mini([REPLICATED], with_promoter=True)
    system.engine.call_after(0.5, system.primary_host.crash)
    system.engine.run(until=1.0)
    promoted_at = system.backup.stats.promotion_time
    assert promoted_at is not None
    assert promoted_at - 0.5 <= ms(10) + 2 * max(ms(10), ms(8)) + ms(1)


# ----------------------------------------------------------------------
# Utilization accounting
# ----------------------------------------------------------------------
def test_module_meters_accumulate_service_time():
    system = build_mini([REPLICATED])
    system.publish([msg(0, 1, 0.0)])
    system.engine.run(until=0.5)
    stats = system.primary.stats
    assert stats.proxy_meter.busy == pytest.approx(10e-6)
    # dispatch + replicate + coordinate
    assert stats.delivery_meter.busy == pytest.approx(20e-6 + 20e-6 + 10e-6)
    backup_stats = system.backup.stats
    # replica store + prune
    assert backup_stats.proxy_meter.busy == pytest.approx(10e-6 + 5e-6)
