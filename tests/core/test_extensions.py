"""Tests for extension features: re-protection, multi-subscriber fan-out,
requirement merging, and the Sec. III-D.4 topic kinds end-to-end."""

import pytest

from repro.core.broker import BACKUP, Broker
from repro.core.model import EDGE, LOSS_UNBOUNDED, Message, TopicSpec, merged_requirement
from repro.core.units import ms
from repro.sim import Host

from tests.helpers import build_mini, topic


def msg(topic_id, seq, created_at):
    return Message(topic_id=topic_id, seq=seq, created_at=created_at)


# ----------------------------------------------------------------------
# Re-protection: attach a new Backup after fail-over
# ----------------------------------------------------------------------
def make_third_broker(system):
    """Provision a fresh broker host wired to the promoted survivor."""
    engine = system.engine
    host = Host(engine, "backup2")
    system.network.connect(system.backup_host, host, ms(0.05))
    system.network.connect(system.pub_host, host, ms(0.25))
    system.network.connect(host, system.sub_host, ms(0.25))
    broker = Broker(engine, host, system.network, system.config, name="B3",
                    role=BACKUP, peer_name=None)
    broker.stats.set_window(0.0, 1e9)
    return broker


def test_attach_peer_restores_replication_for_new_messages():
    system = build_mini([topic(topic_id=0)])           # category 2: replicates
    system.primary_host.crash()
    system.backup.promote()
    system.engine.run(until=0.05)
    third = make_third_broker(system)
    system.backup.attach_peer("B3")
    system.network.send(system.pub_host, system.backup.ingress_address,
                        __import__("repro.core.protocol", fromlist=["PublishBatch"])
                        .PublishBatch("p", [msg(0, 1, system.engine.now)]))
    system.engine.run(until=0.2)
    assert system.backup.stats.replicated == 1
    assert third.backup_buffer.get(0, 1) is not None
    # Coordination works against the new peer too.
    assert third.backup_buffer.get(0, 1).discard


def test_attach_peer_resyncs_undispatched_entries():
    from dataclasses import replace as dc_replace
    from tests.helpers import TEST_COSTS

    slow = dc_replace(TEST_COSTS, dispatch=ms(50.0))   # keep messages in flight
    system = build_mini([topic(topic_id=0)], costs=slow)
    system.primary_host.crash()
    system.backup.promote()
    system.engine.run(until=0.01)
    # A message arrives at the (unprotected) new primary ...
    system.network.send(system.pub_host, system.backup.ingress_address,
                        __import__("repro.core.protocol", fromlist=["PublishBatch"])
                        .PublishBatch("p", [msg(0, 1, system.engine.now)]))
    system.engine.run(until=0.02)
    assert system.backup.stats.replicated == 0
    # ... then a new Backup attaches and the in-flight message is resynced.
    third = make_third_broker(system)
    system.backup.attach_peer("B3", resync=True)
    system.engine.run(until=0.3)
    assert third.backup_buffer.get(0, 1) is not None


def test_attach_peer_requires_primary_role():
    system = build_mini([topic(topic_id=0)])
    with pytest.raises(RuntimeError, match="only a Primary"):
        system.backup.attach_peer("B3")


# ----------------------------------------------------------------------
# Multi-subscriber fan-out
# ----------------------------------------------------------------------
def test_one_dispatch_job_reaches_all_subscribers():
    """Paper Sec. IV-A: one dispatching job per arrival; the Dispatcher
    pushes the message to each subscriber of the topic."""
    from repro.actors.subscriber import Subscriber

    system = build_mini([topic(topic_id=0)])
    second_host = Host(system.engine, "sub2")
    system.network.connect(system.primary_host, second_host, ms(0.25))
    system.network.connect(system.backup_host, second_host, ms(0.25))
    second = Subscriber(system.engine, second_host, system.network, name="sub2")
    system.config.subscriptions[0] = ("sub/sub", "sub2/sub")
    system.publish([msg(0, 1, 0.0)])
    system.engine.run(until=0.1)
    assert system.delivered_seqs(0) == {1}
    assert second.stats.delivered_seqs(0) == {1}
    assert system.primary.stats.dispatched == 1   # one job, two pushes


def test_merged_requirement_takes_tightest():
    spec = TopicSpec(topic_id=0, period=ms(100), deadline=ms(500),
                     loss_tolerance=LOSS_UNBOUNDED, retention=1,
                     destination=EDGE, category=2)
    merged = merged_requirement(spec, [(ms(200), 3), (ms(100), 5)])
    assert merged.deadline == ms(100)
    assert merged.loss_tolerance == 3
    assert merged.topic_id == spec.topic_id


def test_merged_requirement_empty_is_identity():
    spec = topic(topic_id=0)
    assert merged_requirement(spec, []) == spec


# ----------------------------------------------------------------------
# Sec. III-D.4: rare-critical and streaming topics, end-to-end
# ----------------------------------------------------------------------
def test_rare_critical_message_delivered_in_time_without_replication():
    """Di < Ti (emergency notification): a single sporadic message amid a
    periodic background load is dispatched within its tight deadline, with
    no replication jobs created for it."""
    critical = TopicSpec(topic_id=0, period=1e6, deadline=ms(30),
                         loss_tolerance=0, retention=1, destination=EDGE,
                         category=0)
    background = topic(topic_id=1, loss=3, retention=0, category=3)
    system = build_mini([critical, background], with_publisher=False)
    # Periodic background traffic.
    for index in range(10):
        system.engine.call_after(index * ms(100), system.publish,
                                 [msg(1, index + 1, index * ms(100))])
    # The rare event fires at t = 0.42 s.
    system.engine.call_after(0.42, system.publish, [msg(0, 1, 0.42)])
    system.engine.run(until=1.5)
    latencies = system.latencies(0)
    assert latencies[1] <= critical.deadline
    assert system.primary.stats.replicated == 0


def test_streaming_topic_with_deadline_beyond_period():
    """Di > Ti (streaming): messages outlive their period; all are
    delivered within the long deadline and replication follows the plan."""
    streaming = TopicSpec(topic_id=0, period=ms(10), deadline=ms(60),
                          loss_tolerance=0, retention=10, destination=EDGE,
                          category=2)
    system = build_mini([streaming])
    for index in range(20):
        system.engine.call_after(index * ms(10), system.publish,
                                 [msg(0, index + 1, index * ms(10))])
    system.engine.run(until=1.0)
    latencies = system.latencies(0)
    assert set(latencies) == set(range(1, 21))
    assert all(latency <= streaming.deadline for latency in latencies.values())
