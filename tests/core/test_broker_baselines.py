"""Baseline-policy broker semantics: FCFS ordering and accounting details."""

import pytest

from repro.core.model import Message
from repro.core.policy import FCFS, FCFS_MINUS
from repro.core.protocol import Prune, PublishBatch
from repro.core.units import ms, us

from tests.helpers import TEST_COSTS, build_mini, topic


def msg(topic_id, seq, created_at):
    return Message(topic_id=topic_id, seq=seq, created_at=created_at)


def test_fcfs_replicates_before_dispatching_each_message():
    """With one worker, FCFS's job order is replicate(m) then dispatch(m):
    the replica reaches the Backup before the subscriber sees m."""
    system = build_mini([topic(topic_id=0)], policy=FCFS, delivery_workers=1)
    arrival_log = []

    original_store = system.backup.backup_buffer.store

    def logging_store(message, arrived_at):
        arrival_log.append(("replica", message.seq, system.engine.now))
        return original_store(message, arrived_at)

    system.backup.backup_buffer.store = logging_store
    original_deliver = system.subscriber._on_deliver

    def logging_deliver(deliver):
        arrival_log.append(("deliver", deliver.message.seq, system.engine.now))
        original_deliver(deliver)

    system.network.unregister("sub/sub")
    system.network.register(system.sub_host, "sub/sub", logging_deliver)

    system.publish([msg(0, 1, 0.0)])
    system.engine.run(until=0.1)
    kinds = [kind for kind, _, _ in arrival_log]
    assert kinds == ["replica", "deliver"]


def test_fcfs_processes_in_arrival_order_across_topics():
    fast = topic(topic_id=0, period=ms(50), deadline=ms(50), loss=3,
                 retention=0, category=1)
    slow = topic(topic_id=1, period=ms(500), deadline=ms(500), loss=3,
                 retention=0, category=5)
    from dataclasses import replace
    costs = replace(TEST_COSTS, dispatch=ms(1.0), replicate=us(1))
    system = build_mini([fast, slow], policy=FCFS_MINUS, costs=costs,
                        delivery_workers=1)
    # slow arrives first, then fast: FCFS must deliver slow first even
    # though fast has the tighter deadline.
    system.publish([msg(1, 1, 0.0)])
    system.engine.call_after(ms(0.1), system.publish, [msg(0, 1, 0.0)])
    order = []
    original = system.subscriber._on_deliver

    def record(deliver):
        order.append(deliver.message.topic_id)
        original(deliver)

    system.network.unregister("sub/sub")
    system.network.register(system.sub_host, "sub/sub", record)
    system.engine.run(until=0.5)
    assert order == [1, 0]


def test_proxy_charges_per_message_in_batch():
    system = build_mini([topic(topic_id=0), topic(topic_id=1, loss=3,
                                                  retention=0, category=3)])
    system.publish([msg(0, 1, 0.0), msg(1, 1, 0.0)])
    system.engine.run(until=0.1)
    assert system.primary.stats.proxy_meter.busy == pytest.approx(
        2 * TEST_COSTS.proxy_per_message)


def test_prune_for_evicted_copy_is_harmless():
    system = build_mini([topic(topic_id=0)])
    system.network.send(system.primary_host, system.backup.replica_address,
                        Prune(0, 999))
    system.engine.run(until=0.01)
    assert system.backup.stats.prunes_applied == 0


def test_unexpected_replica_path_item_raises():
    system = build_mini([topic(topic_id=0)])
    with pytest.raises(TypeError, match="unexpected replica-path item"):
        system.backup._on_replica_path("garbage")


def test_broker_rejects_unknown_role():
    from repro.core.broker import Broker

    system = build_mini([topic(topic_id=0)])
    with pytest.raises(ValueError, match="unknown role"):
        Broker(system.engine, system.sub_host, system.network, system.config,
               name="bad", role="observer")


def test_resend_to_original_primary_is_processed_like_batch():
    """A resend arriving at a live Primary (detector false positive) is
    deduplicated against in-flight entries and causes no duplicates."""
    system = build_mini([topic(topic_id=0)])
    system.publish([msg(0, 1, 0.0)])
    system.engine.run(until=0.05)
    system.network.send(system.pub_host, system.primary.ingress_address,
                        PublishBatch("p", [msg(0, 1, 0.0)], resend=True))
    system.engine.run(until=0.1)
    # Entry settled and released, so the resent copy was re-ingested and
    # dispatched again; subscriber dedup absorbed it.
    assert system.subscriber.stats.duplicates <= 1
    assert system.delivered_seqs(0) == {1}
