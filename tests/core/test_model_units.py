"""Tests for topic/message model types and unit helpers."""

import math

import pytest

from repro.core.model import CLOUD, EDGE, LOSS_UNBOUNDED, Message, TopicSpec
from repro.core.units import ms, to_ms, us


# ----------------------------------------------------------------------
# Units
# ----------------------------------------------------------------------
def test_ms_roundtrip():
    assert ms(50) == pytest.approx(0.05)
    assert to_ms(ms(50)) == pytest.approx(50)


def test_us():
    assert us(7) == pytest.approx(7e-6)


# ----------------------------------------------------------------------
# TopicSpec validation
# ----------------------------------------------------------------------
def make_spec(**overrides):
    defaults = dict(topic_id=1, period=ms(100), deadline=ms(100),
                    loss_tolerance=0, retention=1, destination=EDGE)
    defaults.update(overrides)
    return TopicSpec(**defaults)


def test_valid_spec_roundtrip():
    spec = make_spec(category=2)
    assert spec.period == ms(100)
    assert spec.category == 2
    assert not spec.best_effort


def test_best_effort_flag():
    assert make_spec(loss_tolerance=LOSS_UNBOUNDED).best_effort
    assert not make_spec(loss_tolerance=3).best_effort


def test_with_retention_returns_modified_copy():
    spec = make_spec(retention=1)
    boosted = spec.with_retention(2)
    assert boosted.retention == 2
    assert spec.retention == 1
    assert boosted.topic_id == spec.topic_id


@pytest.mark.parametrize("field,value", [
    ("period", 0.0),
    ("period", -1.0),
    ("deadline", 0.0),
    ("loss_tolerance", -1),
    ("loss_tolerance", 1.5),
    ("retention", -1),
    ("destination", "mars"),
])
def test_invalid_specs_rejected(field, value):
    with pytest.raises(ValueError):
        make_spec(**{field: value})


def test_spec_is_hashable_and_frozen():
    spec = make_spec()
    assert hash(spec) == hash(make_spec())
    with pytest.raises(AttributeError):
        spec.period = 1.0


def test_unbounded_loss_is_infinite():
    assert LOSS_UNBOUNDED == math.inf


# ----------------------------------------------------------------------
# Message
# ----------------------------------------------------------------------
def test_message_key_identity():
    a = Message(topic_id=3, seq=7, created_at=1.5)
    b = Message(topic_id=3, seq=7, created_at=2.5)
    assert a.key() == b.key() == (3, 7)


def test_message_defaults():
    message = Message(topic_id=1, seq=1, created_at=0.0)
    assert message.payload_size == 16   # the paper's payload size
    assert message.data is None


def test_destinations_are_distinct():
    assert EDGE != CLOUD
