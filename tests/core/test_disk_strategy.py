"""Tests for the local-disk loss-tolerance strategy (Table 1 extension)."""

import pytest

from repro.core.model import Message
from repro.core.policy import DISK_LOG, FRAME, policy_by_name
from repro.core.units import ms, us

from tests.helpers import TEST_COSTS, build_mini, topic


def msg(topic_id, seq, created_at):
    return Message(topic_id=topic_id, seq=seq, created_at=created_at)


def disk_costs(write=us(200)):
    from dataclasses import replace
    return replace(TEST_COSTS, disk_write=write)


def test_disk_policy_is_registered():
    assert policy_by_name("disklog") is DISK_LOG
    assert not DISK_LOG.replication_enabled
    assert DISK_LOG.disk_logging


def test_disk_policy_never_replicates():
    system = build_mini([topic(topic_id=0)], policy=DISK_LOG,
                        costs=disk_costs())
    system.publish([msg(0, 1, 0.0)])
    system.engine.run(until=0.1)
    assert system.primary.stats.replicated == 0
    assert system.backup.backup_buffer.get(0, 1) is None
    assert system.delivered_seqs(0) == {1}


def test_disk_write_precedes_dispatch_and_adds_latency():
    plain = build_mini([topic(topic_id=0)], policy=FRAME, costs=disk_costs())
    plain.publish([msg(0, 1, 0.0)])
    plain.engine.run(until=0.1)

    journaled = build_mini([topic(topic_id=0)], policy=DISK_LOG,
                           costs=disk_costs(write=us(200)))
    journaled.publish([msg(0, 1, 0.0)])
    journaled.engine.run(until=0.1)

    extra = journaled.latencies(0)[1] - plain.latencies(0)[1]
    # FRAME's path does replicate+coordinate concurrently; the disk write
    # strictly precedes dispatch so the full write shows up in latency.
    assert extra == pytest.approx(us(200), abs=us(5))
    assert journaled.primary.stats.disk_writes == 1


def test_disk_meter_accounts_occupancy_not_cpu():
    system = build_mini([topic(topic_id=0)], policy=DISK_LOG,
                        costs=disk_costs(write=us(200)))
    for seq in range(1, 6):
        system.publish([msg(0, seq, 0.0)])
    system.engine.run(until=0.5)
    assert system.primary.stats.disk_meter.busy == pytest.approx(5 * us(200))
    # The CPU meter only accumulated the dispatch work.
    assert system.primary.stats.delivery_meter.busy == pytest.approx(
        5 * TEST_COSTS.dispatch)


def test_recovery_dispatch_skips_journal():
    """Re-dispatch of recovered copies must not journal again."""
    from repro.core.scheduling import DISPATCH, Job

    system = build_mini([topic(topic_id=0)], policy=DISK_LOG,
                        costs=disk_costs())
    # Fabricate a recovery job directly against the backup broker.
    entry = system.backup.message_buffer.insert(msg(0, 1, 0.0), 0.0,
                                                wants_replication=False)
    job = Job(DISPATCH, entry, deadline=0.0, cost=TEST_COSTS.dispatch,
              recovery=True)
    system.backup.job_queue.push(job)
    system.engine.run(until=0.1)
    assert system.backup.stats.disk_writes == 0
    assert system.delivered_seqs(0) == {1}


def test_disk_data_dies_with_the_host():
    """Fail-stop without restart: the journal does not help a crash, so
    loss tolerance rests entirely on publisher retention."""
    system = build_mini([topic(topic_id=0, retention=1)], policy=DISK_LOG,
                        costs=disk_costs(), with_publisher=True,
                        with_promoter=True)
    system.engine.call_after(0.5, system.primary_host.crash)
    system.engine.run(until=1.5)
    # The backup recovered nothing from the (lost) disk...
    assert system.backup.stats.recovery_dispatch_jobs == 0
    # ...but the publisher's retained message covers the in-flight window
    # at this light load, so the requirement still holds here.
    created = len(system.publisher_stats.created[0])
    missing = set(range(1, created - 2)) - system.delivered_seqs(0)
    assert missing == set()
