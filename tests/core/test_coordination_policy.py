"""Tests for Table 3 coordination state/decisions and the config policies."""

import pytest

from repro.core.coordination import (
    MessageBuffer,
    should_abort_replication,
    should_cancel_pending_replication,
    should_request_prune,
    should_skip_at_recovery,
)
from repro.core.model import Message, TopicSpec
from repro.core.policy import (
    ALL_POLICIES,
    ARRIVAL_ORDER,
    EDF,
    FCFS,
    FCFS_MINUS,
    FRAME,
    FRAME_PLUS,
    ConfigPolicy,
    policy_by_name,
)
from repro.core.scheduling import REPLICATE, Job
from repro.core.units import ms


def make_entry(buffer=None, wants_replication=True):
    buffer = buffer if buffer is not None else MessageBuffer()
    message = Message(topic_id=1, seq=1, created_at=0.0)
    return buffer.insert(message, arrived_at=0.001, wants_replication=wants_replication)


# ----------------------------------------------------------------------
# Table 3 decision functions
# ----------------------------------------------------------------------
def test_replicate_aborts_after_dispatch_with_coordination():
    entry = make_entry()
    entry.dispatched = True
    assert should_abort_replication(entry, coordination=True)
    assert not should_abort_replication(entry, coordination=False)


def test_replicate_proceeds_before_dispatch():
    entry = make_entry()
    assert not should_abort_replication(entry, coordination=True)


def test_prune_requested_only_when_replicated():
    entry = make_entry()
    assert not should_request_prune(entry, coordination=True)
    entry.replicated = True
    assert should_request_prune(entry, coordination=True)
    assert not should_request_prune(entry, coordination=False)


def test_pending_replication_cancelled_after_dispatch():
    entry = make_entry()
    entry.replicate_job = Job(REPLICATE, entry, deadline=1.0, cost=1e-6)
    assert should_cancel_pending_replication(entry, coordination=True)
    assert not should_cancel_pending_replication(entry, coordination=False)


def test_no_cancellation_when_job_absent_or_done():
    entry = make_entry()
    entry.replicate_job = None
    assert not should_cancel_pending_replication(entry, coordination=True)
    entry.replicate_job = Job(REPLICATE, entry, deadline=1.0, cost=1e-6)
    entry.replicated = True
    assert not should_cancel_pending_replication(entry, coordination=True)
    entry.replicated = False
    entry.replicate_job.cancel()
    assert not should_cancel_pending_replication(entry, coordination=True)


def test_recovery_skips_discarded():
    assert should_skip_at_recovery(True)
    assert not should_skip_at_recovery(False)


# ----------------------------------------------------------------------
# MessageBuffer lifecycle
# ----------------------------------------------------------------------
def test_entry_not_settled_until_dispatched():
    buffer = MessageBuffer()
    entry = make_entry(buffer, wants_replication=False)
    assert not entry.settled
    assert not buffer.release_if_settled(entry)
    entry.dispatched = True
    assert entry.settled
    assert buffer.release_if_settled(entry)
    assert len(buffer) == 0


def test_entry_with_replication_settles_after_both():
    buffer = MessageBuffer()
    entry = make_entry(buffer, wants_replication=True)
    entry.replicate_job = Job(REPLICATE, entry, deadline=1.0, cost=1e-6)
    entry.dispatched = True
    assert not entry.settled            # replication still pending
    entry.replicate_job.cancel()
    assert entry.settled                # aborted replication settles it
    buffer.release_if_settled(entry)
    assert buffer.get(1, 1) is None


def test_entry_settles_via_replication_completion():
    buffer = MessageBuffer()
    entry = make_entry(buffer, wants_replication=True)
    entry.dispatched = True
    entry.replicated = True
    assert entry.settled


def test_buffer_lookup_by_key():
    buffer = MessageBuffer()
    entry = make_entry(buffer)
    assert buffer.get(1, 1) is entry
    assert buffer.get(1, 2) is None


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
def test_policy_matrix_matches_paper():
    """Sec. VI-A's four configurations."""
    assert FRAME.scheduling == EDF
    assert FRAME.selective_replication and FRAME.coordination
    assert not FRAME.replicate_before_dispatch

    assert dict(FRAME_PLUS.retention_bonus) == {2: 1, 5: 1}
    assert FRAME_PLUS.retention_bonus_of(2) == 1
    assert FRAME_PLUS.retention_bonus_of(3) == 0

    assert FCFS.scheduling == ARRIVAL_ORDER
    assert not FCFS.selective_replication
    assert FCFS.coordination
    assert FCFS.replicate_before_dispatch

    assert not FCFS_MINUS.coordination
    assert FCFS_MINUS.replicate_before_dispatch


def test_frame_plus_adjusts_only_bonused_categories():
    specs = [
        TopicSpec(topic_id=0, period=ms(100), deadline=ms(100), loss_tolerance=0,
                  retention=1, category=2),
        TopicSpec(topic_id=1, period=ms(100), deadline=ms(100), loss_tolerance=3,
                  retention=0, category=3),
        TopicSpec(topic_id=2, period=ms(500), deadline=ms(500), loss_tolerance=0,
                  retention=1, category=5),
    ]
    adjusted = FRAME_PLUS.adjust_specs(specs)
    assert [spec.retention for spec in adjusted] == [2, 0, 2]
    # FRAME leaves them untouched.
    assert [spec.retention for spec in FRAME.adjust_specs(specs)] == [1, 0, 1]


def test_policy_by_name_roundtrip():
    for policy in ALL_POLICIES:
        assert policy_by_name(policy.name) is policy
    assert policy_by_name("fcfs-") is FCFS_MINUS
    with pytest.raises(KeyError):
        policy_by_name("nonsense")


def test_unknown_scheduling_rejected():
    with pytest.raises(ValueError):
        ConfigPolicy(name="bad", scheduling="lifo")
