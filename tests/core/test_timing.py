"""Tests for the paper's timing theory (Lemmas 1-2, Proposition 1, Sec. III-D).

The headline assertions reproduce, in the paper's own numbers, the worked
example of Sec. III-D.2: the deadline ordering over the Table 2 topic set
and which categories Proposition 1 removes replication for.
"""

import math

import pytest

from repro.core.model import CLOUD, EDGE, LOSS_UNBOUNDED, TopicSpec
from repro.core.timing import (
    DeadlineParameters,
    admission_test,
    deadline_order,
    dispatch_deadline,
    min_retention,
    needs_replication,
    pseudo_dispatch_deadline,
    pseudo_replication_deadline,
    replication_deadline,
    replication_needed_inequality,
    replication_suppressible,
    replication_plan,
)
from repro.core.units import ms
from repro.workloads.spec import CATEGORIES

#: The Sec. III-D.2 example parameters (in ms here, units cancel).
PARAMS = DeadlineParameters(
    delta_pb=0.0,        # the worked example folds dPB out
    delta_bb=0.05,
    delta_bs_edge=1.0,
    delta_bs_cloud=20.0,
    failover_time=50.0,
)


def table2_topic(category: int, topic_id: int = 0) -> TopicSpec:
    """A Table 2 topic with times kept in milliseconds (units cancel)."""
    table = {
        0: (50, 50, 0, 2, EDGE),
        1: (50, 50, 3, 0, EDGE),
        2: (100, 100, 0, 1, EDGE),
        3: (100, 100, 3, 0, EDGE),
        4: (100, 100, LOSS_UNBOUNDED, 0, EDGE),
        5: (500, 500, 0, 1, CLOUD),
    }
    period, deadline, loss, retention, destination = table[category]
    return TopicSpec(topic_id=topic_id, period=period, deadline=deadline,
                     loss_tolerance=loss, retention=retention,
                     destination=destination, category=category)


# ----------------------------------------------------------------------
# Lemma formulas
# ----------------------------------------------------------------------
def test_lemma1_replication_deadline_formula():
    spec = table2_topic(2)   # Ni=1, Li=0, Ti=100
    assert replication_deadline(spec, PARAMS) == pytest.approx(
        (1 + 0) * 100 - 0.0 - 0.05 - 50
    )


def test_lemma2_dispatch_deadline_formula_edge():
    spec = table2_topic(0)   # Di=50, edge
    assert dispatch_deadline(spec, PARAMS) == pytest.approx(50 - 0.0 - 1.0)


def test_lemma2_dispatch_deadline_formula_cloud():
    spec = table2_topic(5)   # Di=500, cloud
    assert dispatch_deadline(spec, PARAMS) == pytest.approx(500 - 0.0 - 20.0)


def test_pseudo_deadlines_omit_delta_pb():
    params = DeadlineParameters(delta_pb=7.0, delta_bb=0.05,
                                delta_bs_edge=1.0, delta_bs_cloud=20.0,
                                failover_time=50.0)
    spec = table2_topic(2)
    assert (pseudo_replication_deadline(spec, params)
            - replication_deadline(spec, params)) == pytest.approx(7.0)
    assert (pseudo_dispatch_deadline(spec, params)
            - dispatch_deadline(spec, params)) == pytest.approx(7.0)


def test_best_effort_replication_deadline_is_infinite():
    spec = table2_topic(4)   # Li = inf
    assert replication_deadline(spec, PARAMS) == math.inf


# ----------------------------------------------------------------------
# The Sec. III-D.2 worked example
# ----------------------------------------------------------------------
def test_paper_deadline_ordering_example():
    """{Dd0 = Dd1 < Dr0 = Dr2 < Dd2 = Dd3 = Dd4 < Dr1 < Dr3 < Dr5 < Dd5}."""
    dd = {c: dispatch_deadline(table2_topic(c), PARAMS) for c in range(6)}
    dr = {c: replication_deadline(table2_topic(c), PARAMS) for c in range(6)}
    assert dd[0] == dd[1]
    assert dd[0] < dr[0]
    assert dr[0] == dr[2]
    assert dr[2] < dd[2]
    assert dd[2] == dd[3] == dd[4]
    assert dd[4] < dr[1]
    assert dr[1] < dr[3]
    assert dr[3] < dr[5]
    assert dr[5] < dd[5]


def test_proposition1_removes_categories_0_1_3_keeps_2_5():
    """Paper: only categories 2 and 5 need replication; 4 is best-effort."""
    needed = {c: needs_replication(table2_topic(c), PARAMS) for c in range(6)}
    assert needed == {0: False, 1: False, 2: True, 3: False, 4: False, 5: True}


def test_frame_plus_retention_increase_removes_all_replication():
    """Sec. III-D.3: Ni+1 on categories 2 and 5 removes their replication."""
    for category in (2, 5):
        boosted = table2_topic(category).with_retention(2)
        assert not needs_replication(boosted, PARAMS)


def test_replication_needed_inequality_matches_proposition():
    """The paper's x + dBB - dBS > (Ni+Li)Ti - Di form is equivalent."""
    for category in range(6):
        spec = table2_topic(category)
        assert replication_needed_inequality(spec, PARAMS) == (
            not replication_suppressible(spec, PARAMS)
        )


def test_deadline_order_lists_replication_only_when_needed():
    specs = [table2_topic(c, topic_id=c) for c in range(6)]
    order = deadline_order(specs, PARAMS)
    kinds = {(kind, topic) for kind, topic, _ in order}
    assert ("replicate", 2) in kinds
    assert ("replicate", 5) in kinds
    assert ("replicate", 0) not in kinds
    assert ("replicate", 4) not in kinds
    deadlines = [deadline for _, _, deadline in order]
    assert deadlines == sorted(deadlines)
    # First entries are the category 0/1 dispatches; last is Dd5.
    assert order[0][0] == "dispatch"
    assert order[-1] == ("dispatch", 5, pytest.approx(480.0))


def test_replication_plan_shape():
    specs = [table2_topic(c, topic_id=c) for c in range(6)]
    plan = replication_plan(specs, PARAMS)
    assert plan == {0: False, 1: False, 2: True, 3: False, 4: False, 5: True}


# ----------------------------------------------------------------------
# Admission test (Sec. III-D.1) and minimum retention (Table 2 col. 5)
# ----------------------------------------------------------------------
def test_all_table2_categories_are_admissible():
    for category in range(6):
        result = admission_test(table2_topic(category), PARAMS)
        assert result.admitted, f"category {category}: {result.reason}"


def test_zero_loss_without_retention_is_rejected():
    """Li=0 and Ni=0 cannot survive a crash right after an arrival."""
    spec = table2_topic(0).with_retention(0)
    result = admission_test(spec, PARAMS)
    assert not result.admitted
    assert "Dr" in result.reason


def test_unreachable_latency_is_rejected():
    spec = TopicSpec(topic_id=9, period=100, deadline=10, loss_tolerance=3,
                     retention=0, destination=CLOUD)
    result = admission_test(spec, PARAMS)   # dBS cloud = 20 > Di = 10
    assert not result.admitted
    assert "Dd" in result.reason


def test_min_retention_matches_table2_column5():
    """Table 2's Ni column is the minimum admissible retention."""
    expected = {0: 2, 1: 0, 2: 1, 3: 0, 4: 0, 5: 1}
    for category, minimum in expected.items():
        spec = table2_topic(category).with_retention(0)
        assert min_retention(spec, PARAMS) == minimum, f"category {category}"


def test_min_retention_raises_when_dispatch_infeasible():
    spec = TopicSpec(topic_id=9, period=100, deadline=10, loss_tolerance=0,
                     retention=0, destination=CLOUD)
    with pytest.raises(ValueError):
        min_retention(spec, PARAMS)


def test_min_retention_result_is_admissible_and_tight():
    spec = TopicSpec(topic_id=1, period=30, deadline=60, loss_tolerance=1,
                     retention=0, destination=EDGE)
    minimum = min_retention(spec, PARAMS)
    assert admission_test(spec.with_retention(minimum), PARAMS).admitted
    if minimum > 0:
        assert not admission_test(spec.with_retention(minimum - 1), PARAMS).admitted


# ----------------------------------------------------------------------
# Sec. III-D.4: Di != Ti cases
# ----------------------------------------------------------------------
def test_rare_critical_message_needs_no_replication():
    """Di < Ti (emergency notification): Ti ~ inf, Li = 0, Ni > 0 admits and
    Proposition 1 suppresses replication as long as delivery is timely."""
    spec = TopicSpec(topic_id=1, period=1e9, deadline=30, loss_tolerance=0,
                     retention=1, destination=EDGE)
    assert admission_test(spec, PARAMS).admitted
    assert not needs_replication(spec, PARAMS)


def test_streaming_message_likely_needs_replication():
    """Di > Ti (multimedia streaming): Equation (3) suggests a likely need
    for replication; a large dBS (travel time consuming the deadline
    budget) shrinks Dd and restores suppressibility."""
    spec = TopicSpec(topic_id=1, period=10, deadline=60, loss_tolerance=0,
                     retention=10, destination=EDGE)
    # Dd = 59 > Dr = 49.95 with dBS = 1: replication needed.
    assert needs_replication(spec, PARAMS)
    long_travel = DeadlineParameters(delta_pb=0.0, delta_bb=0.05,
                                     delta_bs_edge=59.0, delta_bs_cloud=59.0,
                                     failover_time=50.0)
    assert not needs_replication(spec, long_travel)


def test_workload_categories_match_table2_units():
    """The workload generator's categories are Table 2 in seconds."""
    params = DeadlineParameters(
        delta_pb=0.0, delta_bb=ms(0.05), delta_bs_edge=ms(1.0),
        delta_bs_cloud=ms(20.0), failover_time=ms(50.0),
    )
    needed = {
        c: needs_replication(CATEGORIES[c].make_topic(c), params)
        for c in range(6)
    }
    assert needed == {0: False, 1: False, 2: True, 3: False, 4: False, 5: True}
