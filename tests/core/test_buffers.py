"""Tests for the Retention/Message/Backup buffers."""

import pytest

from repro.core.buffers import BackupBuffer, RingBuffer
from repro.core.model import Message


def msg(topic, seq):
    return Message(topic_id=topic, seq=seq, created_at=float(seq))


# ----------------------------------------------------------------------
# RingBuffer (publisher Retention Buffer)
# ----------------------------------------------------------------------
def test_ring_keeps_last_capacity_items():
    ring = RingBuffer(capacity=3)
    for seq in range(1, 6):
        ring.append(msg(0, seq))
    assert [m.seq for m in ring.snapshot()] == [3, 4, 5]


def test_ring_capacity_zero_retains_nothing():
    ring = RingBuffer(capacity=0)
    ring.append(msg(0, 1))
    assert ring.snapshot() == []
    assert len(ring) == 0


def test_ring_orders_oldest_first():
    ring = RingBuffer(capacity=2)
    ring.append(msg(0, 1))
    ring.append(msg(0, 2))
    assert [m.seq for m in ring] == [1, 2]


def test_ring_negative_capacity_rejected():
    with pytest.raises(ValueError):
        RingBuffer(capacity=-1)


def test_ring_partial_fill():
    ring = RingBuffer(capacity=5)
    ring.append(msg(0, 1))
    assert len(ring) == 1
    assert [m.seq for m in ring.snapshot()] == [1]


# ----------------------------------------------------------------------
# BackupBuffer
# ----------------------------------------------------------------------
def test_backup_store_and_get():
    buffer = BackupBuffer(capacity_per_topic=10)
    entry = buffer.store(msg(1, 1), arrived_at=0.5)
    assert not entry.discard
    assert buffer.get(1, 1) is entry
    assert buffer.get(1, 2) is None
    assert buffer.get(2, 1) is None


def test_backup_ring_evicts_oldest_per_topic():
    buffer = BackupBuffer(capacity_per_topic=3)
    for seq in range(1, 6):
        buffer.store(msg(1, seq), arrived_at=float(seq))
    seqs = [entry.message.seq for entry in buffer.entries(1)]
    assert seqs == [3, 4, 5]
    assert buffer.get(1, 1) is None


def test_backup_topics_have_independent_rings():
    buffer = BackupBuffer(capacity_per_topic=2)
    buffer.store(msg(1, 1), 0.0)
    buffer.store(msg(2, 1), 0.0)
    buffer.store(msg(1, 2), 0.0)
    buffer.store(msg(1, 3), 0.0)
    assert [e.message.seq for e in buffer.entries(1)] == [2, 3]
    assert [e.message.seq for e in buffer.entries(2)] == [1]


def test_backup_prune_sets_discard():
    buffer = BackupBuffer(capacity_per_topic=10)
    buffer.store(msg(1, 1), 0.0)
    assert buffer.prune(1, 1)
    assert buffer.get(1, 1).discard
    # Pruned entries stay in the ring (skipped at recovery, Table 3).
    assert buffer.total_count() == 1
    assert buffer.live_count() == 0


def test_backup_prune_absent_copy_is_noop():
    buffer = BackupBuffer(capacity_per_topic=10)
    assert not buffer.prune(1, 99)
    buffer.store(msg(1, 1), 0.0)
    assert not buffer.prune(1, 99)


def test_backup_duplicate_replica_refreshes_arrival():
    buffer = BackupBuffer(capacity_per_topic=10)
    first = buffer.store(msg(1, 1), arrived_at=1.0)
    second = buffer.store(msg(1, 1), arrived_at=2.0)
    assert first is second
    assert second.arrived_at == 2.0
    assert buffer.total_count() == 1


def test_backup_all_entries_iterates_by_topic_then_age():
    buffer = BackupBuffer(capacity_per_topic=10)
    buffer.store(msg(2, 1), 0.0)
    buffer.store(msg(1, 1), 0.0)
    buffer.store(msg(1, 2), 0.0)
    keys = [(e.message.topic_id, e.message.seq) for e in buffer.all_entries()]
    assert keys == [(1, 1), (1, 2), (2, 1)]


def test_backup_live_count_reflects_pruning():
    buffer = BackupBuffer(capacity_per_topic=10)
    for seq in range(1, 5):
        buffer.store(msg(1, seq), 0.0)
    buffer.prune(1, 2)
    buffer.prune(1, 3)
    assert buffer.live_count() == 2


def test_backup_zero_capacity_rejected():
    with pytest.raises(ValueError):
        BackupBuffer(capacity_per_topic=0)
