"""Tests for jobs and the EDF Job Queue."""

import pytest

from repro.core.scheduling import DISPATCH, REPLICATE, EDFJobQueue, Job
from repro.sim import Engine


def job(deadline, kind=DISPATCH):
    return Job(kind, entry=None, deadline=deadline, cost=1e-6)


def collect(engine, queue, count):
    got = []

    def consumer():
        for _ in range(count):
            got.append((yield queue.pop()))

    engine.spawn(consumer())
    engine.run()
    return got


def test_pop_is_edf_ordered():
    engine = Engine()
    queue = EDFJobQueue(engine)
    jobs = [job(3.0), job(1.0), job(2.0)]
    for item in jobs:
        queue.push(item)
    got = collect(engine, queue, 3)
    assert [item.deadline for item in got] == [1.0, 2.0, 3.0]


def test_equal_deadlines_pop_in_push_order():
    """FCFS degeneration: equal deadlines preserve arrival order."""
    engine = Engine()
    queue = EDFJobQueue(engine)
    first = job(5.0, REPLICATE)
    second = job(5.0, DISPATCH)
    queue.push(first)
    queue.push(second)
    got = collect(engine, queue, 2)
    assert got == [first, second]


def test_pop_blocks_until_push():
    engine = Engine()
    queue = EDFJobQueue(engine)
    got = []

    def consumer():
        got.append((yield queue.pop()))

    engine.spawn(consumer())
    item = job(1.0)
    engine.call_after(2.0, queue.push, item)
    engine.run()
    assert got == [item]
    assert engine.now == 2.0


def test_cancelled_jobs_are_skipped():
    engine = Engine()
    queue = EDFJobQueue(engine)
    doomed = job(1.0)
    kept = job(2.0)
    queue.push(doomed)
    queue.push(kept)
    queue.cancel(doomed)
    got = collect(engine, queue, 1)
    assert got == [kept]


def test_len_excludes_cancelled():
    engine = Engine()
    queue = EDFJobQueue(engine)
    a, b = job(1.0), job(2.0)
    queue.push(a)
    queue.push(b)
    assert len(queue) == 2
    queue.cancel(a)
    assert len(queue) == 1
    assert not queue.drained()


def test_cancel_is_idempotent_for_len():
    engine = Engine()
    queue = EDFJobQueue(engine)
    a = job(1.0)
    queue.push(a)
    queue.cancel(a)
    queue.cancel(a)
    assert len(queue) == 0
    assert queue.drained()


def test_push_of_cancelled_job_is_dropped():
    engine = Engine()
    queue = EDFJobQueue(engine)
    a = job(1.0)
    a.cancel()
    queue.push(a)
    assert len(queue) == 0


def test_push_hands_job_directly_to_waiting_worker():
    """Two waiting workers: jobs go to them in wait order."""
    engine = Engine()
    queue = EDFJobQueue(engine)
    got = []

    def worker(tag):
        got.append((tag, (yield queue.pop())))

    engine.spawn(worker("w0"))
    engine.spawn(worker("w1"))
    a, b = job(2.0), job(1.0)
    engine.call_after(1.0, queue.push, a)
    engine.call_after(1.0, queue.push, b)
    engine.run()
    # Direct handoff bypasses EDF ordering only when the queue is empty
    # and a worker is already waiting - both jobs start immediately.
    assert {tag for tag, _ in got} == {"w0", "w1"}
    assert {item for _, item in got} == {a, b}


def test_job_repr_and_recovery_flag():
    recovery_job = Job(DISPATCH, entry=None, deadline=1.0, cost=1e-6, recovery=True)
    assert recovery_job.recovery
    assert "dispatch" in repr(recovery_job)
