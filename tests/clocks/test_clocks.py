"""Tests for drifting clocks and the PTP/NTP-style sync services."""

import pytest

from repro.clocks import NTP_CLOUD, PTP_EDGE, ClockSyncService, SyncProfile, attach_clock
from repro.clocks.clock import Clock
from repro.core.units import ms
from repro.sim import Engine, Host


def test_clock_without_offset_tracks_engine():
    engine = Engine()
    clock = Clock(engine)
    engine.call_after(5.0, lambda: None)
    engine.run()
    assert clock.now() == 5.0
    assert clock.error() == 0.0


def test_clock_offset_shifts_reading():
    engine = Engine()
    clock = Clock(engine, offset=0.25)
    assert clock.now() == 0.25
    assert clock.error() == 0.25


def test_clock_drift_accumulates():
    engine = Engine()
    clock = Clock(engine, drift_ppm=100.0)   # 100 us per second
    engine.run(until=10.0)
    assert clock.error() == pytest.approx(1e-3)


def test_step_correction_resets_drift_reference():
    engine = Engine()
    clock = Clock(engine, offset=0.5, drift_ppm=100.0)
    engine.run(until=10.0)
    clock.step_to_error(1e-5)
    assert clock.error() == pytest.approx(1e-5)
    engine.call_after(10.0, lambda: None)
    engine.run()
    # Drift resumes from the correction point.
    assert clock.error() == pytest.approx(1e-5 + 1e-3, rel=1e-6)


def test_attach_clock_binds_host_now():
    engine = Engine()
    host = Host(engine, "h")
    attach_clock(host, offset=0.1)
    assert host.now() == pytest.approx(0.1)


def test_sync_service_bounds_follower_error():
    engine = Engine(seed=3)
    master = Host(engine, "master")
    follower = Host(engine, "follower")
    attach_clock(master)
    attach_clock(follower, offset=0.5, drift_ppm=50.0)
    ClockSyncService(engine, master, [follower], PTP_EDGE)
    engine.run(until=30.0)
    # Residual after last correction plus <=1 s of 50 ppm drift.
    assert abs(follower.clock.error()) <= PTP_EDGE.error_bound + 60e-6


def test_sync_tracks_master_drift():
    engine = Engine(seed=3)
    master = Host(engine, "master")
    follower = Host(engine, "follower")
    attach_clock(master, drift_ppm=200.0)
    attach_clock(follower)
    ClockSyncService(engine, master, [follower], PTP_EDGE)
    engine.run(until=30.0)
    # Follower converges to the master's (drifting) time, not true time.
    assert abs(follower.clock.now() - master.clock.now()) <= (
        PTP_EDGE.error_bound + 250e-6
    )


def test_sync_stops_when_master_dies():
    engine = Engine(seed=3)
    master = Host(engine, "master")
    follower = Host(engine, "follower")
    attach_clock(master)
    attach_clock(follower, drift_ppm=100.0)
    service = ClockSyncService(engine, master, [follower], PTP_EDGE)
    engine.call_at(5.5, master.crash)
    engine.run(until=20.0)
    assert not service.process.alive
    # Free-running drift after the last correction near t=5.
    assert abs(follower.clock.error()) > PTP_EDGE.error_bound


def test_dead_follower_is_skipped():
    engine = Engine(seed=3)
    master = Host(engine, "master")
    follower = Host(engine, "follower")
    attach_clock(master)
    attach_clock(follower, offset=1.0)
    follower.crash()
    ClockSyncService(engine, master, [follower], PTP_EDGE)
    engine.run(until=3.0)
    assert follower.clock.error() == pytest.approx(1.0)


def test_sync_requires_clocks():
    engine = Engine()
    master = Host(engine, "master")
    follower = Host(engine, "follower")
    attach_clock(master)
    with pytest.raises(ValueError, match="no clock"):
        ClockSyncService(engine, master, [follower], PTP_EDGE)


def test_profiles_match_paper_setup():
    assert PTP_EDGE.error_bound == pytest.approx(ms(0.05))   # "within 0.05 ms"
    assert NTP_CLOUD.error_bound >= ms(1.0)                   # "in milliseconds"


def test_profile_validation():
    with pytest.raises(ValueError):
        SyncProfile(name="bad", interval=0.0, error_bound=1e-3)
    with pytest.raises(ValueError):
        SyncProfile(name="bad", interval=1.0, error_bound=-1e-3)
