"""Shim so that legacy editable installs work in offline environments
(no ``wheel`` package available, so PEP 517 editable builds fail)."""

from setuptools import setup

setup()
