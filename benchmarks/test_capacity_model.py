"""Benchmark: the closed-form capacity model vs the measured simulator.

Emits a predicted-vs-measured utilization grid across policies and
workloads.  Measured cells come from the same cached fault-free runs as
Table 5 / Fig 7; predictions use the noise-free cost model, so measured
values may exceed predictions by up to the background-load band (≤ 7 %).
"""

from dataclasses import replace

from conftest import JOBS, SCALE, SEEDS

from repro.analysis import predict_utilization
from repro.core.config import CostModel
from repro.core.policy import ALL_POLICIES
from repro.experiments.cells import run_cell
from repro.experiments.parallel import run_cells
from repro.experiments.runner import ExperimentSettings
from repro.metrics.report import format_table
from repro.metrics.stats import mean_confidence_interval
from repro.workloads.spec import build_workload

WORKLOADS = (4525, 7525, 10525)
MODULES = ("primary_proxy", "primary_delivery", "backup_proxy")


def test_capacity_model_validation(benchmark, emit):
    base = ExperimentSettings(scale=SCALE, crash_at=None)

    def sweep():
        run_cells([replace(base, policy=policy, paper_total=workload, seed=seed)
                   for workload in WORKLOADS
                   for policy in ALL_POLICIES
                   for seed in SEEDS], jobs=JOBS)
        rows = []
        worst_gap = 0.0
        for workload in WORKLOADS:
            specs = build_workload(workload, scale=SCALE).specs
            for policy in ALL_POLICIES:
                plan = predict_utilization(
                    specs, policy, base.deadline_parameters(),
                    CostModel.calibrated(SCALE))
                measured = {key: [] for key in MODULES}
                for seed in SEEDS:
                    cell = run_cell(replace(base, policy=policy,
                                            paper_total=workload, seed=seed))
                    for key in MODULES:
                        measured[key].append(cell.utilizations[key])
                for key in MODULES:
                    predicted = plan.module(key).utilization
                    mean, _ = mean_confidence_interval(measured[key])
                    gap = mean - predicted
                    if predicted < 0.97:   # saturated cells clamp; skip gap
                        worst_gap = max(worst_gap, abs(gap) - 0.08 * predicted)
                    rows.append([str(workload), policy.name, key,
                                 f"{100 * predicted:.1f}", f"{100 * mean:.1f}",
                                 f"{100 * gap:+.1f}"])
        return rows, worst_gap

    rows, worst_gap = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("capacity_model_validation", format_table(
        "Capacity model validation: predicted vs measured utilization (%)",
        ["workload", "policy", "module", "predicted", "measured", "gap"],
        rows))
    # Unsaturated cells must sit within prediction + background band +2pp.
    assert worst_gap <= 0.02, f"model error beyond tolerance: {worst_gap:.3f}"
