"""Benchmark: the Sec. VI-E lesson ablations.

1. Replication removal (Proposition 1) lowers CPU utilization.
2. Pruning trades fault-free overhead for recovery latency.
3. Removal + pruning (FRAME) wins on both sides vs FCFS−.
4. Retention +1 (FRAME+) removes replication and cuts Backup load.
"""

from conftest import SCALE

from repro.experiments import ablations


def test_lesson1_replication_removal(benchmark, emit):
    result = benchmark.pedantic(
        lambda: ablations.lesson1_replication_removal(scale=SCALE, seeds=range(2)),
        rounds=1, iterations=1)
    emit("ablation_lesson1", result.render())
    frame = result.metrics["FRAME"]
    no_selective = result.metrics["FRAME-noSR"]
    fcfs = result.metrics["FCFS"]
    # Replication removal vs the undifferentiated baseline: FCFS saturates
    # its delivery cores at 7525 topics while FRAME runs far below.
    assert fcfs["delivery_util"] >= 0.99
    assert frame["delivery_util"] <= 0.70 * fcfs["delivery_util"]
    assert frame["latency_success_%"] >= 99.0
    # Emergent result worth pinning: under EDF + coordination, disabling
    # Proposition 1 barely raises CPU - Table 3's "a dispatched message no
    # longer needs to be replicated" cancels most replications dynamically.
    # Proposition 1's static removal still avoids the queue churn, and is
    # what makes FRAME's guarantee *analyzable* rather than emergent.
    assert frame["delivery_util"] <= no_selective["delivery_util"] + 0.02


def test_lesson2_pruning_tradeoff(benchmark, emit):
    result = benchmark.pedantic(
        lambda: ablations.lesson2_pruning_tradeoff(scale=SCALE, seeds=range(2)),
        rounds=1, iterations=1)
    emit("ablation_lesson2", result.render())
    fcfs = result.metrics["FCFS"]
    fcfs_minus = result.metrics["FCFS-"]
    # Coordination overhead: FCFS burns more delivery CPU than FCFS-.
    assert fcfs["delivery_util"] > fcfs_minus["delivery_util"]
    # ... and without pruning, recovery has to clear the full buffer.
    assert fcfs_minus["recovery_jobs"] > 10 * max(fcfs["recovery_jobs"], 1)


def test_lesson3_combined(benchmark, emit):
    result = benchmark.pedantic(
        lambda: ablations.lesson3_combined(scale=SCALE, seeds=range(2)),
        rounds=1, iterations=1)
    emit("ablation_lesson3", result.render())
    frame = result.metrics["FRAME"]
    fcfs_minus = result.metrics["FCFS-"]
    # FRAME recovers with a far smaller spike (pruned Backup Buffer) while
    # matching FCFS-'s fault-free success; its delivery load is in the same
    # band (coordination costs what blanket replication saves at this
    # workload - the decisive CPU gap is against FCFS, see lesson 1).
    assert frame["peak_latency_after_crash_ms"] < (
        0.5 * fcfs_minus["peak_latency_after_crash_ms"])
    assert frame["recovery_jobs"] < fcfs_minus["recovery_jobs"] / 10
    assert frame["loss_success_%"] >= 99.0
    assert frame["latency_success_%"] >= 99.0
    assert abs(frame["delivery_util"] - fcfs_minus["delivery_util"]) < 0.15


def test_lesson4_retention(benchmark, emit):
    result = benchmark.pedantic(
        lambda: ablations.lesson4_retention(scale=SCALE, seeds=range(2)),
        rounds=1, iterations=1)
    emit("ablation_lesson4", result.render())
    frame = result.metrics["FRAME"]
    frame_plus = result.metrics["FRAME+"]
    # One more retained message removes replication: the Backup goes idle
    # and the Primary's delivery load drops markedly at 13525 topics.
    assert frame_plus["backup_proxy_util"] < 0.05
    assert frame["backup_proxy_util"] > 0.2
    assert frame_plus["delivery_util"] < 0.75 * frame["delivery_util"]
    assert frame_plus["latency_success_%"] >= frame["latency_success_%"]


def test_table1_strategies(benchmark, emit):
    """The Table 1 strategy comparison, incl. the local-disk strategy the
    paper declined to measure: validate that it 'performs relatively
    slowly' — its delivery workers saturate on journal writes at a
    workload FRAME handles comfortably."""
    results = benchmark.pedantic(
        lambda: ablations.table1_strategies(scale=SCALE, seeds=range(2)),
        rounds=1, iterations=1)
    for result in results:
        emit(f"ablation_table1_{result.workload}", result.render())
    by_workload = {result.workload: result.metrics for result in results}
    # At 7525 all three strategies still meet latency requirements.
    for policy in ("FRAME+", "FRAME", "DiskLog"):
        assert by_workload[7525][policy]["latency_success_%"] >= 99.0
    # At 10525 the disk strategy's ceiling is exceeded while FRAME holds.
    assert by_workload[10525]["FRAME"]["latency_success_%"] >= 99.0
    assert by_workload[10525]["DiskLog"]["latency_success_%"] <= 50.0
    # And the disk strategy never touches the Backup.
    for workload in (7525, 10525):
        assert by_workload[workload]["DiskLog"]["backup_proxy_util"] == 0.0


def test_retention_sweep(benchmark, emit):
    result = benchmark.pedantic(ablations.retention_sweep, rounds=1, iterations=1)
    emit("ablation_retention_sweep", result.render())
    assert result.replicated_categories[0] == (2, 5)
    assert result.replicated_categories[1] == ()
