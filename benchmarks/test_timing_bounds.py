"""Benchmark: the Sec. III-D worked example (Table 2 deadline ordering).

Regenerates the paper's deadline ordering and replication plan for the
Table 2 topic set and renders them; also measures the (trivial) cost of
the admission analysis over a large topic set, since FRAME performs it at
initialization time.
"""

from conftest import SCALE

from repro.core.timing import admission_test, deadline_order, replication_plan
from repro.core.units import to_ms
from repro.experiments.runner import ExperimentSettings
from repro.metrics.report import format_table
from repro.workloads.spec import CATEGORIES, build_workload


def test_deadline_ordering_table(benchmark, emit):
    params = ExperimentSettings().deadline_parameters()
    specs = [CATEGORIES[c].make_topic(c) for c in range(6)]

    order = benchmark(lambda: deadline_order(specs, params))

    rows = [[kind, str(topic), f"{to_ms(deadline):.2f}"]
            for kind, topic, deadline in order]
    emit("deadline_order", format_table(
        "Sec. III-D.2: deadline ordering over the Table 2 topic set (ms)",
        ["job kind", "category", "relative deadline"], rows))

    kinds = [(kind, topic) for kind, topic, _ in order]
    # {Dd0=Dd1 < Dr0? no - only needed replications appear: Dr2 ... }
    assert kinds[0] == ("dispatch", 0)
    assert kinds[1] == ("dispatch", 1)
    assert kinds[2] == ("replicate", 2)
    assert kinds[-1] == ("dispatch", 5)
    assert ("replicate", 5) in kinds
    assert ("replicate", 0) not in kinds


def test_admission_analysis_scales(benchmark):
    """Admission + replication planning over a full 13525-topic set."""
    params = ExperimentSettings().deadline_parameters()
    workload = build_workload(13525, scale=1.0)

    def analyze():
        plan = replication_plan(workload.specs, params)
        admitted = sum(admission_test(spec, params).admitted
                       for spec in workload.specs)
        return plan, admitted

    plan, admitted = benchmark(analyze)
    assert admitted == workload.topic_count
    replicated = sum(plan.values())
    # Only categories 2 and 5 replicate: (13500/3) + 5 topics.
    assert replicated == len(workload.specs_of_category(2)) + 5
