"""Benchmark: regenerate Table 5 (latency success rates, fault-free runs).

Paper shape being reproduced:

* everything is ~100 % at 4525 topics;
* FCFS collapses (≈0 %) from 7525 topics on — the overloaded Primary
  delays nearly every message past its deadline;
* FRAME/FRAME+/FCFS− keep ~100 % through 10525 topics;
* at 13525 topics FRAME drops to the mid-80s (bimodal near-knee runs),
  FRAME+ and FCFS− stay in the high 90s.
"""

from conftest import SCALE, SEEDS

from repro.experiments.cells import TABLE_ROWS
from repro.experiments.tables import table5

INF = float("inf")


def test_table5(benchmark, emit):
    result = benchmark.pedantic(
        lambda: table5(seeds=SEEDS, scale=SCALE), rounds=1, iterations=1)
    emit("table5", result.render())

    def cell(workload, row, policy):
        return result.cell(workload, row, policy).mean

    # All fine at 4525 for every policy.
    for row in TABLE_ROWS:
        for policy in ("FRAME+", "FRAME", "FCFS", "FCFS-"):
            assert cell(4525, row, policy) >= 99.0
    # FCFS collapse from 7525 on.
    for workload in (7525, 10525, 13525):
        for row in TABLE_ROWS:
            assert cell(workload, row, "FCFS") <= 30.0
    # The others hold through 10525.
    for workload in (7525, 10525):
        for row in TABLE_ROWS:
            for policy in ("FRAME+", "FRAME", "FCFS-"):
                assert cell(workload, row, policy) >= 99.0
    # 13525: FRAME+ and FCFS- degrade mildly at most; FRAME visibly.
    for row in TABLE_ROWS:
        assert cell(13525, row, "FRAME+") >= 90.0
        assert cell(13525, row, "FCFS-") >= 90.0
    frame_mean = sum(cell(13525, row, "FRAME") for row in TABLE_ROWS) / len(TABLE_ROWS)
    assert 40.0 <= frame_mean <= 99.5, "FRAME should sit between collapse and perfect"
