"""Benchmark: regenerate Fig. 9 (end-to-end latency around fault recovery).

Paper shape being reproduced, at 7525 topics with a mid-run crash:

* **FRAME** — the Backup Buffer is fully pruned at the crash instant, so
  recovery work is minimal: category-0 peak latency stays below its 50 ms
  deadline region (paper: below 50 ms), no losses;
* **FRAME+** — no replication at all; the one in-flight message per
  retained topic is recovered via publisher resend; latency slightly
  above FRAME's (the Backup processes one extra copy per topic);
* **FCFS** — overloaded before the crash: large latencies and real
  message losses (paper: 206/103/20 losses for cats 0/2/5);
* **FCFS−** — no coordination, so recovery must clear a *full* Backup
  Buffer: a large latency spike (paper: >500 ms, ~10x FRAME's peak) but
  no real losses.
"""

from conftest import SCALE

from repro.core.units import ms
from repro.experiments.figures import fig9


def test_fig9(benchmark, emit):
    result = benchmark.pedantic(
        lambda: fig9(paper_total=7525, scale=SCALE, seed=3),
        rounds=1, iterations=1)
    charts = "\n\n".join(
        result.render_chart(policy, 2)
        for policy in ("FRAME", "FCFS-"))
    emit("fig9", result.render() + "\n\n" + charts)

    frame0 = result.trace("FRAME", 0)
    frame_plus0 = result.trace("FRAME+", 0)
    fcfs0 = result.trace("FCFS", 0)
    fcfs_minus2 = result.trace("FCFS-", 2)
    frame2 = result.trace("FRAME", 2)

    # FRAME: no losses, peak stays within the 50 ms deadline region.
    assert frame0.total_losses == 0
    assert frame0.peak_latency_after <= ms(50)
    # FRAME+: no losses either (publisher resend covers the gap).
    assert frame_plus0.total_losses == 0
    # FCFS loses messages outright at the crash.
    assert fcfs0.total_losses > 0
    assert fcfs0.max_consecutive_losses > 0
    # FCFS-: no real losses, but a recovery spike roughly an order of
    # magnitude above FRAME's peak (paper: >500 ms vs <50 ms).
    assert fcfs_minus2.total_losses == 0
    assert fcfs_minus2.peak_latency_after >= 5 * frame2.peak_latency_after
    assert fcfs_minus2.peak_latency_after >= ms(200)
    # The series are real (messages flowed before and after the crash).
    for policy in result.policies:
        for category in result.categories:
            assert result.trace(policy, category).delivered > 10
