"""Benchmark: regenerate Fig. 7 (per-module CPU utilization).

Paper shape being reproduced:

* (a) Message Delivery on the Primary: FCFS highest (saturating from 7525
  topics), FRAME well below it (selective replication saves the
  replication + coordination work of categories 0/1/3), FRAME+ lowest
  (no replication at all);
* (b) Message Proxy on the Primary: grows with the arrival rate and is
  nearly policy-independent;
* (c) Message Proxy on the Backup: tracks replication traffic — zero for
  FRAME+, small for FRAME (categories 2 and 5 only), large for FCFS
  (replicas + prune directives) and FCFS− (replicas only).

These cells are fault-free runs shared with Table 5 via the cell cache.
"""

from conftest import SCALE, SEEDS

from repro.experiments.figures import fig7


def test_fig7(benchmark, emit):
    result = benchmark.pedantic(
        lambda: fig7(seeds=SEEDS, scale=SCALE), rounds=1, iterations=1)
    emit("fig7", result.render())

    delivery = lambda w, p: result.value("primary_delivery", w, p)
    proxy = lambda w, p: result.value("primary_proxy", w, p)
    backup = lambda w, p: result.value("backup_proxy", w, p)

    for workload in (4525, 7525):
        # (a) ordering: FRAME+ < FRAME < FCFS; FCFS- below FCFS.
        assert delivery(workload, "FRAME+") < delivery(workload, "FRAME")
        assert delivery(workload, "FRAME") < delivery(workload, "FCFS")
        assert delivery(workload, "FCFS-") < delivery(workload, "FCFS")
    # FCFS saturates its two delivery cores from 7525 topics on.
    assert delivery(7525, "FCFS") >= 0.99
    assert delivery(4525, "FCFS") < 0.9
    # FRAME saves a large fraction of FCFS's delivery usage at 7525.
    assert delivery(7525, "FRAME") <= 0.70 * delivery(7525, "FCFS")

    # (b) proxy utilization grows with workload, roughly policy-independent.
    for policy in ("FRAME", "FCFS-"):
        assert proxy(1525, policy) < proxy(7525, policy) < proxy(13525, policy)
    assert abs(proxy(7525, "FRAME") - proxy(7525, "FRAME+")) < 0.05

    # (c) backup proxy tracks replication traffic.
    for workload in (4525, 7525):
        assert backup(workload, "FRAME+") == 0.0
        assert backup(workload, "FRAME") < backup(workload, "FCFS-")
        assert backup(workload, "FCFS-") < backup(workload, "FCFS")
