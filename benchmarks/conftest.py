"""Shared benchmark configuration.

Benchmarks that regenerate paper tables run whole simulation sweeps, so
they use ``benchmark.pedantic(..., rounds=1)``; cells are cached across
benchmark modules (see :mod:`repro.experiments.cells`), letting Fig. 7
reuse Table 5's fault-free runs the way the paper's own evaluation did.
Summaries also persist across *runs* under ``benchmarks/.cellcache/``
(:mod:`repro.experiments.cellcache`): rerunning an identical sweep skips
simulation entirely, and any change to the ``repro`` sources invalidates
the cache automatically.  ``REPRO_JOBS=N`` (or ``0`` for all CPUs) fans
the sweeps out over worker processes with bit-identical results.

Rendered tables are written to ``benchmarks/output/`` and echoed to stdout
(run with ``-s`` to see them live).
"""

import os

import pytest

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")

#: Seeds per cell for the table sweeps (the paper uses 10; 3 keeps the
#: default benchmark run under ~15 minutes cold).  Override with REPRO_SEEDS.
SEEDS = range(int(os.environ.get("REPRO_SEEDS", "3")))

#: Workload scale factor (1.0 = paper scale).  Override with REPRO_SCALE.
SCALE = float(os.environ.get("REPRO_SCALE", "0.1"))

#: Worker processes per sweep, resolved from REPRO_JOBS (see
#: repro.experiments.parallel.resolve_jobs).  The table/figure helpers
#: consult the same default internally; this constant is for benchmarks
#: that build sweeps by hand.
from repro.experiments.parallel import resolve_jobs

JOBS = resolve_jobs(None)


@pytest.fixture(scope="session")
def output_dir():
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def emit(output_dir):
    """Print a rendered artifact and persist it under benchmarks/output/."""

    def _emit(name: str, text: str) -> None:
        print("\n" + text)
        path = os.path.join(output_dir, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")

    return _emit
