"""Benchmark: simulator scalability (wall time per simulated second).

Not a paper figure — an engineering benchmark that tracks how expensive
one simulated second of each workload is, so performance regressions in
the hot path (engine, EDF queue, broker loops) are caught.
"""

import time

from conftest import SCALE

from repro.experiments.runner import ExperimentSettings, run_experiment
from repro.metrics.report import format_table


def _measure(paper_total: int) -> float:
    settings = ExperimentSettings(paper_total=paper_total, scale=SCALE, seed=0,
                                  warmup=0.5, measure=2.0, grace=0.25)
    start = time.perf_counter()
    result = run_experiment(settings)
    wall = time.perf_counter() - start
    assert result.primary_broker.stats.dispatched > 0
    return wall / 2.5   # wall seconds per simulated second


def test_wall_time_per_simulated_second(benchmark, emit):
    workloads = (1525, 7525, 13525)

    def sweep():
        return {total: _measure(total) for total in workloads}

    ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[str(total), f"{ratio:.2f}"] for total, ratio in ratios.items()]
    emit("scalability", format_table(
        "Simulator cost (wall seconds per simulated second, FRAME)",
        ["workload (paper topics)", "wall s / sim s"], rows))
    # Sanity ceiling: the default harness must stay practical.  Even the
    # heaviest workload should simulate at no worse than ~6x real time on
    # commodity hardware (generous bound to avoid flakiness on slow CI).
    assert ratios[13525] < 20.0
    # Cost grows with workload (more events), but sub-quadratically.
    assert ratios[1525] < ratios[13525]
    assert ratios[13525] < 40 * ratios[1525]


def test_utilization_is_scale_invariant_empirically(benchmark, emit):
    """The workload-scaling scheme (DESIGN.md §5): running the same paper
    workload at two different scale factors yields the same module
    utilizations, because topic counts shrink exactly as service demands
    grow.  This is the empirical counterpart of the analytic property
    test in tests/properties."""
    from dataclasses import replace

    from repro.experiments.runner import ExperimentSettings, run_experiment
    from repro.metrics.report import format_table

    base = ExperimentSettings(paper_total=4525, seed=2, warmup=1.0,
                              measure=4.0, grace=0.5,
                              background_noise_probability=0.0,
                              background_idle_load=(0.0, 0.0))

    def sweep():
        coarse = run_experiment(replace(base, scale=0.05)).utilizations()
        fine = run_experiment(replace(base, scale=0.2)).utilizations()
        return coarse, fine

    coarse, fine = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[key, f"{100 * coarse[key]:.1f}", f"{100 * fine[key]:.1f}"]
            for key in sorted(coarse)]
    emit("scale_invariance", format_table(
        "Utilization at scale 0.05 vs 0.2 (4525-topic workload, %)",
        ["module", "scale 0.05", "scale 0.2"], rows))
    for key in coarse:
        # Constant-term distortion bounds the difference (DESIGN.md §5).
        assert abs(coarse[key] - fine[key]) < 0.06, key
