"""Benchmark: regenerate Fig. 8 (cloud-latency variation micro-benchmark).

Paper shape being reproduced: FRAME configures the category-5 dispatch
deadline with a measured *lower bound* of the broker-to-cloud latency
(20.7 ms); over a 24-hour run the actual latency varies diurnally and
spikes by +104 ms around 8 am, yet no message is ever lost — Proposition 1
stays safe because a lower bound of dBS can only make the system replicate
*more*, never suppress a needed replication.

The 24-hour cycle is compressed into 120 simulated seconds (same shape,
same spike magnitude) so the benchmark completes in reasonable time.
"""

from conftest import SCALE

from repro.core.units import ms, to_ms
from repro.experiments.figures import fig8


def test_fig8(benchmark, emit):
    result = benchmark.pedantic(
        lambda: fig8(scale=min(SCALE, 0.05), day_length=120.0),
        rounds=1, iterations=1)
    emit("fig8", result.render() + "\n\n" + result.render_chart())

    # Zero loss throughout the (compressed) day, despite latency variation.
    assert result.losses == 0
    assert result.max_consecutive_losses == 0
    # The series actually exercises variation: the +104 ms spike is visible.
    assert result.max_delta_bs >= result.setup_delta_bs + ms(80)
    # The configured bound is a genuine lower bound (within the cloud
    # subscriber's NTP-grade clock error of a few ms).
    assert result.min_delta_bs >= result.setup_delta_bs - ms(4)
    # And the floor sits near the configured 20.7 ms, not far above.
    assert result.min_delta_bs <= result.setup_delta_bs + ms(4)
    assert len(result.series) > 100
