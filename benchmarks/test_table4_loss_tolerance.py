"""Benchmark: regenerate Table 4 (loss-tolerance success rates, crash runs).

Paper shape being reproduced:

* every configuration meets every requirement up to 4525 topics;
* FCFS collapses to 0 % for all finite-Li rows from 7525 topics on
  (overload: unreplicated backlogs die with the Primary);
* FRAME and FRAME+ stay at 100 % through 10525 topics;
* at 13525 topics FRAME degrades partially (wide CI: bimodal runs) while
  FRAME+ — replication-free thanks to one extra retained message — stays
  at 100 %;
* FCFS− holds up except for the (100 ms, 0) row at 13525.
"""

from conftest import SCALE, SEEDS

from repro.experiments.cells import TABLE_ROWS
from repro.experiments.tables import table4

INF = float("inf")


def test_table4(benchmark, emit):
    result = benchmark.pedantic(
        lambda: table4(seeds=SEEDS, scale=SCALE), rounds=1, iterations=1)
    emit("table4", result.render())

    def cell(workload, row, policy):
        return result.cell(workload, row, policy).mean

    # --- Shape assertions against the paper ---------------------------
    # FCFS collapses for every finite-Li row from 7525 topics on.
    for workload in (7525, 10525, 13525):
        for row in TABLE_ROWS:
            if row[1] == INF:
                assert cell(workload, row, "FCFS") == 100.0
            else:
                assert cell(workload, row, "FCFS") <= 20.0
    # FRAME and FRAME+ meet everything through 10525 topics.
    for workload in (7525, 10525):
        for row in TABLE_ROWS:
            assert cell(workload, row, "FRAME") >= 99.0
            assert cell(workload, row, "FRAME+") >= 99.0
    # At 13525: FRAME+ still perfect, FRAME partially degraded.
    for row in TABLE_ROWS:
        assert cell(13525, row, "FRAME+") >= 99.0
    frame_13525 = [cell(13525, row, "FRAME") for row in TABLE_ROWS
                   if row[1] != INF]
    assert min(frame_13525) < 100.0, "FRAME should degrade at 13525"
    assert sum(frame_13525) / len(frame_13525) >= 40.0, "but not collapse"
    # FCFS- stays functional through 13525 (clear win over FCFS).
    for row in TABLE_ROWS:
        assert cell(13525, row, "FCFS-") >= 50.0
        assert cell(13525, row, "FCFS-") > cell(13525, row, "FCFS") or row[1] == INF
