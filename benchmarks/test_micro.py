"""Micro-benchmarks: throughput of the hot-path components.

The paper claims an *efficient* implementation; these quantify the
simulation substrate's and broker primitives' costs so regressions in the
hot path are visible.  Unlike the table benchmarks these use normal
pytest-benchmark statistics (many rounds).
"""

from repro.core.buffers import BackupBuffer, RingBuffer
from repro.core.model import Message
from repro.core.scheduling import DISPATCH, EDFJobQueue, Job
from repro.net.topology import Network
from repro.sim import Engine, Host, Timeout


def test_engine_event_throughput(benchmark):
    """Schedule-and-run of 10k chained timer events."""

    def run():
        engine = Engine()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                engine.call_after(1e-6, tick)

        engine.call_soon(tick)
        engine.run()
        return count[0]

    assert benchmark(run) == 10_000


def test_process_switch_throughput(benchmark):
    """10k process suspensions/resumptions."""

    def run():
        engine = Engine()

        def proc():
            for _ in range(10_000):
                yield Timeout(1e-6)
            return True

        process = engine.spawn(proc())
        engine.run()
        return process.result()

    assert benchmark(run)


def test_edf_queue_push_pop(benchmark):
    """5k EDF pushes + pops through the blocking queue."""

    def run():
        engine = Engine()
        queue = EDFJobQueue(engine)
        got = []

        def consumer():
            for _ in range(5000):
                got.append((yield queue.pop()))

        engine.spawn(consumer())
        for index in range(5000):
            queue.push(Job(DISPATCH, None, deadline=float(index % 97), cost=1e-6))
        engine.run()
        return len(got)

    assert benchmark(run) == 5000


def test_ring_buffer_append(benchmark):
    ring = RingBuffer(capacity=10)
    message = Message(0, 1, 0.0)

    def run():
        for _ in range(10_000):
            ring.append(message)
        return len(ring)

    assert benchmark(run) == 10


def test_backup_buffer_store_prune(benchmark):
    def run():
        buffer = BackupBuffer(capacity_per_topic=10)
        for seq in range(2000):
            buffer.store(Message(seq % 20, seq, 0.0), arrived_at=0.0)
            buffer.prune(seq % 20, seq)
        return buffer.total_count()

    assert benchmark(run) > 0


def test_network_send_throughput(benchmark):
    def run():
        engine = Engine()
        network = Network(engine)
        a, b = Host(engine, "a"), Host(engine, "b")
        network.connect(a, b, 1e-4)
        received = []
        network.register(b, "b/svc", received.append)
        for index in range(5000):
            network.send(a, "b/svc", index)
        engine.run()
        return len(received)

    assert benchmark(run) == 5000


def test_end_to_end_small_run(benchmark):
    """A complete 1525-topic (scaled) fault-free run: the unit of all sweeps."""
    from repro.experiments.runner import ExperimentSettings, run_experiment

    settings = ExperimentSettings(paper_total=1525, scale=0.1, seed=0,
                                  warmup=1.0, measure=3.0, grace=0.5)

    def run():
        result = run_experiment(settings)
        return result.primary_broker.stats.dispatched

    assert benchmark.pedantic(run, rounds=1, iterations=1) > 1000
