#!/usr/bin/env python3
"""Fail-over drill: what happens to latency when the Primary dies?

Reproduces the paper's Fig. 9 story on one workload: crash the Primary
mid-run under FRAME and under FCFS− (no dispatch-replicate coordination)
and compare the recovery latency spike.  FRAME's Backup Buffer is pruned
online, so recovery re-dispatches almost nothing; FCFS− must clear a full
buffer of stale copies and stalls fresh traffic behind it.

The second half of the drill leaves the simulator for the asyncio
runtime: a live Primary/Backup pair on loopback sockets goes through a
Backup fail-stop-and-restart while publishers keep sending.  The
supervised peer link queues replicas during the outage, reconnects with
backoff, and resynchronises — zero dispatched messages lost, and the
episode is visible in the broker's ``stats`` counters.

Run:  python examples/failover_drill.py
"""

import asyncio

from repro import EDGE, FCFS_MINUS, FRAME, ExperimentSettings, TopicSpec, \
    run_experiment, to_ms
from repro.runtime.client import fetch_stats
from repro.runtime.deployment import LocalDeployment


def drill(policy, seed=3):
    settings = ExperimentSettings(
        policy=policy, paper_total=7525, scale=0.1, seed=seed,
        crash_at=6.0, traced_categories=(0, 2, 5),
    )
    return run_experiment(settings)


def main() -> None:
    print("Crash drill at 7525 topics: FRAME vs FCFS- (no coordination)\n")
    for policy in (FRAME, FCFS_MINUS):
        result = drill(policy)
        backup = result.backup_broker.stats
        print(f"--- {policy.name} ---")
        print(f"  crash at {result.crash_time:.2f}s, promoted "
              f"+{1000 * (backup.promotion_time - result.crash_time):.0f} ms later")
        print(f"  backup buffer at recovery: {backup.recovery_skipped} pruned copies "
              f"skipped, {backup.recovery_dispatch_jobs} re-dispatched")
        for category, label in ((0, "emergency (50 ms)"), (2, "monitor (100 ms)"),
                                (5, "cloud log (500 ms)")):
            trace = result.trace_of_category(category)
            crash = result.crash_time
            before = max((t.latency for t in trace
                          if t.received_true_time < crash), default=float("nan"))
            after = max((t.latency for t in trace
                         if t.received_true_time >= crash), default=float("nan"))
            spec = result.topic_spec(result.traced_topic_by_category[category])
            losses = result.topic_total_losses(spec)
            print(f"  {label:<20} peak before {to_ms(before):7.1f} ms | "
                  f"peak after {to_ms(after):7.1f} ms | losses {losses}")
        print()

    print("Takeaway: both configurations lose nothing, but without pruning the")
    print("recovery spike is roughly an order of magnitude taller - the cost of")
    print("re-dispatching a Backup Buffer full of already-delivered copies.")

    print("\nNow the same failure class on real sockets: a Backup blip under")
    print("the asyncio runtime's supervised peer link.\n")
    asyncio.run(runtime_backup_blip())


async def runtime_backup_blip() -> None:
    """Kill and restart the Backup under live traffic; lose nothing."""
    topics = [TopicSpec(0, period=3.0, deadline=5.0, loss_tolerance=0,
                        retention=1, destination=EDGE, category=2)]
    async with LocalDeployment(topics, poll_interval=0.05, reply_timeout=0.2,
                               miss_threshold=3) as deployment:
        subscriber = await deployment.add_subscriber()
        publisher = await deployment.add_publisher(publisher_id="drill")
        link = deployment.primary.peer_link

        async def publish(n):
            for i in range(n):
                await publisher.publish({0: f"sample-{i}"})
                await asyncio.sleep(0.03)

        await publish(5)
        await deployment.crash_backup()
        print("--- runtime: Backup fail-stopped; publishing continues ---")
        await publish(5)
        await deployment.restart_backup()
        await publish(5)
        await asyncio.sleep(0.4)

        stats = await fetch_stats(deployment.primary.address)
        peer = stats["peer_link"]
        delivered = subscriber.delivered_seqs(0)
        missing = set(range(1, publisher._seq[0] + 1)) - delivered
        print(f"  delivered {len(delivered)}/{publisher._seq[0]} messages, "
              f"missing {sorted(missing) or 'none'}")
        print(f"  peer link: {peer['connects']} connects, "
              f"{peer['disconnects']} disconnects, "
              f"{peer['frames_queued']} replicas queued during the outage, "
              f"{stats['peer_resyncs']} resyncs")
        print(f"  restarted Backup holds "
              f"{deployment.backup.backup_buffer.total_count()} replicas")
    print("\nruntime takeaway: the peer link turns a Backup crash into a")
    print("counted, self-healing episode - no operator action, no loss.")


if __name__ == "__main__":
    main()
