#!/usr/bin/env python3
"""Fail-over drill: what happens to latency when the Primary dies?

Reproduces the paper's Fig. 9 story on one workload: crash the Primary
mid-run under FRAME and under FCFS− (no dispatch-replicate coordination)
and compare the recovery latency spike.  FRAME's Backup Buffer is pruned
online, so recovery re-dispatches almost nothing; FCFS− must clear a full
buffer of stale copies and stalls fresh traffic behind it.

Run:  python examples/failover_drill.py
"""

from repro import FCFS_MINUS, FRAME, ExperimentSettings, run_experiment, to_ms


def drill(policy, seed=3):
    settings = ExperimentSettings(
        policy=policy, paper_total=7525, scale=0.1, seed=seed,
        crash_at=6.0, traced_categories=(0, 2, 5),
    )
    return run_experiment(settings)


def main() -> None:
    print("Crash drill at 7525 topics: FRAME vs FCFS- (no coordination)\n")
    for policy in (FRAME, FCFS_MINUS):
        result = drill(policy)
        backup = result.backup_broker.stats
        print(f"--- {policy.name} ---")
        print(f"  crash at {result.crash_time:.2f}s, promoted "
              f"+{1000 * (backup.promotion_time - result.crash_time):.0f} ms later")
        print(f"  backup buffer at recovery: {backup.recovery_skipped} pruned copies "
              f"skipped, {backup.recovery_dispatch_jobs} re-dispatched")
        for category, label in ((0, "emergency (50 ms)"), (2, "monitor (100 ms)"),
                                (5, "cloud log (500 ms)")):
            trace = result.trace_of_category(category)
            crash = result.crash_time
            before = max((t.latency for t in trace
                          if t.received_true_time < crash), default=float("nan"))
            after = max((t.latency for t in trace
                         if t.received_true_time >= crash), default=float("nan"))
            spec = result.topic_spec(result.traced_topic_by_category[category])
            losses = result.topic_total_losses(spec)
            print(f"  {label:<20} peak before {to_ms(before):7.1f} ms | "
                  f"peak after {to_ms(after):7.1f} ms | losses {losses}")
        print()

    print("Takeaway: both configurations lose nothing, but without pruning the")
    print("recovery spike is roughly an order of magnitude taller - the cost of")
    print("re-dispatching a Backup Buffer full of already-delivered copies.")


if __name__ == "__main__":
    main()
