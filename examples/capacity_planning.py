#!/usr/bin/env python3
"""Capacity planning with FRAME's timing bounds (paper Sec. III-D).

Shows the *analytic* half of FRAME — no simulation involved:

1. the admission test (Lemmas 1 & 2) over a set of application topics,
2. minimum publisher retention Ni per topic (Table 2's fifth column),
3. the Proposition 1 replication plan, and how one extra retained
   message removes replication entirely (the FRAME+ configuration),
4. the deadline ordering that drives EDF differentiation.

Run:  python examples/capacity_planning.py
"""

from repro import (
    CLOUD,
    EDGE,
    DeadlineParameters,
    TopicSpec,
    admission_test,
    deadline_order,
    min_retention,
    needs_replication,
    ms,
    to_ms,
)

#: Network estimates measured on the deployment (paper's Sec. VI-A values).
PARAMS = DeadlineParameters(
    delta_pb=ms(0.3),          # publisher -> broker (switched LAN)
    delta_bb=ms(0.05),         # broker -> backup (dedicated link)
    delta_bs_edge=ms(1.0),     # broker -> edge subscriber
    delta_bs_cloud=ms(20.7),   # broker -> EC2 (measured lower bound!)
    failover_time=ms(50.0),    # publisher fail-over bound x
)

#: The application mix from the paper's introduction.
APPLICATIONS = [
    ("emergency stop", TopicSpec(0, ms(50), ms(50), 0, 0, EDGE, category=0)),
    ("vibration monitor", TopicSpec(1, ms(50), ms(50), 3, 0, EDGE, category=1)),
    ("temperature monitor", TopicSpec(2, ms(100), ms(100), 0, 0, EDGE, category=2)),
    ("power telemetry", TopicSpec(3, ms(100), ms(100), 3, 0, EDGE, category=3)),
    ("dashboard feed", TopicSpec(4, ms(100), ms(100), float("inf"), 0, EDGE, category=4)),
    ("audit log", TopicSpec(5, ms(500), ms(500), 0, 0, CLOUD, category=5)),
]


def main() -> None:
    print("Step 1 - admission and minimum retention (Ni) per topic")
    print(f"{'application':<22} {'Ti':>6} {'Di':>6} {'Li':>4} {'min Ni':>7} {'admitted':>9}")
    sized = []
    for name, spec in APPLICATIONS:
        minimum = min_retention(spec, PARAMS)
        spec = spec.with_retention(minimum)
        verdict = admission_test(spec, PARAMS)
        li = "inf" if spec.best_effort else int(spec.loss_tolerance)
        print(f"{name:<22} {to_ms(spec.period):>5.0f}m {to_ms(spec.deadline):>5.0f}m "
              f"{li:>4} {minimum:>7} {str(verdict.admitted):>9}")
        sized.append((name, spec))

    print("\nStep 2 - Proposition 1: which topics actually need replication?")
    for name, spec in sized:
        needed = needs_replication(spec, PARAMS)
        print(f"  {name:<22} -> {'REPLICATE' if needed else 'suppressed'}")

    print("\nStep 3 - one extra retained message (FRAME+) removes the rest:")
    for name, spec in sized:
        if needs_replication(spec, PARAMS):
            boosted = spec.with_retention(spec.retention + 1)
            print(f"  {name:<22} Ni {spec.retention} -> {boosted.retention}: "
                  f"replication {'still needed' if needs_replication(boosted, PARAMS) else 'removed'}")

    print("\nStep 4 - the EDF deadline ordering (ms) that differentiates topics:")
    order = deadline_order([spec for _, spec in sized], PARAMS)
    names = {spec.topic_id: name for name, spec in sized}
    for kind, topic_id, deadline in order:
        print(f"  {to_ms(deadline):8.2f}  {kind:<9}  {names[topic_id]}")

    print("\nStep 5 - will the broker actually meet those deadlines?")
    from repro import FRAME
    from repro.analysis import check_topic_set
    from repro.core.config import CostModel

    verdict = check_topic_set([spec for _, spec in sized], FRAME, PARAMS,
                              CostModel.calibrated(1.0))
    print(f"  EDF demand-bound analysis: {verdict.verdict}")
    print(f"  delivery utilization {100 * verdict.total_utilization / 2:.2f} % "
          f"of 2 cores; worst slack {1000 * verdict.worst_slack:.2f} ms "
          f"at t = {1000 * verdict.worst_time:.1f} ms")


if __name__ == "__main__":
    main()
