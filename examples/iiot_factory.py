#!/usr/bin/env python3
"""Wind-farm IIoT scenario: differentiation under heavy sensor load.

The paper's motivating deployment (Fig. 1): a wind farm's sensors publish
through edge brokers; emergency topics need tens-of-milliseconds latency
and zero loss, monitoring topics tolerate a few losses, and logging goes
to the cloud.  This example loads the brokers close to their capacity and
shows why differentiation matters: FRAME meets every class, while the
undifferentiated FCFS baseline collapses across the board.

Run:  python examples/iiot_factory.py
"""

from repro import FCFS, FRAME, ExperimentSettings, run_experiment

WORKLOAD = 7525   # the paper's first overload point for FCFS


def describe(policy) -> dict:
    settings = ExperimentSettings(policy=policy, paper_total=WORKLOAD,
                                  scale=0.1, seed=7, crash_at=None)
    result = run_experiment(settings)
    return {
        "latency": result.latency_success_by_row(),
        "utils": result.utilizations(),
        "replicated": result.primary_broker.stats.replicated,
        "dispatched": result.primary_broker.stats.dispatched,
    }


def main() -> None:
    rows = [
        ((50.0, 0), "emergency stop     (50 ms, lose none)"),
        ((50.0, 3), "emergency sensors  (50 ms, lose <= 3)"),
        ((100.0, 0), "turbine monitors   (100 ms, lose none)"),
        ((100.0, 3), "vibration sensors  (100 ms, lose <= 3)"),
        ((100.0, float("inf")), "dashboards         (100 ms, best effort)"),
        ((500.0, 0), "cloud audit log    (500 ms, lose none)"),
    ]
    print(f"Wind farm with {WORKLOAD} topics, fault-free operation.\n")
    outcomes = {}
    for policy in (FRAME, FCFS):
        print(f"running {policy.name} ...")
        outcomes[policy.name] = describe(policy)

    print(f"\n{'application class':<42} {'FRAME':>8} {'FCFS':>8}")
    for key, label in rows:
        frame_rate = 100 * outcomes["FRAME"]["latency"][key]
        fcfs_rate = 100 * outcomes["FCFS"]["latency"][key]
        print(f"{label:<42} {frame_rate:>7.1f}% {fcfs_rate:>7.1f}%")

    frame, fcfs = outcomes["FRAME"], outcomes["FCFS"]
    print(f"\nWhy: FCFS replicates every one of {fcfs['dispatched']} messages "
          f"({fcfs['replicated']} replications) and saturates Message Delivery "
          f"({100 * fcfs['utils']['primary_delivery']:.0f} % of 2 cores).")
    print(f"FRAME's Proposition 1 replicates only the classes that need it "
          f"({frame['replicated']} replications) and runs at "
          f"{100 * frame['utils']['primary_delivery']:.0f} % - with identical "
          f"fault-tolerance guarantees.")


if __name__ == "__main__":
    main()
