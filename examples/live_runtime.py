#!/usr/bin/env python3
"""Live deployment demo: real FRAME brokers on TCP loopback sockets.

Starts a Primary/Backup broker pair (the asyncio runtime), a publisher
proxy with message retention, and a subscriber; publishes telemetry,
kills the Primary, and shows the Backup taking over with the publisher's
retained messages re-sent — zero loss across the fail-over.

Timing here is wall-clock best effort (see ``repro.runtime``); the
guarantees are evaluated in the simulator, but the machinery is the same.

Run:  python examples/live_runtime.py
"""

import asyncio

from repro import EDGE, FRAME, TopicSpec, DeadlineParameters
from repro.runtime import BrokerServer, Publisher, RuntimeBrokerConfig, Subscriber
from repro.runtime.broker import BACKUP, PRIMARY

#: Wall-clock-friendly parameters (seconds, not the paper's milliseconds).
PARAMS = DeadlineParameters(delta_pb=0.01, delta_bb=0.01, delta_bs_edge=0.02,
                            delta_bs_cloud=0.1, failover_time=2.0)

TOPICS = {
    0: TopicSpec(0, period=0.2, deadline=5.0, loss_tolerance=0, retention=2,
                 destination=EDGE, category=0),
    1: TopicSpec(1, period=0.2, deadline=5.0, loss_tolerance=3, retention=10,
                 destination=EDGE, category=3),
}


async def main() -> None:
    backup = BrokerServer("127.0.0.1", 0, RuntimeBrokerConfig(
        topics=TOPICS, policy=FRAME, params=PARAMS,
        poll_interval=0.1, reply_timeout=0.3, miss_threshold=3), role=BACKUP,
        name="backup")
    await backup.start()
    primary = BrokerServer("127.0.0.1", 0, RuntimeBrokerConfig(
        topics=TOPICS, policy=FRAME, params=PARAMS,
        peer_address=backup.address), role=PRIMARY, name="primary")
    await primary.start()
    backup.config.watch_address = primary.address
    backup._tasks.append(asyncio.create_task(backup._watch_primary()))
    print(f"primary on {primary.address}, backup on {backup.address}")

    received = []
    subscriber = Subscriber([0, 1], primary.address, backup.address,
                            on_message=lambda m: received.append(m))
    await subscriber.start()
    await asyncio.sleep(0.3)

    publisher = Publisher(list(TOPICS.values()), primary.address, backup.address,
                          publisher_id="turbine-7", poll_interval=0.1,
                          reply_timeout=0.3, miss_threshold=3)
    await publisher.start()

    print("publishing 10 rounds of telemetry through the primary ...")
    for round_index in range(10):
        await publisher.publish({0: f"rpm={1500 + round_index}",
                                 1: f"temp={40 + round_index}"})
        await asyncio.sleep(0.1)
    await asyncio.sleep(0.3)
    print(f"  subscriber got {len(received)} messages "
          f"(replications at backup: {backup.backup_buffer.total_count()} stored)")

    print("\nkilling the primary broker ...")
    await primary.close()
    await asyncio.wait_for(backup.promoted.wait(), timeout=10.0)
    await asyncio.wait_for(publisher.failed_over.wait(), timeout=10.0)
    print("  backup promoted; publisher failed over and re-sent retained messages")

    print("publishing 5 more rounds through the new primary ...")
    for round_index in range(5):
        await publisher.publish({0: f"rpm={1600 + round_index}",
                                 1: f"temp={50 + round_index}"})
        await asyncio.sleep(0.1)
    await asyncio.sleep(0.5)

    for topic_id in TOPICS:
        seqs = subscriber.delivered_seqs(topic_id)
        missing = set(range(1, 16)) - seqs
        print(f"  topic {topic_id}: delivered {len(seqs)}/15, missing {sorted(missing) or 'none'}")
    print(f"  duplicates suppressed: {subscriber.duplicates}")

    await publisher.close()
    await subscriber.close()
    await backup.close()
    print("\ndone: no message was lost across the fail-over")


if __name__ == "__main__":
    asyncio.run(main())
