#!/usr/bin/env python3
"""Live deployment demo: real FRAME brokers on TCP loopback sockets.

Runs the asyncio runtime through its whole fault-tolerance repertoire:

* **Act 1** — a Primary/Backup pair with live publishers and a
  subscriber; telemetry flows, selective replication lands in the
  Backup Buffer.
* **Act 2** — the Backup dies and comes back.  The Primary's supervised
  peer link notices, retries with backoff, queues replica frames while
  the peer is down, reconnects on its own, flushes the queue, and
  resynchronises the not-yet-discarded entries (runtime re-protection).
* **Act 3** — the Primary dies.  The Backup promotes, the publisher
  fails over and re-sends its retained messages, and a *fresh* Backup
  is attached to the survivor, restoring one-failure tolerance.

Zero messages are lost across all three acts, and the expanded ``stats``
snapshot shows the whole episode: per-topic dispatch/replication
counters, dispatch latency, peer-link state, and worker health.

Timing here is wall-clock best effort (see ``repro.runtime``); the
guarantees are evaluated in the simulator, but the machinery is the same.

Run:  python examples/live_runtime.py
"""

import asyncio

from repro import EDGE, TopicSpec
from repro.runtime.client import fetch_stats
from repro.runtime.deployment import LocalDeployment

TOPICS = [
    TopicSpec(0, period=0.2, deadline=5.0, loss_tolerance=0, retention=2,
              destination=EDGE, category=0),
    TopicSpec(1, period=0.2, deadline=5.0, loss_tolerance=3, retention=10,
              destination=EDGE, category=3),
]


async def publish_rounds(publisher, count, label) -> None:
    base = {t: publisher._seq[t] for t in publisher._seq}
    for i in range(count):
        await publisher.publish({0: f"rpm={1500 + base[0] + i}",
                                 1: f"temp={40 + base[1] + i}"})
        await asyncio.sleep(0.05)
    print(f"  published {count} rounds {label}")


def print_stats(stats) -> None:
    link = stats["peer_link"]
    workers = stats["workers"]
    print(f"  stats[{stats['name']}]: dispatched={stats['dispatched']} "
          f"replicated={stats['replicated']} "
          f"deadline_misses={stats['deadline_misses']} "
          f"mean_latency={1000 * stats['dispatch_latency']['mean']:.1f}ms")
    if link is not None:
        print(f"    peer link: state={link['state']} "
              f"connects={link['connects']} disconnects={link['disconnects']} "
              f"queued={link['frames_queued']} dropped={link['frames_dropped']}")
    print(f"    workers: {workers['alive']}/{workers['configured']} alive, "
          f"{workers['errors']} contained errors, "
          f"{workers['respawned']} respawned")
    for topic_id, counters in sorted(stats["per_topic"].items()):
        print(f"    topic {topic_id}: dispatched={counters['dispatched']} "
              f"replicated={counters['replicated']}")


async def main() -> None:
    async with LocalDeployment(TOPICS, poll_interval=0.1, reply_timeout=0.3,
                               miss_threshold=3) as deployment:
        print(f"primary on {deployment.primary.address}, "
              f"backup on {deployment.backup.address}")
        received = []
        subscriber = await deployment.add_subscriber(
            on_message=lambda m: received.append(m))
        publisher = await deployment.add_publisher(publisher_id="turbine-7")

        print("\n=== Act 1: steady state ===")
        await publish_rounds(publisher, 6, "through the primary")
        await asyncio.sleep(0.3)
        print(f"  subscriber got {len(received)} messages, backup stores "
              f"{deployment.backup.backup_buffer.total_count()} replicas")

        print("\n=== Act 2: the Backup dies and comes back ===")
        link = deployment.primary.peer_link
        await deployment.crash_backup()
        await publish_rounds(publisher, 4, "while the Backup is DOWN "
                             "(dispatch continues, replicas queue)")
        await deployment.restart_backup()
        print(f"  peer link reconnected by itself "
              f"(connects={link.connects}, queued while down="
              f"{link.frames_queued}) and resynchronised")
        await publish_rounds(publisher, 4, "after the Backup returned")
        await asyncio.sleep(0.3)
        print_stats(await fetch_stats(deployment.primary.address))

        print("\n=== Act 3: the Primary dies; survivor is re-protected ===")
        await deployment.crash_primary()
        print("  backup promoted; publisher failed over and re-sent "
              "retained messages")
        fresh = await deployment.attach_fresh_backup()
        print(f"  fresh Backup attached on {fresh.address} — one-failure "
              f"tolerance restored")
        await publish_rounds(publisher, 4, "through the new primary")
        await asyncio.sleep(0.5)

        total = publisher._seq[0]
        for topic_id in (0, 1):
            seqs = subscriber.delivered_seqs(topic_id)
            missing = set(range(1, total + 1)) - seqs
            print(f"  topic {topic_id}: delivered {len(seqs)}/{total}, "
                  f"missing {sorted(missing) or 'none'}")
        print(f"  duplicates suppressed: {subscriber.duplicates}")
        print_stats(await fetch_stats(deployment.current_primary().address))

    print("\ndone: no message was lost across a Backup blip AND a fail-over")


if __name__ == "__main__":
    asyncio.run(main())
