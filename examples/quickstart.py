#!/usr/bin/env python3
"""Quickstart: run a FRAME deployment through a broker crash.

Builds a small IIoT workload (the paper's Table 2 mix), runs the
simulated testbed with a Primary crash halfway through, and prints the
loss-tolerance and latency outcomes per requirement class.

Run:  python examples/quickstart.py
"""

from repro import FRAME, ExperimentSettings, run_experiment, to_ms


def main() -> None:
    settings = ExperimentSettings(
        policy=FRAME,
        paper_total=1525,   # 10+10 critical, 500x3 sensor, 5 cloud topics
        scale=0.1,          # shrink sensor categories for a fast demo
        seed=42,
        crash_at=6.0,       # kill the Primary 6 s into the measuring phase
        traced_categories=(0,),
    )
    print(f"Running {settings.paper_total}-topic workload under {settings.policy.name} "
          f"with a Primary crash at t={settings.warmup + settings.crash_at:.0f}s ...")
    result = run_experiment(settings)

    print(f"\nCrash injected at {result.crash_time:.2f}s; "
          f"Backup promoted at {result.backup_broker.stats.promotion_time:.3f}s "
          f"(+{1000 * (result.backup_broker.stats.promotion_time - result.crash_time):.1f} ms)")

    print("\nPer-requirement outcomes (Di ms / Li -> loss ok %, latency ok %):")
    loss = result.loss_success_by_row()
    latency = result.latency_success_by_row()
    for key in sorted(loss):
        di, li = key
        li_text = "inf" if li == float("inf") else int(li)
        print(f"  Di={di:>5.0f}  Li={li_text:>3}   "
              f"loss {100 * loss[key]:6.1f} %   latency {100 * latency[key]:6.1f} %")

    trace = result.trace_of_category(0)
    peak = max(t.latency for t in trace)
    print(f"\nTraced emergency topic: {len(trace)} deliveries, "
          f"peak end-to-end latency {to_ms(peak):.1f} ms "
          f"(deadline {to_ms(result.topic_spec(result.traced_topic_by_category[0]).deadline):.0f} ms)")

    backup = result.backup_broker.stats
    print(f"Backup at recovery: {backup.recovery_skipped} copies skipped (pruned), "
          f"{backup.recovery_dispatch_jobs} re-dispatched, "
          f"{result.subscriber_stats.duplicates} duplicates suppressed at subscribers")


if __name__ == "__main__":
    main()
