#!/usr/bin/env python3
"""Three wind farms, one private cloud: multi-edge FRAME (paper Fig. 1).

Each edge runs its own complete FRAME deployment (publisher proxies,
Primary/Backup brokers, local subscribers, PTP domain); all edges' logging
topics flow to one shared cloud subscriber.  The drill kills edge 0's
Primary mid-run and shows that fail-over stays local: the other edges'
guarantees are untouched and the cloud keeps receiving everyone's logs.

Run:  python examples/multi_edge_farm.py
"""

from dataclasses import replace

from repro import FRAME, ExperimentSettings
from repro.experiments.multi_edge import run_multi_edge

NUM_EDGES = 3


def main() -> None:
    settings = ExperimentSettings(policy=FRAME, paper_total=1525, scale=0.05,
                                  seed=11, crash_at=5.0)
    print(f"Running {NUM_EDGES} edges x {settings.paper_total} topics; "
          f"killing edge 0's Primary at t={settings.warmup + settings.crash_at:.0f}s ...\n")
    result = run_multi_edge(settings, num_edges=NUM_EDGES, crash_edge=0)

    for index, edge in enumerate(result.edges):
        loss = edge.loss_success_by_row()
        all_met = all(rate == 1.0 for rate in loss.values())
        if edge.crash_time is not None:
            promotion = edge.backup_broker.stats.promotion_time
            status = (f"CRASHED at {edge.crash_time:.1f}s, promoted "
                      f"+{1000 * (promotion - edge.crash_time):.0f} ms later")
        else:
            status = "healthy (no fail-over events)"
        print(f"edge {index}: {status}")
        print(f"         all loss-tolerance requirements met: {all_met}")

    print("\nShared cloud subscriber received, per edge:")
    for index, count in result.cloud_topics_received().items():
        print(f"  edge {index}: {count} logging messages")
    duplicates = result.cloud_stats.duplicates
    print(f"  (duplicates suppressed at the cloud: {duplicates})")

    print("\nTakeaway: a broker failure is an edge-local event; the other")
    print("edges and the shared cloud never notice it.")


if __name__ == "__main__":
    main()
