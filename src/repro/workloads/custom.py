"""User-defined workloads: load/save topic specifications as JSON.

Downstream deployments rarely match Table 2 exactly; this module lets
them describe their own topic sets declaratively and run the same
admission analysis / simulation / capacity planning on them.

File format — a JSON object::

    {
      "topics": [
        {"topic_id": 0, "period_ms": 50, "deadline_ms": 50,
         "loss_tolerance": 0, "retention": 2,
         "destination": "edge", "category": 0},
        {"topic_id": 5, "period_ms": 500, "deadline_ms": 500,
         "loss_tolerance": "inf", "retention": 0, "destination": "cloud"}
      ]
    }

Times are **milliseconds** in the file (the paper's unit) and seconds in
memory.  ``loss_tolerance`` accepts the string ``"inf"`` for best-effort
topics.  ``category`` is optional.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.core.model import EDGE, LOSS_UNBOUNDED, TopicSpec
from repro.core.units import ms, to_ms


class WorkloadFormatError(ValueError):
    """The file does not describe a valid topic set."""


def spec_to_obj(spec: TopicSpec) -> Dict[str, Any]:
    return {
        "topic_id": spec.topic_id,
        "period_ms": to_ms(spec.period),
        "deadline_ms": to_ms(spec.deadline),
        "loss_tolerance": ("inf" if spec.best_effort
                           else int(spec.loss_tolerance)),
        "retention": spec.retention,
        "destination": spec.destination,
        "category": spec.category,
    }


def obj_to_spec(obj: Dict[str, Any]) -> TopicSpec:
    try:
        loss = obj["loss_tolerance"]
        if isinstance(loss, str):
            if loss.lower() not in ("inf", "infinity"):
                raise WorkloadFormatError(f"bad loss_tolerance {loss!r}")
            loss = LOSS_UNBOUNDED
        return TopicSpec(
            topic_id=int(obj["topic_id"]),
            period=ms(float(obj["period_ms"])),
            deadline=ms(float(obj["deadline_ms"])),
            loss_tolerance=loss,
            retention=int(obj.get("retention", 0)),
            destination=obj.get("destination", EDGE),
            category=int(obj.get("category", -1)),
        )
    except WorkloadFormatError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise WorkloadFormatError(f"bad topic object {obj!r}: {exc}") from exc


def load_topics(path: str) -> List[TopicSpec]:
    """Load a topic set from a JSON file (see module docstring)."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "topics" not in document:
        raise WorkloadFormatError('expected a JSON object with a "topics" list')
    topics = document["topics"]
    if not isinstance(topics, list) or not topics:
        raise WorkloadFormatError('"topics" must be a non-empty list')
    specs = [obj_to_spec(obj) for obj in topics]
    ids = [spec.topic_id for spec in specs]
    if len(set(ids)) != len(ids):
        duplicates = sorted({i for i in ids if ids.count(i) > 1})
        raise WorkloadFormatError(f"duplicate topic ids: {duplicates}")
    return specs


def save_topics(specs: Sequence[TopicSpec], path: str) -> None:
    """Write a topic set to a JSON file (round-trips with load_topics)."""
    document = {"topics": [spec_to_obj(spec) for spec in specs]}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
