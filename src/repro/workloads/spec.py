"""The evaluation workloads (paper Table 2 and Sec. VI).

Six topic categories::

    cat  Ti(ms)  Di(ms)  Li    Ni  destination
    0    50      50      0     2   edge       (emergency-response)
    1    50      50      3     0   edge
    2    100     100     0     1   edge       (monitoring)
    3    100     100     3     0   edge
    4    100     100     inf   0   edge       (best-effort)
    5    500     500     0     1   cloud      (logging)

``Ni`` is the minimum admissible retention (Table 2's fifth column; the
admission tests verify this).  A workload of ``W`` total topics has ten
topics each in categories 0 and 1, five in category 5, and splits the
remaining ``W - 25`` evenly across categories 2-4.  Publishers are proxies
of 10 topics (categories 0/1), 50 topics (categories 2-4), or one topic
(category 5), each sending one message per topic per period in a batch.

``scale`` shrinks the sensor categories (2-4) for laptop-size simulation
while :meth:`repro.core.config.CostModel.calibrated` inflates service
demands by ``1/scale``, preserving broker utilization (DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.model import CLOUD, EDGE, LOSS_UNBOUNDED, TopicSpec
from repro.core.units import ms


@dataclass(frozen=True)
class CategorySpec:
    """One Table 2 row (times in seconds)."""

    category: int
    period: float
    deadline: float
    loss_tolerance: float
    retention: int
    destination: str
    topics_per_proxy: int

    def make_topic(self, topic_id: int) -> TopicSpec:
        return TopicSpec(
            topic_id=topic_id,
            period=self.period,
            deadline=self.deadline,
            loss_tolerance=self.loss_tolerance,
            retention=self.retention,
            destination=self.destination,
            category=self.category,
        )


CATEGORIES: Dict[int, CategorySpec] = {
    0: CategorySpec(0, ms(50), ms(50), 0, 2, EDGE, topics_per_proxy=10),
    1: CategorySpec(1, ms(50), ms(50), 3, 0, EDGE, topics_per_proxy=10),
    2: CategorySpec(2, ms(100), ms(100), 0, 1, EDGE, topics_per_proxy=50),
    3: CategorySpec(3, ms(100), ms(100), 3, 0, EDGE, topics_per_proxy=50),
    4: CategorySpec(4, ms(100), ms(100), LOSS_UNBOUNDED, 0, EDGE, topics_per_proxy=50),
    5: CategorySpec(5, ms(500), ms(500), 0, 1, CLOUD, topics_per_proxy=1),
}

#: The paper's workload sweep (total topic counts).
PAPER_WORKLOADS: Tuple[int, ...] = (1525, 4525, 7525, 10525, 13525)

#: Fixed category populations at scale 1.0 (categories 0, 1, and 5).
_FIXED_COUNTS = {0: 10, 1: 10, 5: 5}


@dataclass(frozen=True)
class ProxyGroup:
    """One publisher proxy: its topics (equal period) and host assignment."""

    publisher_id: str
    specs: Tuple[TopicSpec, ...]
    host_index: int  # which publisher host (0 or 1) runs this proxy


@dataclass(frozen=True)
class Workload:
    """A complete generated topic set plus its publisher grouping."""

    name: str
    paper_total: int
    scale: float
    specs: Tuple[TopicSpec, ...]
    proxies: Tuple[ProxyGroup, ...]

    @property
    def topic_count(self) -> int:
        return len(self.specs)

    def specs_of_category(self, category: int) -> List[TopicSpec]:
        return [spec for spec in self.specs if spec.category == category]

    def message_rate(self) -> float:
        """Aggregate creation rate (messages/second) of the topic set."""
        return sum(1.0 / spec.period for spec in self.specs)


def _chunks(items: Sequence, size: int):
    for start in range(0, len(items), size):
        yield items[start:start + size]


def build_workload(paper_total: int, scale: float = 1.0,
                   publisher_hosts: int = 2) -> Workload:
    """Generate the topic set and proxy grouping for one workload point.

    ``paper_total`` is the paper's topic count (e.g. 7525); categories 2-4
    are scaled by ``scale`` (rounded), categories 0/1/5 keep their paper
    populations so the latency-critical and cloud paths stay represented.
    """
    if paper_total < 25:
        raise ValueError("paper_total must be at least 25 (the fixed categories)")
    if (paper_total - 25) % 3 != 0:
        raise ValueError("paper_total - 25 must divide evenly across categories 2-4")
    if scale <= 0 or scale > 1:
        raise ValueError("scale must be in (0, 1]")
    per_sensor_category = (paper_total - 25) // 3
    scaled_sensor = max(1, round(per_sensor_category * scale))

    counts = dict(_FIXED_COUNTS)
    for category in (2, 3, 4):
        counts[category] = scaled_sensor

    specs: List[TopicSpec] = []
    proxies: List[ProxyGroup] = []
    next_topic_id = 0
    next_host = 0
    for category in sorted(counts):
        cat_spec = CATEGORIES[category]
        cat_topics = []
        for _ in range(counts[category]):
            cat_topics.append(cat_spec.make_topic(next_topic_id))
            next_topic_id += 1
        specs.extend(cat_topics)
        for index, group in enumerate(_chunks(cat_topics, cat_spec.topics_per_proxy)):
            proxies.append(ProxyGroup(
                publisher_id=f"pub-c{category}-{index}",
                specs=tuple(group),
                host_index=next_host % publisher_hosts,
            ))
            next_host += 1

    return Workload(
        name=f"{paper_total}-topics" + (f"@{scale:g}" if scale != 1.0 else ""),
        paper_total=paper_total,
        scale=scale,
        specs=tuple(specs),
        proxies=tuple(proxies),
    )
