"""Workload generation: the Table 2 topic categories and evaluation sweeps."""

from repro.workloads.spec import (
    CATEGORIES,
    PAPER_WORKLOADS,
    CategorySpec,
    ProxyGroup,
    Workload,
    build_workload,
)

__all__ = [
    "CATEGORIES",
    "CategorySpec",
    "PAPER_WORKLOADS",
    "ProxyGroup",
    "Workload",
    "build_workload",
]
