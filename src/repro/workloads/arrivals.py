"""Sporadic arrival-pattern models for publisher proxies.

The paper's traffic model is *sporadic*: inter-creation times are at
least the topic period ``Ti`` (Sec. III-A).  Lemma 1's proof depends on
that lower bound, so every model here guarantees ``gap >= Ti`` by
construction — they differ only in how much extra idle time they insert
and how it clusters.

* :class:`PeriodicJitter` — the default: ``Ti * (1 + U[0, jitter])``.
* :class:`SporadicExponential` — ``Ti`` plus an exponential idle excess
  (memoryless sensors that fire when something happens).
* :class:`BurstyArrivals` — alternates dense phases (gaps at exactly
  ``Ti``) with idle phases (multiples of ``Ti``), modeling event showers.
"""

from __future__ import annotations


class ArrivalModel:
    """Interface: ``next_gap(rng, period) -> seconds`` with gap >= period."""

    def next_gap(self, rng, period: float) -> float:
        raise NotImplementedError


class PeriodicJitter(ArrivalModel):
    """Nearly periodic traffic with a small uniform positive jitter."""

    def __init__(self, jitter_fraction: float = 0.01):
        if jitter_fraction < 0:
            raise ValueError("jitter_fraction must be >= 0")
        self.jitter_fraction = jitter_fraction

    def next_gap(self, rng, period: float) -> float:
        return period * (1.0 + rng.uniform(0.0, self.jitter_fraction))


class SporadicExponential(ArrivalModel):
    """``Ti`` plus exponential idle excess with mean ``excess_mean * Ti``."""

    def __init__(self, excess_mean: float = 0.5):
        if excess_mean < 0:
            raise ValueError("excess_mean must be >= 0")
        self.excess_mean = excess_mean

    def next_gap(self, rng, period: float) -> float:
        if self.excess_mean == 0:
            return period
        return period + rng.expovariate(1.0 / (self.excess_mean * period))


class BurstyArrivals(ArrivalModel):
    """Event showers: runs of back-to-back messages separated by idles.

    During a burst, gaps are exactly ``Ti`` (the sporadic minimum — the
    hardest case for the broker); between bursts the source idles for
    ``idle_periods`` periods on average (geometrically distributed burst
    lengths keep the model memoryless per call).
    """

    def __init__(self, burst_length_mean: float = 5.0,
                 idle_periods: float = 10.0):
        if burst_length_mean < 1.0:
            raise ValueError("burst_length_mean must be >= 1")
        if idle_periods < 0:
            raise ValueError("idle_periods must be >= 0")
        self.burst_length_mean = burst_length_mean
        self.idle_periods = idle_periods

    def next_gap(self, rng, period: float) -> float:
        continue_burst = rng.random() < 1.0 - 1.0 / self.burst_length_mean
        if continue_burst:
            return period
        return period * (1.0 + rng.uniform(0.5, 1.5) * self.idle_periods)
