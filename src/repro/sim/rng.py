"""Named, reproducible random-number streams.

Every source of randomness in a simulation (per-publisher jitter, per-link
latency, fault timing, ...) draws from its own named stream.  Streams are
derived from the master seed and the stream name only, so adding a new
component never perturbs the draws of existing components — a property the
determinism tests rely on.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, stream: str) -> int:
    """Derive a 64-bit child seed from ``(master_seed, stream)``.

    Uses BLAKE2b rather than ``hash()`` because the latter is salted per
    interpreter run (PYTHONHASHSEED) and would break reproducibility.
    """
    digest = hashlib.blake2b(
        f"{master_seed}/{stream}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class RngRegistry:
    """A registry of named ``random.Random`` streams under one master seed."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __len__(self) -> int:
        return len(self._streams)
