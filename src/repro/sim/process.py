"""Generator-based simulation processes and synchronization primitives.

A process is a Python generator driven by the engine.  It suspends by
yielding a *waitable*:

* :class:`Timeout` — resume after a simulated delay (models busy time or
  sleeping),
* :class:`Signal` — a one-shot event carrying a value (late waiters resume
  immediately),
* :class:`Notify` — a repeating wake-up broadcast,
* :class:`Queue` — an unbounded FIFO with blocking ``get()``,
* :class:`AnyOf` / :class:`AllOf` — composition of the above.

Processes are killable (fail-stop crashes are modeled by killing every
process on a host); a killed process never resumes, and any timer it was
waiting on is cancelled.  Stale wake-ups are guarded by a per-process wait
epoch, so primitives may be conservative about bookkeeping without risk of
double-resuming a process.

Hot-path design: the direct-yield paths (``Timeout``, ``Signal``,
``Queue``) subscribe without allocating a per-wait closure — they record
the waiting ``(process, epoch)`` pair and resume it through the engine's
same-time ready queue (:meth:`Engine._soon`) or unchecked timer path
(:meth:`Engine._after`).  The closure-based ``_add_callback`` interface
remains for composition (:class:`AnyOf` / :class:`AllOf`), which is off
the per-message path.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Any, Callable, Iterator, List, Sequence, Tuple

from repro.sim.engine import ScheduledCall


class ProcessKilled(Exception):
    """Raised by :meth:`Process.result` when the process was killed."""


class Waitable:
    """Base interface for objects a process may ``yield``."""

    def _add_callback(self, fn: Callable[[Any], None]) -> None:
        raise NotImplementedError

    def _subscribe(self, proc: "Process") -> None:
        epoch = proc._epoch
        engine = proc.engine

        def _wake(value: Any) -> None:
            engine._soon(proc._resume, epoch, value)

        self._add_callback(_wake)


class Timeout(Waitable):
    """Resume the waiting process after ``delay`` seconds, with ``value``."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        self.delay = delay
        self.value = value

    def _subscribe(self, proc: "Process") -> None:
        # The delay was validated at construction, so the unchecked engine
        # path is safe; the handle is kept for cancellation on kill().
        proc._pending = proc.engine._after(self.delay, proc._resume,
                                          proc._epoch, self.value)

    def _add_callback(self, fn: Callable[[Any], None]) -> None:
        # Only used through composition (AnyOf/AllOf), where the composite
        # supplies the engine context via a bound callback.
        raise NotImplementedError("bare Timeout supports only direct yield; wrap in AnyOf/AllOf")


class Signal(Waitable):
    """A one-shot event.  ``fire(value)`` wakes all waiters with ``value``.

    A process that yields an already-fired signal resumes immediately with
    the stored value, so there is no race between firing and waiting.

    Waiters are kept in one list in subscription order: direct process
    waiters as ``(process, epoch)`` pairs, composite subscribers as bare
    callbacks.  ``fire`` walks that single list, so the wake-up order (and
    therefore the engine seq order) is exactly the subscription order,
    whichever mix of waiter kinds subscribed.
    """

    __slots__ = ("engine", "fired", "value", "_callbacks")

    def __init__(self, engine):
        self.engine = engine
        self.fired = False
        self.value: Any = None
        self._callbacks: List[Any] = []

    def fire(self, value: Any = None) -> None:
        if self.fired:
            raise RuntimeError("Signal fired twice")
        self.fired = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        soon = self.engine._soon
        for item in callbacks:
            if item.__class__ is tuple:
                proc, epoch = item
                soon(proc._resume, epoch, value)
            else:
                item(value)

    def _subscribe(self, proc: "Process") -> None:
        if self.fired:
            proc.engine._soon(proc._resume, proc._epoch, self.value)
        else:
            self._callbacks.append((proc, proc._epoch))

    def _add_callback(self, fn: Callable[[Any], None]) -> None:
        if self.fired:
            fn(self.value)
        else:
            self._callbacks.append(fn)


class Notify(Waitable):
    """A repeating broadcast: each ``notify(value)`` wakes current waiters."""

    __slots__ = ("engine", "_callbacks")

    def __init__(self, engine):
        self.engine = engine
        self._callbacks: List[Any] = []

    def notify(self, value: Any = None) -> None:
        callbacks, self._callbacks = self._callbacks, []
        soon = self.engine._soon
        for item in callbacks:
            if item.__class__ is tuple:
                proc, epoch = item
                soon(proc._resume, epoch, value)
            else:
                item(value)

    def _subscribe(self, proc: "Process") -> None:
        self._callbacks.append((proc, proc._epoch))

    def _add_callback(self, fn: Callable[[Any], None]) -> None:
        self._callbacks.append(fn)


class _QueueGet(Waitable):
    __slots__ = ("queue",)

    def __init__(self, queue: "Queue"):
        self.queue = queue

    def _subscribe(self, proc: "Process") -> None:
        q = self.queue
        if q._items:
            proc.engine._soon(proc._resume, proc._epoch, q._items.popleft())
        else:
            q._getters.append((proc, proc._epoch))


class Queue:
    """An unbounded FIFO queue with blocking ``get()``.

    ``put`` never blocks.  When getters are waiting, an item is handed to
    the oldest live getter; otherwise it is buffered.
    """

    __slots__ = ("engine", "_items", "_getters")

    def __init__(self, engine):
        self.engine = engine
        self._items: deque = deque()
        self._getters: deque = deque()  # (process, epoch) pairs

    def put(self, item: Any) -> None:
        getters = self._getters
        while getters:
            proc, epoch = getters.popleft()
            if proc.alive and epoch == proc._epoch:
                self.engine._soon(proc._resume, epoch, item)
                return
        self._items.append(item)

    def get(self) -> _QueueGet:
        """Return a waitable that resolves to the next item (FIFO)."""
        return _QueueGet(self)

    def try_get(self) -> Tuple[bool, Any]:
        """Non-blocking pop: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None

    def __len__(self) -> int:
        return len(self._items)


class AnyOf(Waitable):
    """Wait until any one of several waitables resolves.

    Resolves to ``(index, value)`` of the first waitable to complete.  The
    losers' wake-ups are absorbed, and losing :class:`Timeout` timers are
    *cancelled* on resolution so they do not linger on the event heap as
    garbage — poll-with-timeout loops (e.g. the failure detector) would
    otherwise accumulate one dead timer per round.
    """

    def __init__(self, engine, waitables: Sequence[Waitable]):
        if not waitables:
            raise ValueError("AnyOf requires at least one waitable")
        self.engine = engine
        self.waitables = list(waitables)

    def _add_callback(self, fn: Callable[[Any], None]) -> None:
        resolved = [False]
        timers: List[Any] = []

        def make_winner(index: int) -> Callable[[Any], None]:
            def winner(value: Any) -> None:
                if resolved[0]:
                    return
                resolved[0] = True
                for timer in timers:
                    if timer is not None and not timer.cancelled:
                        timer.cancel()
                fn((index, value))

            return winner

        for index, waitable in enumerate(self.waitables):
            if isinstance(waitable, Timeout):
                # _after, not call_after: the delay was validated when the
                # Timeout was built, and the handle is what lets the winner
                # cancel losing timers.
                timers.append(self.engine._after(
                    waitable.delay, make_winner(index), waitable.value))
            else:
                timers.append(None)
                waitable._add_callback(make_winner(index))


class AllOf(Waitable):
    """Wait until every member waitable resolves; value is the list of values."""

    def __init__(self, engine, waitables: Sequence[Waitable]):
        if not waitables:
            raise ValueError("AllOf requires at least one waitable")
        self.engine = engine
        self.waitables = list(waitables)

    def _add_callback(self, fn: Callable[[Any], None]) -> None:
        remaining = [len(self.waitables)]
        values: List[Any] = [None] * len(self.waitables)

        def make_collector(index: int) -> Callable[[Any], None]:
            def collector(value: Any) -> None:
                values[index] = value
                remaining[0] -= 1
                if remaining[0] == 0:
                    fn(values)

            return collector

        for index, waitable in enumerate(self.waitables):
            if isinstance(waitable, Timeout):
                self.engine.call_after(waitable.delay, make_collector(index), waitable.value)
            else:
                waitable._add_callback(make_collector(index))


class Process:
    """A running simulation process wrapping a generator.

    The process is started on the next engine step after construction.  Use
    :attr:`done` (a :class:`Signal`) to join on completion; :attr:`value`
    holds the generator's return value once finished.
    """

    __slots__ = ("engine", "gen", "name", "host", "alive", "killed", "value", "done",
                 "_epoch", "_pending", "_send")

    def __init__(self, engine, gen: Iterator, name: str = "", host=None):
        self.engine = engine
        self.gen = gen
        self._send = gen.send
        self.name = name or getattr(gen, "__name__", "process")
        self.host = host
        self.alive = True
        self.killed = False
        self.value: Any = None
        self.done = Signal(engine)
        self._epoch = 0
        self._pending = None
        engine._processes.append(self)
        if host is not None:
            host._attach(self)
        engine._soon(self._resume, 0, None)

    # ------------------------------------------------------------------
    def _resume(self, epoch: int, value: Any) -> None:
        if not self.alive or epoch != self._epoch:
            return
        self._pending = None
        try:
            item = self._send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._epoch = epoch = epoch + 1
        if item.__class__ is Timeout:
            # Inlined Timeout._subscribe/Engine._after: a timed sleep is the
            # single most common yield, so skip two call frames.  The delay
            # was validated at Timeout construction; the handle is kept for
            # cancellation on kill().
            engine = self.engine
            time = engine.now + item.delay
            engine._seq = seq = engine._seq + 1
            resume = self._resume
            args = (epoch, item.value)
            self._pending = call = ScheduledCall(time, seq, resume, args,
                                                 engine=engine)
            heappush(engine._heap, (time, seq, call, resume, args))
            return
        try:
            subscribe = item._subscribe
        except AttributeError:
            raise TypeError(
                f"process {self.name!r} yielded {item!r}; processes must "
                f"yield Waitable objects"
            ) from None
        subscribe(self)

    def _finish(self, value: Any) -> None:
        self.alive = False
        self.value = value
        if self.host is not None:
            self.host._detach(self)
        self.done.fire(value)

    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Stop the process immediately (fail-stop).  Idempotent."""
        if not self.alive:
            return
        self.alive = False
        self.killed = True
        self._epoch += 1
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self.gen.close()
        if self.host is not None:
            self.host._detach(self)
        self.done.fire(None)

    def result(self) -> Any:
        """Return value of a finished process; raises if killed or running."""
        if self.killed:
            raise ProcessKilled(f"process {self.name!r} was killed")
        if self.alive:
            raise RuntimeError(f"process {self.name!r} is still running")
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else ("killed" if self.killed else "done")
        return f"<Process {self.name!r} {state}>"
