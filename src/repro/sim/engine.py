"""The discrete-event engine: an event heap and a simulated clock.

The engine executes callbacks in nondecreasing simulated-time order.  Ties
are broken by insertion order, which makes every run fully deterministic.
Time is a ``float`` number of seconds; the helpers in
:mod:`repro.core.units` convert the paper's millisecond parameters.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Iterator, Optional

from repro.sim.rng import RngRegistry


class ScheduledCall:
    """A cancellable handle for a callback scheduled on the engine."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_engine")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple,
                 engine: Optional["Engine"] = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the callback from running.  Safe to call repeatedly."""
        if self.cancelled:
            return
        self.cancelled = True
        # While still on the heap, the owning engine counts this tombstone
        # so pending_events()/peek_time() stay O(1) and the heap can compact
        # when cancellations dominate.  Popped calls have no engine backref.
        engine = self._engine
        if engine is not None:
            engine._note_cancel()

    def __lt__(self, other: "ScheduledCall") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledCall t={self.time:.6f} seq={self.seq} {state} {self.fn!r}>"


class Engine:
    """A deterministic discrete-event simulation engine.

    Responsibilities:

    * maintain the simulated clock (:attr:`now`, seconds),
    * order and run scheduled callbacks (:meth:`call_at`, :meth:`call_after`,
      :meth:`call_soon`),
    * spawn generator-based processes (:meth:`spawn`, see
      :mod:`repro.sim.process`),
    * hand out named, reproducible random streams (:meth:`rng`).

    The engine stops when the heap drains or when the ``until`` horizon of
    :meth:`run` is reached, whichever comes first.
    """

    #: Compaction policy for lazily-deleted (cancelled) heap entries: rebuild
    #: once at least ``_COMPACT_MIN`` tombstones accumulate *and* they make up
    #: more than half the heap.  Rebuilding is O(n) and resets the tombstone
    #: count to zero, so total compaction work stays amortized O(1) per cancel.
    _COMPACT_MIN = 64

    def __init__(self, seed: int = 0, start_time: float = 0.0):
        self.now: float = start_time
        self._heap: list[ScheduledCall] = []
        self._seq: int = 0
        self._cancelled: int = 0    # tombstones still sitting on the heap
        self._rngs = RngRegistry(seed)
        self.seed = seed
        self._running = False
        self._processes: list = []  # populated by Process for bookkeeping

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Schedule ``fn(*args)`` at absolute simulated ``time``.

        Scheduling in the past is an error: allowing it would silently
        reorder cause and effect.
        """
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} before now={self.now}")
        self._seq += 1
        call = ScheduledCall(time, self._seq, fn, args, engine=self)
        heapq.heappush(self._heap, call)
        return call

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Schedule ``fn(*args)`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.call_at(self.now + delay, fn, *args)

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Schedule ``fn(*args)`` at the current time, after queued events."""
        return self.call_at(self.now, fn, *args)

    # ------------------------------------------------------------------
    # Processes and randomness
    # ------------------------------------------------------------------
    def spawn(self, generator: Iterator, name: str = "", host=None):
        """Start a generator-based process.  See :class:`repro.sim.process.Process`."""
        from repro.sim.process import Process

        return Process(self, generator, name=name, host=host)

    def rng(self, stream: str):
        """Return the named random stream (a ``random.Random``).

        The same ``(seed, stream)`` pair always yields the same sequence,
        independent of how many other streams exist or in what order they
        were created.
        """
        return self._rngs.stream(stream)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next event.  Returns ``False`` if the heap is empty."""
        heap = self._heap
        while heap:
            call = heapq.heappop(heap)
            call._engine = None
            if call.cancelled:
                self._cancelled -= 1
                continue
            self.now = call.time
            call.fn(*call.args)
            return True
        return False

    def run(self, until: float = math.inf) -> float:
        """Run events until the heap drains or simulated time reaches ``until``.

        Returns the simulated time at which execution stopped.  When the
        horizon is reached, the clock is advanced exactly to ``until`` so
        measurement windows line up.
        """
        if self._running:
            raise RuntimeError("engine is already running (re-entrant run())")
        self._running = True
        heap = self._heap
        try:
            while heap:
                call = heap[0]
                if call.time > until:
                    break
                heapq.heappop(heap)
                call._engine = None
                if call.cancelled:
                    self._cancelled -= 1
                    continue
                self.now = call.time
                call.fn(*call.args)
        finally:
            self._running = False
        # math.isfinite, not an identity check against math.inf: a caller
        # may pass float("inf"), which is a distinct object.
        if math.isfinite(until) and self.now < until:
            self.now = until
        return self.now

    def pending_events(self) -> int:
        """Number of scheduled (non-cancelled) events still on the heap."""
        return len(self._heap) - self._cancelled

    def peek_time(self) -> Optional[float]:
        """Simulated time of the next runnable event, or ``None`` if drained.

        Amortized O(1): cancelled heads are popped off (each cancelled call
        is evicted at most once over the engine's lifetime), and the live
        head is by the heap invariant the true minimum.
        """
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)._engine = None
            self._cancelled -= 1
        return heap[0].time if heap else None

    # ------------------------------------------------------------------
    # Lazy-deletion bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        self._cancelled += 1
        if (self._cancelled >= self._COMPACT_MIN
                and self._cancelled * 2 > len(self._heap)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        ``__lt__`` is a total order over ``(time, seq)``, so re-heapifying
        the surviving calls cannot change the pop order: determinism is
        preserved bit-for-bit.
        """
        self._heap = [call for call in self._heap if not call.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
