"""The discrete-event engine: an event heap, a same-time ready queue, and
a simulated clock.

The engine executes callbacks in nondecreasing simulated-time order.  Ties
are broken by insertion order, which makes every run fully deterministic.
Time is a ``float`` number of seconds; the helpers in
:mod:`repro.core.units` convert the paper's millisecond parameters.

Performance notes
-----------------

The event store is split in two:

* a **binary heap** of ``(time, seq, call, fn, args)`` tuples for events in
  the future.  Keying the heap by the ``(time, seq)`` tuple prefix keeps
  every sift comparison inside the C tuple-comparison fast path — no
  per-comparison Python ``__lt__`` dispatch.  ``seq`` is unique, so the
  comparison never reaches the non-comparable payload elements.
* a **ready deque** for events scheduled at the *current* time
  (:meth:`call_soon` and the internal :meth:`_soon`).  Same-time events
  dominate event volume (process resumes, queue hand-offs, signal fires),
  and a deque append/popleft is O(1) versus O(log n) heap sifting.

Both stores order events by the same global ``(time, seq)`` key, and the
dispatch loop merges them by exactly that key, so the execution order is
bit-for-bit identical to a single-heap engine: the split is invisible to
simulation results (same seed ⇒ same trace ⇒ same cell digests).

Internal schedulers (:meth:`_soon`, :meth:`_at`, :meth:`_after`) skip
argument validation and — except for :meth:`_after`, whose callers need a
cancellable timer — do not allocate a :class:`ScheduledCall` handle, which
removes one object allocation per event on the hot paths.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Any, Callable, Iterator, Optional

from repro.sim.rng import RngRegistry


class ScheduledCall:
    """A cancellable handle for a callback scheduled on the engine."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_engine")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple,
                 engine: Optional["Engine"] = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the callback from running.  Safe to call repeatedly."""
        if self.cancelled:
            return
        self.cancelled = True
        # While still queued, the owning engine counts this tombstone so
        # pending_events()/peek_time() stay O(1) and the stores can compact
        # when cancellations dominate.  Popped calls have no engine backref.
        engine = self._engine
        if engine is not None:
            engine._note_cancel()

    def __lt__(self, other: "ScheduledCall") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledCall t={self.time:.6f} seq={self.seq} {state} {self.fn!r}>"


class Engine:
    """A deterministic discrete-event simulation engine.

    Responsibilities:

    * maintain the simulated clock (:attr:`now`, seconds),
    * order and run scheduled callbacks (:meth:`call_at`, :meth:`call_after`,
      :meth:`call_soon`),
    * spawn generator-based processes (:meth:`spawn`, see
      :mod:`repro.sim.process`),
    * hand out named, reproducible random streams (:meth:`rng`).

    The engine stops when both event stores drain or when the ``until``
    horizon of :meth:`run` is reached, whichever comes first.
    """

    #: Compaction policy for lazily-deleted (cancelled) entries: rebuild
    #: once at least ``_COMPACT_MIN`` tombstones accumulate *and* they make up
    #: more than half the queued events.  Rebuilding is O(n) and resets the
    #: tombstone count to zero, so total compaction work stays amortized O(1)
    #: per cancel.
    _COMPACT_MIN = 64

    __slots__ = ("now", "_heap", "_ready", "_seq", "_cancelled", "_rngs",
                 "seed", "_running", "_processes", "_tracer")

    def __init__(self, seed: int = 0, start_time: float = 0.0):
        self.now: float = start_time
        # Set by repro.sim.trace.Tracer.install; hot paths test
        # ``engine._tracer is not None`` with a plain attribute load.
        self._tracer = None
        # Future events: (time, seq, call-or-None, fn, args) tuples.
        self._heap: list = []
        # Events at the current time, appended in seq order; drained before
        # the clock may advance, so every entry's time equals ``now``.
        self._ready: deque = deque()
        self._seq: int = 0
        self._cancelled: int = 0    # tombstones still sitting in the stores
        self._rngs = RngRegistry(seed)
        self.seed = seed
        self._running = False
        self._processes: list = []  # populated by Process for bookkeeping

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Schedule ``fn(*args)`` at absolute simulated ``time``.

        Scheduling in the past is an error: allowing it would silently
        reorder cause and effect.
        """
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} before now={self.now}")
        self._seq = seq = self._seq + 1
        call = ScheduledCall(time, seq, fn, args, engine=self)
        heapq.heappush(self._heap, (time, seq, call, fn, args))
        return call

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Schedule ``fn(*args)`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.call_at(self.now + delay, fn, *args)

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Schedule ``fn(*args)`` at the current time, after queued events."""
        now = self.now
        self._seq = seq = self._seq + 1
        call = ScheduledCall(now, seq, fn, args, engine=self)
        self._ready.append((now, seq, call, fn, args))
        return call

    # ------------------------------------------------------------------
    # Internal fast paths: no validation, and (except _after) no handle.
    # Callers must guarantee time >= now / delay >= 0 and must not need to
    # cancel the event; ordering semantics are identical to the public API.
    # ------------------------------------------------------------------
    def _soon(self, fn: Callable[..., Any], *args: Any) -> None:
        """Uncancellable :meth:`call_soon` without handle allocation."""
        self._seq = seq = self._seq + 1
        self._ready.append((self.now, seq, None, fn, args))

    def _at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Uncancellable :meth:`call_at`; ``time >= now`` is the caller's
        contract (checked only under ``__debug__`` via tests)."""
        self._seq = seq = self._seq + 1
        heapq.heappush(self._heap, (time, seq, None, fn, args))

    def _after(self, delay: float, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Unchecked :meth:`call_after` returning a cancellable handle;
        ``delay >= 0`` is the caller's contract (e.g. ``Timeout`` validates
        at construction)."""
        time = self.now + delay
        self._seq = seq = self._seq + 1
        call = ScheduledCall(time, seq, fn, args, engine=self)
        heapq.heappush(self._heap, (time, seq, call, fn, args))
        return call

    # ------------------------------------------------------------------
    # Processes and randomness
    # ------------------------------------------------------------------
    def spawn(self, generator: Iterator, name: str = "", host=None):
        """Start a generator-based process.  See :class:`repro.sim.process.Process`."""
        from repro.sim.process import Process

        return Process(self, generator, name=name, host=host)

    def rng(self, stream: str):
        """Return the named random stream (a ``random.Random``).

        The same ``(seed, stream)`` pair always yields the same sequence,
        independent of how many other streams exist or in what order they
        were created.
        """
        return self._rngs.stream(stream)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next event.  Returns ``False`` if both stores are
        empty."""
        heap = self._heap
        ready = self._ready
        while True:
            if ready:
                # Ready entries sit at the current time; a heap entry can
                # only run first if it shares that time with a smaller seq.
                head = heap[0] if heap else None
                if (head is not None and head[0] == self.now
                        and head[1] < ready[0][1]):
                    entry = heapq.heappop(heap)
                else:
                    entry = ready.popleft()
            elif heap:
                entry = heapq.heappop(heap)
            else:
                return False
            time, _seq, call, fn, args = entry
            if call is not None:
                if call.cancelled:
                    self._cancelled -= 1
                    continue
                call._engine = None
            self.now = time
            fn(*args)
            return True

    def run(self, until: float = math.inf) -> float:
        """Run events until the stores drain or simulated time reaches
        ``until``.

        Returns the simulated time at which execution stopped.  When the
        horizon is reached, the clock is advanced exactly to ``until`` so
        measurement windows line up.
        """
        if self._running:
            raise RuntimeError("engine is already running (re-entrant run())")
        self._running = True
        heap = self._heap
        ready = self._ready
        heappop = heapq.heappop
        popleft = ready.popleft
        try:
            # The clock only advances in the heap branch, which respects the
            # horizon on its own — so after this one entry guard the ready
            # branch needs no ``until`` check at all (the heap head is never
            # earlier than ``now``, so ``now`` stays <= ``until`` throughout).
            # ``now`` mirrors ``self.now``; the heap branch below is the
            # only writer, so the mirror cannot go stale.
            now = self.now
            if now <= until:
                while True:
                    if ready:
                        # Merge by the global (time, seq) key: heap entries
                        # at the current time interleave with ready entries
                        # by seq.
                        if heap:
                            head = heap[0]
                            if head[0] == now and head[1] < ready[0][1]:
                                entry = heappop(heap)
                            else:
                                entry = popleft()
                        else:
                            entry = popleft()
                        call = entry[2]
                        if call is not None:
                            if call.cancelled:
                                self._cancelled -= 1
                                continue
                            call._engine = None
                        entry[3](*entry[4])
                    elif heap:
                        head = heap[0]
                        if head[0] > until:
                            break
                        entry = heappop(heap)
                        call = entry[2]
                        if call is not None:
                            if call.cancelled:
                                self._cancelled -= 1
                                continue
                            call._engine = None
                        self.now = now = entry[0]
                        entry[3](*entry[4])
                    else:
                        break
        finally:
            self._running = False
        # math.isfinite, not an identity check against math.inf: a caller
        # may pass float("inf"), which is a distinct object.
        if math.isfinite(until) and self.now < until:
            self.now = until
        return self.now

    def pending_events(self) -> int:
        """Number of scheduled (non-cancelled) events still queued."""
        return len(self._heap) + len(self._ready) - self._cancelled

    def peek_time(self) -> Optional[float]:
        """Simulated time of the next runnable event, or ``None`` if drained.

        Amortized O(1): cancelled heads are popped off (each cancelled call
        is evicted at most once over the engine's lifetime).  A live ready
        entry always runs no later than the heap head, and when both are at
        the same time they also share it — so its time is the answer.
        """
        ready = self._ready
        while ready:
            call = ready[0][2]
            if call is not None and call.cancelled:
                ready.popleft()
                call._engine = None
                self._cancelled -= 1
                continue
            return ready[0][0]
        heap = self._heap
        while heap:
            call = heap[0][2]
            if call is not None and call.cancelled:
                heapq.heappop(heap)
                call._engine = None
                self._cancelled -= 1
                continue
            return heap[0][0]
        return None

    # ------------------------------------------------------------------
    # Lazy-deletion bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        self._cancelled += 1
        if (self._cancelled >= self._COMPACT_MIN
                and self._cancelled * 2 > len(self._heap) + len(self._ready)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        ``(time, seq)`` is a total order, so re-heapifying the surviving
        entries cannot change the pop order: determinism is preserved
        bit-for-bit.  The ready deque is rebuilt in place, preserving its
        (already sorted) seq order.
        """
        # In place, so the dispatch loop's bound reference stays valid even
        # when a cancellation during run() triggers compaction.
        self._heap[:] = [entry for entry in self._heap
                         if entry[2] is None or not entry[2].cancelled]
        heapq.heapify(self._heap)
        if self._ready:
            live = [entry for entry in self._ready
                    if entry[2] is None or not entry[2].cancelled]
            self._ready.clear()
            self._ready.extend(live)
        self._cancelled = 0
