"""Structured event tracing for simulation debugging.

A :class:`Tracer` records labeled trace points emitted by application
code (brokers, actors) with their simulated timestamps.  It is opt-in and
zero-cost when absent: components call ``trace(...)`` through a module
function that no-ops unless a tracer is installed on the engine.

Typical use::

    tracer = Tracer.install(engine, capacity=10_000)
    ... run ...
    for record in tracer.query(kind="dispatch"):
        print(record)

Tracing also underpins the determinism tests: two runs with the same seed
must produce byte-identical traces.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterator, List, NamedTuple, Optional


class TraceRecord(NamedTuple):
    """One trace point."""

    time: float
    kind: str
    subject: str
    detail: Any


class Tracer:
    """A bounded in-memory trace buffer attached to an engine."""

    def __init__(self, engine, capacity: int = 100_000):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.engine = engine
        self.capacity = capacity
        self.records: Deque[TraceRecord] = deque(maxlen=capacity)
        self.dropped = 0

    @classmethod
    def install(cls, engine, capacity: int = 100_000) -> "Tracer":
        """Create a tracer and attach it to the engine (one per engine)."""
        tracer = cls(engine, capacity)
        engine._tracer = tracer
        return tracer

    @staticmethod
    def uninstall(engine) -> None:
        engine._tracer = None

    def record(self, kind: str, subject: str, detail: Any = None) -> None:
        if len(self.records) == self.capacity:
            self.dropped += 1
        self.records.append(TraceRecord(self.engine.now, kind, subject, detail))

    # ------------------------------------------------------------------
    def query(self, kind: Optional[str] = None,
              subject: Optional[str] = None) -> Iterator[TraceRecord]:
        """Records matching the given kind and/or subject, in time order."""
        for record in self.records:
            if kind is not None and record.kind != kind:
                continue
            if subject is not None and record.subject != subject:
                continue
            yield record

    def as_lines(self) -> List[str]:
        """Human-readable one-line-per-record rendering."""
        return [f"{r.time:.9f} {r.kind:<12} {r.subject} {r.detail if r.detail is not None else ''}".rstrip()
                for r in self.records]

    def __len__(self) -> int:
        return len(self.records)


def trace(engine, kind: str, subject: str, detail: Any = None) -> None:
    """Emit a trace point if a tracer is installed; otherwise a no-op."""
    tracer = engine._tracer
    if tracer is not None:
        tracer.record(kind, subject, detail)
