"""Crashable simulation hosts.

A :class:`Host` groups the processes of one machine so that a fail-stop
crash (the paper injects ``SIGKILL`` into the Primary broker) kills all of
them atomically.  The network layer consults :attr:`Host.alive` at delivery
time: packets addressed to a dead host vanish, exactly as with a crashed
OS.  Hosts also carry their local clock (attached by :mod:`repro.clocks`).
"""

from __future__ import annotations

from typing import List, Optional


class Host:
    """One machine in the simulated testbed."""

    def __init__(self, engine, name: str):
        self.engine = engine
        self.name = name
        self.alive = True
        self.crash_time: Optional[float] = None
        self.processes: List = []
        self.clock = None  # attached by repro.clocks.attach_clock

    # ------------------------------------------------------------------
    def _attach(self, proc) -> None:
        self.processes.append(proc)

    def _detach(self, proc) -> None:
        try:
            self.processes.remove(proc)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Fail-stop: kill every process on this host.  Idempotent.

        There is deliberately no restart: the paper's fault model promotes
        the Backup and never brings the failed Primary back within a run.
        """
        if not self.alive:
            return
        self.alive = False
        self.crash_time = self.engine.now
        for proc in list(self.processes):
            proc.kill()
        self.processes.clear()

    def now(self) -> float:
        """This host's local clock reading (true time if no clock attached).

        All application-level timestamps (message creation times, deadline
        bookkeeping) must go through this method so that clock offset and
        drift affect them the same way they would on real hardware.
        """
        if self.clock is None:
            return self.engine.now
        return self.clock.now()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.alive else f"crashed@{self.crash_time:.3f}"
        return f"<Host {self.name} {state}>"
