"""Measurement instruments for simulation runs.

These are deliberately simple containers; statistical reduction (means,
confidence intervals) lives in :mod:`repro.metrics.stats` so that the same
reduction code serves both simulated and wall-clock (runtime) data.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Tuple


class TimeSeries:
    """An append-only series of ``(time, value)`` samples."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def window(self, t0: float, t1: float) -> "TimeSeries":
        """Samples with ``t0 <= time < t1``, as a new series."""
        out = TimeSeries(self.name)
        for t, v in zip(self.times, self.values):
            if t0 <= t < t1:
                out.record(t, v)
        return out

    def min(self) -> float:
        return min(self.values)

    def max(self) -> float:
        return max(self.values)

    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values))


class Counter:
    """A windowed event counter.

    Counts every event, and separately counts events whose timestamp falls
    inside the measuring window (set once before the run).
    """

    __slots__ = ("name", "total", "in_window", "_t0", "_t1")

    def __init__(self, name: str = "", window: Optional[Tuple[float, float]] = None):
        self.name = name
        self.total = 0
        self.in_window = 0
        self._t0, self._t1 = window if window else (-math.inf, math.inf)

    def set_window(self, t0: float, t1: float) -> None:
        self._t0, self._t1 = t0, t1

    def increment(self, time: float, amount: int = 1) -> None:
        self.total += amount
        if self._t0 <= time < self._t1:
            self.in_window += amount


class UtilizationMeter:
    """Accumulates busy time of a module, clipped to the measuring window.

    ``capacity`` is the number of cores the module owns; ``utilization()``
    reports busy time as a fraction of ``capacity * window``, matching the
    per-module CPU utilization of the paper's Fig. 7.
    """

    __slots__ = ("name", "capacity", "busy", "_t0", "_t1")

    def __init__(self, name: str, capacity: float = 1.0,
                 window: Optional[Tuple[float, float]] = None):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.busy = 0.0
        self._t0, self._t1 = window if window else (-math.inf, math.inf)

    def set_window(self, t0: float, t1: float) -> None:
        self._t0, self._t1 = t0, t1

    def add_busy(self, start: float, end: float) -> None:
        """Record a busy interval; only the part inside the window counts."""
        # Branch-clamped rather than max()/min(): this runs for every
        # modeled operation, and the interval is usually inside the window.
        t0 = self._t0
        if start < t0:
            start = t0
        t1 = self._t1
        if end > t1:
            end = t1
        if end > start:
            self.busy += end - start

    def utilization(self) -> float:
        """Busy fraction of the module's total capacity over the window."""
        width = self._t1 - self._t0
        if not math.isfinite(width) or width <= 0:
            raise ValueError("utilization requires a finite measuring window")
        return self.busy / (width * self.capacity)


class WindowAccumulator:
    """Collects raw values stamped inside the measuring window."""

    __slots__ = ("name", "values", "_t0", "_t1")

    def __init__(self, name: str = "", window: Optional[Tuple[float, float]] = None):
        self.name = name
        self.values: List[float] = []
        self._t0, self._t1 = window if window else (-math.inf, math.inf)

    def set_window(self, t0: float, t1: float) -> None:
        self._t0, self._t1 = t0, t1

    def add(self, time: float, value: float) -> None:
        if self._t0 <= time < self._t1:
            self.values.append(value)

    def extend(self, time: float, values: Iterable[float]) -> None:
        if self._t0 <= time < self._t1:
            self.values.extend(values)

    def __len__(self) -> int:
        return len(self.values)
