"""Discrete-event simulation kernel.

This package provides the deterministic simulation substrate on which the
FRAME reproduction runs: an event-heap engine with a simulated clock
(:mod:`repro.sim.engine`), generator-based processes and synchronization
primitives (:mod:`repro.sim.process`), seeded random-number streams
(:mod:`repro.sim.rng`), crashable hosts (:mod:`repro.sim.host`), and
measurement helpers (:mod:`repro.sim.monitor`).

The kernel is intentionally paper-agnostic: nothing in here knows about
brokers, topics, or deadlines.  It is small, fast, and fully deterministic
for a given master seed, which is what lets the test suite assert exact
event traces.
"""

from repro.sim.engine import Engine, ScheduledCall
from repro.sim.host import Host
from repro.sim.monitor import Counter, TimeSeries, UtilizationMeter, WindowAccumulator
from repro.sim.process import (
    AllOf,
    AnyOf,
    Notify,
    Process,
    ProcessKilled,
    Queue,
    Signal,
    Timeout,
)
from repro.sim.rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Counter",
    "Engine",
    "Host",
    "Notify",
    "Process",
    "ProcessKilled",
    "Queue",
    "RngRegistry",
    "ScheduledCall",
    "Signal",
    "TimeSeries",
    "Timeout",
    "UtilizationMeter",
    "WindowAccumulator",
]
