"""Dispatch-replicate coordination state (paper Table 3 and Sec. IV-B).

Each message passing through the Primary owns a :class:`MessageEntry` in
the Message Buffer carrying the three flags of Table 3:

* ``dispatched`` — the message reached (all of) its subscribers,
* ``replicated`` — a copy reached the Backup,
* ``discard`` lives on the *Backup's* copy (see
  :class:`repro.core.buffers.BackupEntry`).

The algorithm itself (abort replication after dispatch, request a prune
after dispatch of a replicated message, skip discarded copies at recovery)
is executed by the broker's Message Delivery module; this module provides
the shared state plus the pure decision functions so they can be tested in
isolation.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.model import Message


class MessageEntry:
    """Coordination record for one message on the Primary."""

    __slots__ = ("message", "arrived_at", "dispatched", "replicated",
                 "wants_replication", "replicate_job", "dispatch_job")

    def __init__(self, message: Message, arrived_at: float, wants_replication: bool):
        self.message = message
        self.arrived_at = arrived_at
        self.dispatched = False
        self.replicated = False
        self.wants_replication = wants_replication
        self.replicate_job = None
        self.dispatch_job = None

    @property
    def settled(self) -> bool:
        """True when no further work can involve this entry.

        An entry settles when it has been dispatched and either never
        wanted replication or its replication already happened or was
        aborted (job cancelled).
        """
        if not self.dispatched:
            return False
        if not self.wants_replication:
            return True
        if self.replicated:
            return True
        job = self.replicate_job
        return job is None or job.cancelled


class MessageBuffer:
    """The Primary's Message Buffer: coordination entries keyed by message.

    Settled entries are released eagerly so that, unlike a time-based
    ring, memory tracks the amount of *outstanding* work (which is also
    what the paper's ring effectively holds under EDF).
    """

    def __init__(self):
        self._entries: Dict[Tuple[int, int], MessageEntry] = {}

    def insert(self, message: Message, arrived_at: float,
               wants_replication: bool) -> MessageEntry:
        entry = MessageEntry(message, arrived_at, wants_replication)
        self._entries[(message.topic_id, message.seq)] = entry
        return entry

    def get(self, topic_id: int, seq: int) -> Optional[MessageEntry]:
        return self._entries.get((topic_id, seq))

    def release_if_settled(self, entry: MessageEntry) -> bool:
        # ``entry.settled`` inlined: this runs once per delivery job.
        if not entry.dispatched:
            return False
        if entry.wants_replication and not entry.replicated:
            job = entry.replicate_job
            if job is not None and not job.cancelled:
                return False
        message = entry.message
        self._entries.pop((message.topic_id, message.seq), None)
        return True

    def __len__(self) -> int:
        return len(self._entries)


# ----------------------------------------------------------------------
# Pure decision functions (Table 3), unit-testable without a broker
# ----------------------------------------------------------------------
def should_abort_replication(entry: MessageEntry, coordination: bool) -> bool:
    """Replicate, step 1: with coordination on, abort when already dispatched."""
    return coordination and entry.dispatched


def should_request_prune(entry: MessageEntry, coordination: bool) -> bool:
    """Dispatch, step 3: with coordination on, ask the Backup to discard the
    copy if one has already been replicated."""
    return coordination and entry.replicated


def should_cancel_pending_replication(entry: MessageEntry, coordination: bool) -> bool:
    """Sec. IV-B: after dispatch, cancel a still-pending replication job."""
    if not coordination:
        return False
    job = entry.replicate_job
    return job is not None and not job.cancelled and not entry.replicated


def should_skip_at_recovery(discard: bool) -> bool:
    """Recovery, step 1: skip copies whose ``Discard`` flag is set."""
    return discard
