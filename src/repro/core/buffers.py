"""The three ring buffers of the FRAME architecture (Fig. 4).

* **Retention Buffer** (publisher side): the last ``Ni`` messages of each
  topic, re-sent to the Backup during fail-over.
* **Message Buffer** (Primary side): per-message coordination entries with
  the Table 3 flags; entries are released once the message needs no more
  work.
* **Backup Buffer** (Backup side): a bounded ring of message copies per
  topic with the ``Discard`` flag; only non-discarded copies are
  re-dispatched during recovery.

The paper implements all three as ring buffers; we keep that discipline
(bounded per-topic capacity, oldest evicted first) because the *size* of
the Backup Buffer is load-bearing for Fig. 9: without coordination the
recovery work is lower-bounded by the ring size.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Iterator, List, Optional

from repro.core.model import Message


class RingBuffer:
    """A bounded FIFO ring of messages (the publisher Retention Buffer).

    Appending beyond capacity evicts the oldest item.  Capacity 0 is legal
    and models a publisher with no retention (``Ni = 0``).
    """

    __slots__ = ("capacity", "_items")

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._items: Deque[Message] = deque(maxlen=capacity if capacity > 0 else 1)
        if capacity == 0:
            self._items = deque(maxlen=0)

    def append(self, message: Message) -> None:
        self._items.append(message)

    def snapshot(self) -> List[Message]:
        """The retained messages, oldest first."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Message]:
        return iter(self._items)


class BackupEntry:
    """One message copy held by the Backup, with its ``Discard`` flag."""

    __slots__ = ("message", "arrived_at", "discard")

    def __init__(self, message: Message, arrived_at: float):
        self.message = message
        self.arrived_at = arrived_at
        self.discard = False


class BackupBuffer:
    """Per-topic bounded rings of replicated message copies (Backup side).

    ``store`` inserts a copy (evicting the oldest copy of that topic when
    the ring is full); ``prune`` implements the coordination directive that
    sets ``Discard`` on a copy whose original has been dispatched.  Pruned
    entries stay in the ring (a flag flip is cheaper and matches Table 3,
    whose recovery step *skips* discarded copies rather than expecting them
    gone).
    """

    def __init__(self, capacity_per_topic: int):
        if capacity_per_topic <= 0:
            raise ValueError("backup buffer capacity must be positive")
        self.capacity_per_topic = capacity_per_topic
        self._rings: Dict[int, OrderedDict] = {}

    def store(self, message: Message, arrived_at: float) -> BackupEntry:
        ring = self._rings.get(message.topic_id)
        if ring is None:
            ring = OrderedDict()
            self._rings[message.topic_id] = ring
        if message.seq in ring:
            # Duplicate replica (possible during fail-over races): refresh.
            entry = ring[message.seq]
            entry.arrived_at = arrived_at
            return entry
        while len(ring) >= self.capacity_per_topic:
            ring.popitem(last=False)
        entry = BackupEntry(message, arrived_at)
        ring[message.seq] = entry
        return entry

    def prune(self, topic_id: int, seq: int) -> bool:
        """Set ``Discard`` on the copy of ``(topic, seq)``.

        Returns ``False`` when the copy is absent (already evicted or never
        replicated) — the directive is then a no-op, which is safe: absent
        copies cannot be re-dispatched anyway.
        """
        ring = self._rings.get(topic_id)
        if ring is None:
            return False
        entry = ring.get(seq)
        if entry is None:
            return False
        entry.discard = True
        return True

    def entries(self, topic_id: int) -> List[BackupEntry]:
        """All copies of a topic, oldest first (discarded ones included)."""
        ring = self._rings.get(topic_id)
        if ring is None:
            return []
        return list(ring.values())

    def all_entries(self) -> Iterator[BackupEntry]:
        """Every stored copy across topics, oldest first within each topic."""
        for topic_id in sorted(self._rings):
            yield from self._rings[topic_id].values()

    def live_count(self) -> int:
        """Number of non-discarded copies (what recovery must re-dispatch)."""
        return sum(1 for entry in self.all_entries() if not entry.discard)

    def total_count(self) -> int:
        return sum(len(ring) for ring in self._rings.values())

    def get(self, topic_id: int, seq: int) -> Optional[BackupEntry]:
        ring = self._rings.get(topic_id)
        if ring is None:
            return None
        return ring.get(seq)
