"""System-wide configuration for a FRAME deployment.

Bundles everything a broker needs at initialization (paper Sec. IV-A):
the topic specifications, the per-subscriber network estimates that feed
the pseudo deadlines, the evaluated policy, the service-cost model of the
broker modules, and the subscription map.

The :class:`CostModel` is the calibrated substitute for the paper's
i5-4590 broker hosts (see DESIGN.md §5): per-message CPU demands chosen so
that the overload crossovers land at the same workloads as the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.model import TopicSpec
from repro.core.policy import ConfigPolicy, FRAME
from repro.core.timing import DeadlineParameters
from repro.core.units import us


@dataclass(frozen=True)
class CostModel:
    """Per-item CPU service demands of the broker modules (seconds).

    The ``calibrated`` constructor scales demands inversely with the
    workload scale factor so that module utilization matches paper-scale
    runs (DESIGN.md §5).
    """

    proxy_per_message: float       # Message Proxy + Job Generator, per message
    dispatch: float                # Dispatcher, per message
    replicate: float               # Replicator, per message
    coordinate: float              # prune request after dispatch (coordination)
    backup_store: float            # Backup proxy, per replica stored
    backup_prune: float            # Backup proxy, per prune applied
    recovery_skip: float           # per discarded copy skipped at recovery
    recovery_select: float         # per live copy turned into a recovery job
    disk_write: float = 0.0        # synchronous journal write (disk strategies)

    @classmethod
    def calibrated(cls, scale: float = 1.0) -> "CostModel":
        """Demands calibrated for paper-scale (``scale=1``) workloads.

        With ``scale < 1`` the sensor-topic counts shrink by ``scale`` and
        demands grow by ``1/scale``, preserving utilization.
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        factor = 1.0 / scale
        return cls(
            proxy_per_message=us(6.5) * factor,
            dispatch=us(7.5) * factor,
            replicate=us(5.0) * factor,
            coordinate=us(14.9) * factor,
            backup_store=us(7.0) * factor,
            backup_prune=us(4.0) * factor,
            recovery_skip=us(1.0) * factor,
            recovery_select=us(7.0) * factor,
            disk_write=us(12.0) * factor,
        )

    def scaled(self, factor: float) -> "CostModel":
        """All demands multiplied by ``factor``.

        Used to apply per-run background OS load: the paper's testbed runs
        near the capacity knee at the highest workload, where a few percent
        of competing load decides whether a run degrades — that is what
        produces Table 4/5's wide confidence intervals at 13525 topics.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        return CostModel(
            proxy_per_message=self.proxy_per_message * factor,
            dispatch=self.dispatch * factor,
            replicate=self.replicate * factor,
            coordinate=self.coordinate * factor,
            backup_store=self.backup_store * factor,
            backup_prune=self.backup_prune * factor,
            recovery_skip=self.recovery_skip * factor,
            recovery_select=self.recovery_select * factor,
            disk_write=self.disk_write * factor,
        )


@dataclass
class SystemConfig:
    """Everything the brokers and actors need to run one deployment."""

    topics: Dict[int, TopicSpec]
    policy: ConfigPolicy = FRAME
    params: DeadlineParameters = field(default_factory=DeadlineParameters)
    costs: CostModel = field(default_factory=CostModel.calibrated)
    subscriptions: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    backup_buffer_capacity: int = 10
    delivery_workers: int = 2      # cores dedicated to Message Delivery

    def subscribers_of(self, topic_id: int) -> Tuple[str, ...]:
        return self.subscriptions.get(topic_id, ())

    @staticmethod
    def from_specs(specs: List[TopicSpec], **kwargs) -> "SystemConfig":
        """Build a config from a topic list, applying the policy's
        retention adjustment (FRAME+ raises ``Ni`` for selected categories)."""
        policy = kwargs.get("policy", FRAME)
        adjusted = policy.adjust_specs(specs)
        topics = {spec.topic_id: spec for spec in adjusted}
        if len(topics) != len(adjusted):
            raise ValueError("duplicate topic ids in spec list")
        return SystemConfig(topics=topics, **kwargs)
