"""Topics, messages, and requirement specifications (paper Sec. III-A/B).

A topic ``i`` carries four requirement parameters:

* ``period`` — the minimum inter-creation time ``Ti`` (sporadic traffic),
* ``deadline`` — the soft end-to-end latency bound ``Di``,
* ``loss_tolerance`` — ``Li``, the acceptable number of *consecutive*
  message losses (``LOSS_UNBOUNDED`` encodes ``Li = ∞``, best-effort),
* ``retention`` — ``Ni``, how many of its latest messages the publisher
  retains for re-sending during fail-over.

Messages are identified by ``(topic_id, seq)``; sequence numbers are
assigned by the publisher in creation order, which is what lets subscribers
detect and count consecutive losses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

#: Destination of a topic's subscriber(s), which selects the ΔBS estimate.
EDGE = "edge"
CLOUD = "cloud"

#: ``Li = ∞``: subscribers ask only for best-effort delivery (category 4).
LOSS_UNBOUNDED = math.inf


@dataclass(frozen=True)
class TopicSpec:
    """Requirement specification of one topic (one row of Table 2).

    All times are in seconds.  ``category`` tags the Table 2 category the
    topic was generated from (purely informational; the algorithms only
    look at the four requirement parameters and the destination).
    """

    topic_id: int
    period: float                 # Ti
    deadline: float               # Di
    loss_tolerance: float         # Li (int >= 0, or LOSS_UNBOUNDED)
    retention: int                # Ni
    destination: str = EDGE
    category: int = -1

    def __post_init__(self):
        if self.period <= 0:
            raise ValueError(f"topic {self.topic_id}: period must be positive")
        if self.deadline <= 0:
            raise ValueError(f"topic {self.topic_id}: deadline must be positive")
        if self.loss_tolerance != LOSS_UNBOUNDED and (
            self.loss_tolerance < 0 or self.loss_tolerance != int(self.loss_tolerance)
        ):
            raise ValueError(
                f"topic {self.topic_id}: loss tolerance must be a non-negative "
                f"integer or LOSS_UNBOUNDED"
            )
        if self.retention < 0:
            raise ValueError(f"topic {self.topic_id}: retention must be >= 0")
        if self.destination not in (EDGE, CLOUD):
            raise ValueError(f"topic {self.topic_id}: unknown destination {self.destination!r}")

    @property
    def best_effort(self) -> bool:
        """True when subscribers only ask for best-effort delivery (Li = ∞)."""
        return self.loss_tolerance == LOSS_UNBOUNDED

    def with_retention(self, retention: int) -> "TopicSpec":
        """A copy with a different publisher retention level ``Ni``."""
        return replace(self, retention=retention)


def merged_requirement(spec: TopicSpec,
                       subscriber_requirements) -> TopicSpec:
    """Fold multiple subscribers' requirements into one topic spec.

    The paper (Sec. III-B): "For multiple subscribers of the same topic,
    we choose the highest requirements among the subscribers" — i.e. the
    tightest deadline and the smallest loss tolerance.

    ``subscriber_requirements`` is an iterable of ``(deadline,
    loss_tolerance)`` pairs, one per subscriber.
    """
    requirements = list(subscriber_requirements)
    if not requirements:
        return spec
    deadline = min([spec.deadline] + [d for d, _ in requirements])
    loss = min([spec.loss_tolerance] + [l for _, l in requirements])
    return replace(spec, deadline=deadline, loss_tolerance=loss)


class Message:
    """One published message of a topic.

    ``created_at`` is stamped with the *publisher host's* clock, so clock
    synchronization error propagates into latency measurements exactly as
    on the paper's testbed.
    """

    __slots__ = ("topic_id", "seq", "created_at", "payload_size", "data")

    def __init__(self, topic_id: int, seq: int, created_at: float,
                 payload_size: int = 16, data: Optional[object] = None):
        self.topic_id = topic_id
        self.seq = seq
        self.created_at = created_at
        self.payload_size = payload_size
        self.data = data

    def key(self) -> tuple:
        """The identity used for dedup and coordination: ``(topic, seq)``."""
        return (self.topic_id, self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Message topic={self.topic_id} seq={self.seq} t={self.created_at:.6f}>"
