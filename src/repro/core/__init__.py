"""FRAME's core: the paper's primary contribution.

Subpackages:

* :mod:`repro.core.model` — topics, messages, requirement specs (Sec. III-A/B).
* :mod:`repro.core.timing` — Lemmas 1 and 2, Proposition 1, the admission
  test, and the deadline-ordering analysis of Sec. III-D.
* :mod:`repro.core.buffers` — the Message / Backup / Retention ring buffers.
* :mod:`repro.core.scheduling` — dispatch/replicate jobs and the EDF Job Queue.
* :mod:`repro.core.coordination` — the dispatch-replicate coordination flags
  and algorithm of Table 3.
* :mod:`repro.core.policy` — the four evaluated configurations (FRAME,
  FRAME+, FCFS, FCFS−).
* :mod:`repro.core.broker` — the broker engine (Message Proxy, Job
  Generator, Message Delivery, fault recovery) of Fig. 4.
"""

from repro.core.model import (
    CLOUD,
    EDGE,
    LOSS_UNBOUNDED,
    Message,
    TopicSpec,
)
from repro.core.policy import FCFS, FCFS_MINUS, FRAME, FRAME_PLUS, ConfigPolicy
from repro.core.timing import (
    AdmissionResult,
    DeadlineParameters,
    admission_test,
    deadline_order,
    dispatch_deadline,
    min_retention,
    needs_replication,
    replication_deadline,
    replication_suppressible,
)

__all__ = [
    "AdmissionResult",
    "CLOUD",
    "ConfigPolicy",
    "DeadlineParameters",
    "EDGE",
    "FCFS",
    "FCFS_MINUS",
    "FRAME",
    "FRAME_PLUS",
    "LOSS_UNBOUNDED",
    "Message",
    "TopicSpec",
    "admission_test",
    "deadline_order",
    "dispatch_deadline",
    "min_retention",
    "needs_replication",
    "replication_deadline",
    "replication_suppressible",
]
