"""Jobs and the EDF Job Queue (paper Sec. IV-A, Fig. 4).

The Message Proxy's Job Generator turns each message arrival into a
dispatch job and (when the topic needs it) a replication job, each with an
absolute deadline ``tp + Dd_i`` / ``tp + Dr_i``.  The Message Delivery
module's worker threads pop jobs in Earliest-Deadline-First order.

The queue supports **cancellation** (coordination cancels a pending
replication once its message is dispatched) via lazy deletion, the same
technique the paper's C++ ``priority_queue`` implementation requires.

For the FCFS baselines the same queue is used with every deadline set to
the arrival time, which degrades EDF into arrival order — this keeps the
compared configurations structurally identical, as in the paper.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Optional

from repro.sim.process import Waitable

DISPATCH = "dispatch"
REPLICATE = "replicate"


class Job:
    """A unit of Message Delivery work with an absolute EDF deadline."""

    __slots__ = ("kind", "entry", "deadline", "cost", "cancelled", "recovery")

    def __init__(self, kind: str, entry, deadline: float, cost: float,
                 recovery: bool = False):
        self.kind = kind
        self.entry = entry            # MessageEntry (dispatch/replicate) or BackupEntry
        self.deadline = deadline
        self.cost = cost
        self.cancelled = False
        self.recovery = recovery

    def cancel(self) -> None:
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = " cancelled" if self.cancelled else ""
        return f"<Job {self.kind} ddl={self.deadline:.6f}{flag}>"


class _JobGet(Waitable):
    __slots__ = ("queue",)

    def __init__(self, queue: "EDFJobQueue"):
        self.queue = queue

    def _subscribe(self, proc) -> None:
        # _pop_live inlined: one less call frame per worker pop.
        q = self.queue
        heap = q._heap
        while heap:
            job = heapq.heappop(heap)[2]
            if job.cancelled:
                q._cancelled_in_heap = max(0, q._cancelled_in_heap - 1)
                continue
            proc.engine._soon(proc._resume, proc._epoch, job)
            return
        q._getters.append((proc, proc._epoch))


class EDFJobQueue:
    """A blocking priority queue of jobs ordered by absolute deadline.

    Ties are broken by push order, which under the FCFS configurations
    (all deadlines equal to arrival time) yields exact arrival order —
    including the baselines' replicate-before-dispatch ordering, since the
    Job Generator pushes the replication job first.
    """

    def __init__(self, engine):
        self.engine = engine
        self._heap: list = []
        self._seq = 0
        self._getters: deque = deque()
        self._cancelled_in_heap = 0

    # ------------------------------------------------------------------
    def push(self, job: Job) -> None:
        if job.cancelled:
            return
        getters = self._getters
        while getters:
            proc, epoch = getters.popleft()
            if proc.alive and epoch == proc._epoch:
                self.engine._soon(proc._resume, epoch, job)
                return
        self._seq = seq = self._seq + 1
        heapq.heappush(self._heap, (job.deadline, seq, job))

    def pop(self) -> _JobGet:
        """Waitable resolving to the earliest-deadline live job."""
        return _JobGet(self)

    def _pop_live(self) -> Optional[Job]:
        heap = self._heap
        while heap:
            _, _, job = heapq.heappop(heap)
            if job.cancelled:
                self._cancelled_in_heap = max(0, self._cancelled_in_heap - 1)
                continue
            return job
        return None

    # ------------------------------------------------------------------
    def cancel(self, job: Job) -> None:
        """Lazily cancel a queued job; it will be skipped on pop."""
        if not job.cancelled:
            job.cancel()
            self._cancelled_in_heap += 1

    def __len__(self) -> int:
        """Number of live (non-cancelled) queued jobs."""
        return len(self._heap) - self._cancelled_in_heap

    def drained(self) -> bool:
        return len(self) == 0
