"""The four evaluated configurations (paper Sec. VI-A).

* **FRAME** — EDF scheduling by the Lemma 1/2 deadlines, selective
  replication (Proposition 1), dispatch-replicate coordination.
* **FRAME+** — FRAME with publisher retention raised by one for the
  categories that would otherwise need replication (the paper sets
  ``Ni = 2`` for categories 2 and 5), which lets Proposition 1 remove
  replication entirely.
* **FCFS** — the baseline: no differentiation, messages handled in arrival
  order, replication performed *before* dispatch for every message,
  coordination still on.
* **FCFS−** — FCFS without dispatch-replicate coordination.

A policy is pure configuration: the broker engine consults it but contains
all mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.core.model import TopicSpec

EDF = "edf"
ARRIVAL_ORDER = "arrival"


@dataclass(frozen=True)
class ConfigPolicy:
    """One system configuration under evaluation.

    ``retention_bonus`` is a tuple of ``(category, +Ni)`` pairs (a tuple,
    not a dict, so policies stay hashable and usable as cache keys).
    """

    name: str
    scheduling: str = EDF                       # EDF or ARRIVAL_ORDER
    selective_replication: bool = True          # apply Proposition 1
    coordination: bool = True                   # Table 3 algorithm
    replicate_before_dispatch: bool = False     # FCFS job ordering
    retention_bonus: Tuple[Tuple[int, int], ...] = ()
    #: Master switch for the backup-broker strategy.  Off for policies that
    #: tolerate loss some other way (e.g. local disk logging, Table 1).
    replication_enabled: bool = True
    #: Synchronously journal each message to the broker's local disk
    #: before dispatch (the "local disk" strategy of Table 1).
    disk_logging: bool = False

    def __post_init__(self):
        if self.scheduling not in (EDF, ARRIVAL_ORDER):
            raise ValueError(f"unknown scheduling policy {self.scheduling!r}")

    def retention_bonus_of(self, category: int) -> int:
        for cat, bonus in self.retention_bonus:
            if cat == category:
                return bonus
        return 0

    def adjust_specs(self, specs: Iterable[TopicSpec]) -> List[TopicSpec]:
        """Apply the policy's retention bonus to a topic set (FRAME+)."""
        adjusted = []
        for spec in specs:
            bonus = self.retention_bonus_of(spec.category)
            if bonus:
                spec = spec.with_retention(spec.retention + bonus)
            adjusted.append(spec)
        return adjusted


FRAME = ConfigPolicy(name="FRAME")

#: FRAME with one extra retained message for the categories the paper
#: boosts (2 and 5), removing the need for any replication (Sec. III-D.3).
FRAME_PLUS = ConfigPolicy(name="FRAME+", retention_bonus=((2, 1), (5, 1)))

FCFS = ConfigPolicy(
    name="FCFS",
    scheduling=ARRIVAL_ORDER,
    selective_replication=False,
    coordination=True,
    replicate_before_dispatch=True,
)

FCFS_MINUS = ConfigPolicy(
    name="FCFS-",
    scheduling=ARRIVAL_ORDER,
    selective_replication=False,
    coordination=False,
    replicate_before_dispatch=True,
)

#: The "local disk" strategy of Table 1 (Flink/Kafka/Spark-style local
#: journaling) in place of a Backup broker.  The paper declined to
#: evaluate it "because it performs relatively slowly"; this repo includes
#: it so that claim can be validated empirically (see the ablations).
DISK_LOG = ConfigPolicy(
    name="DiskLog",
    scheduling=EDF,
    selective_replication=True,      # irrelevant: replication is disabled
    coordination=False,
    replication_enabled=False,
    disk_logging=True,
)

#: The four configurations the paper evaluates (Tables 4-5, Figs 7/9).
ALL_POLICIES = (FRAME_PLUS, FRAME, FCFS, FCFS_MINUS)

#: Everything this library ships, including the extension strategies.
EXTENDED_POLICIES = ALL_POLICIES + (DISK_LOG,)


def policy_by_name(name: str) -> ConfigPolicy:
    for policy in EXTENDED_POLICIES:
        if policy.name.lower() == name.lower():
            return policy
    raise KeyError(f"unknown policy {name!r}; choose from "
                   f"{[p.name for p in EXTENDED_POLICIES]}")
