"""The paper's timing theory (Sec. III-C/D).

Implements, in the paper's notation:

* **Lemma 1** — a sufficient relative deadline for the *replication* job of
  topic ``i``::

      Dr_i = (Ni + Li) * Ti - dPB - dBB - x

  Meeting ``Dr_i`` guarantees the subscriber never sees more than ``Li``
  consecutive losses across a Primary crash, given that the publisher
  re-sends its ``Ni`` retained messages within fail-over time ``x``.

* **Lemma 2** — a sufficient relative deadline for the *dispatch* job::

      Dd_i = Di - dPB - dBS

* **Proposition 1 (selective replication)** — replication of topic ``i``
  may be suppressed when the system can meet ``Dd_i`` and ``Dd_i <= Dr_i``
  (a dispatched message no longer needs to be replicated).  The equivalent
  need-for-replication test is ``x + dBB - dBS > (Ni + Li) * Ti - Di``.

* The **admission test**: both ``Dr_i >= 0`` and ``Dd_i >= 0`` must hold.

The broker precomputes *pseudo* deadlines that leave out ``dPB`` (which is
only known per message, measured on arrival); the Job Generator subtracts
the measured ``dPB`` at run time — exactly the split described in
Sec. IV-A.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.core.model import CLOUD, EDGE, TopicSpec


@dataclass(frozen=True)
class DeadlineParameters:
    """The traffic/service parameters that feed Lemmas 1 and 2.

    ``delta_bs`` values are *estimates chosen at configuration time*: for
    edge subscribers a measured LAN bound, for cloud subscribers a measured
    **lower bound** (Sec. III-D.5 — a lower bound keeps Proposition 1 safe
    under cloud latency variation; Fig. 8 validates this).
    """

    delta_pb: float = 0.0           # publisher -> broker latency bound
    delta_bb: float = 0.0           # broker -> backup latency bound
    delta_bs_edge: float = 0.0      # broker -> edge subscriber latency
    delta_bs_cloud: float = 0.0     # broker -> cloud subscriber latency (lower bound)
    failover_time: float = 0.0      # x: publisher fail-over time

    def delta_bs(self, destination: str) -> float:
        if destination == EDGE:
            return self.delta_bs_edge
        if destination == CLOUD:
            return self.delta_bs_cloud
        raise ValueError(f"unknown destination {destination!r}")


# ----------------------------------------------------------------------
# Lemmas 1 and 2
# ----------------------------------------------------------------------
def replication_deadline(spec: TopicSpec, params: DeadlineParameters) -> float:
    """Lemma 1: relative deadline ``Dr_i`` for the replication job."""
    return (
        (spec.retention + spec.loss_tolerance) * spec.period
        - params.delta_pb
        - params.delta_bb
        - params.failover_time
    )


def dispatch_deadline(spec: TopicSpec, params: DeadlineParameters) -> float:
    """Lemma 2: relative deadline ``Dd_i`` for the dispatch job."""
    return spec.deadline - params.delta_pb - params.delta_bs(spec.destination)


def pseudo_replication_deadline(spec: TopicSpec, params: DeadlineParameters) -> float:
    """``Dr_i'`` of Sec. IV-A: Lemma 1 without the per-message ``dPB`` term."""
    return (
        (spec.retention + spec.loss_tolerance) * spec.period
        - params.delta_bb
        - params.failover_time
    )


def pseudo_dispatch_deadline(spec: TopicSpec, params: DeadlineParameters) -> float:
    """``Dd_i'`` of Sec. IV-A: Lemma 2 without the per-message ``dPB`` term."""
    return spec.deadline - params.delta_bs(spec.destination)


# ----------------------------------------------------------------------
# Proposition 1 and the replication decision
# ----------------------------------------------------------------------
def replication_suppressible(spec: TopicSpec, params: DeadlineParameters) -> bool:
    """Proposition 1: replication may be suppressed when ``Dd_i <= Dr_i``.

    (The caller is responsible for the other half of the proposition's
    premise — that the system can actually meet ``Dd_i``, i.e. the topic
    set passed admission and the system is not overloaded.)
    """
    return dispatch_deadline(spec, params) <= replication_deadline(spec, params)


def replication_needed_inequality(spec: TopicSpec, params: DeadlineParameters) -> bool:
    """The paper's equivalent condition for *needing* replication:

    ``x + dBB - dBS > (Ni + Li) * Ti - Di``.
    """
    lhs = params.failover_time + params.delta_bb - params.delta_bs(spec.destination)
    rhs = (spec.retention + spec.loss_tolerance) * spec.period - spec.deadline
    return lhs > rhs


def needs_replication(spec: TopicSpec, params: DeadlineParameters) -> bool:
    """Whether FRAME creates replication jobs for this topic.

    Best-effort topics (``Li = ∞``) never need replication; otherwise the
    topic needs replication exactly when Proposition 1 cannot suppress it.
    """
    if spec.best_effort:
        return False
    return not replication_suppressible(spec, params)


# ----------------------------------------------------------------------
# Admission test (Sec. III-D.1)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AdmissionResult:
    """Outcome of the per-topic admission test."""

    admitted: bool
    replication_deadline: float   # Dr_i
    dispatch_deadline: float      # Dd_i
    reason: str = ""


def admission_test(spec: TopicSpec, params: DeadlineParameters) -> AdmissionResult:
    """Sec. III-D.1: admit a topic iff ``Dr_i >= 0`` and ``Dd_i >= 0``.

    Best-effort topics only need ``Dd_i >= 0`` (there is no replication
    requirement to violate; ``Dr_i`` is ``+inf`` for them anyway).
    """
    dr = replication_deadline(spec, params)
    dd = dispatch_deadline(spec, params)
    if dd < 0:
        return AdmissionResult(False, dr, dd,
                               "Dd < 0: end-to-end deadline unreachable (Lemma 2)")
    if dr < 0 and not spec.best_effort:
        return AdmissionResult(
            False, dr, dd,
            "Dr < 0: loss tolerance unreachable (Lemma 1); "
            "increase retention Ni or loosen Li",
        )
    return AdmissionResult(True, dr, dd)


def min_retention(spec: TopicSpec, params: DeadlineParameters) -> int:
    """Smallest ``Ni`` making the topic admissible (Table 2's fifth column).

    Solves ``(Ni + Li) * Ti - dPB - dBB - x >= 0`` for integer ``Ni >= 0``.
    Raises if the dispatch deadline itself is infeasible (no retention
    level can fix a violated Lemma 2).
    """
    if dispatch_deadline(spec, params) < 0:
        raise ValueError(
            f"topic {spec.topic_id}: Dd < 0 regardless of retention "
            f"(Di={spec.deadline} too tight for its network path)"
        )
    if spec.best_effort:
        return 0
    overhead = params.delta_pb + params.delta_bb + params.failover_time
    needed = overhead / spec.period - spec.loss_tolerance
    return max(0, math.ceil(needed - 1e-12))


# ----------------------------------------------------------------------
# Deadline ordering (Sec. III-D.2)
# ----------------------------------------------------------------------
def deadline_order(
    specs: Iterable[TopicSpec], params: DeadlineParameters
) -> List[Tuple[str, int, float]]:
    """The ordering of all dispatch/replication relative deadlines.

    Returns a list of ``(kind, topic_id, deadline)`` sorted ascending,
    where ``kind`` is ``"dispatch"`` or ``"replicate"``.  Replication
    entries appear only for topics that need replication, mirroring the
    discussion in Sec. III-D.2.  Ties keep dispatch before replication and
    lower topic ids first, so the ordering is total and reproducible.
    """
    entries: List[Tuple[str, int, float]] = []
    for spec in specs:
        entries.append(("dispatch", spec.topic_id, dispatch_deadline(spec, params)))
        if needs_replication(spec, params):
            entries.append(("replicate", spec.topic_id, replication_deadline(spec, params)))
    kind_rank = {"dispatch": 0, "replicate": 1}
    entries.sort(key=lambda e: (e[2], kind_rank[e[0]], e[1]))
    return entries


def replication_plan(
    specs: Iterable[TopicSpec], params: DeadlineParameters
) -> Dict[int, bool]:
    """Map ``topic_id -> needs replication`` for a whole topic set."""
    return {spec.topic_id: needs_replication(spec, params) for spec in specs}
