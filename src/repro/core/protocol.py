"""Wire-level message types exchanged between FRAME components.

These model the paper's data/control/failover paths (Fig. 4):

* :class:`PublishBatch` — publisher proxy -> broker ingress (each proxy
  sends one message per topic per period in a batch; during fail-over the
  same type carries the retained-message resend, flagged ``resend``).
* :class:`Deliver` — broker -> subscriber push.
* :class:`Replica` — Primary -> Backup replication.
* :class:`Prune` — Primary -> Backup coordination directive (sets the
  ``Discard`` flag, Table 3 Dispatch step 3).
* :class:`Ping` / :class:`Pong` — liveness polling used by the Backup's
  promotion detector and the publishers' fail-over detectors.
"""

from __future__ import annotations

from typing import List

from repro.core.model import Message


class PublishBatch:
    """A batch of freshly created (or resent) messages from one proxy."""

    __slots__ = ("publisher_id", "messages", "resend")

    def __init__(self, publisher_id: str, messages: List[Message], resend: bool = False):
        self.publisher_id = publisher_id
        self.messages = messages
        self.resend = resend

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "resend" if self.resend else "batch"
        return f"<PublishBatch {self.publisher_id} {kind} n={len(self.messages)}>"


class Deliver:
    """A message pushed from a broker to a subscriber."""

    __slots__ = ("message", "dispatched_at", "recovered")

    def __init__(self, message: Message, dispatched_at: float, recovered: bool = False):
        self.message = message
        self.dispatched_at = dispatched_at
        self.recovered = recovered


class Replica:
    """A message copy replicated from the Primary to the Backup."""

    __slots__ = ("message", "primary_arrived_at")

    def __init__(self, message: Message, primary_arrived_at: float):
        self.message = message
        self.primary_arrived_at = primary_arrived_at


class Prune:
    """Coordination directive: discard the Backup's copy of ``(topic, seq)``."""

    __slots__ = ("topic_id", "seq")

    def __init__(self, topic_id: int, seq: int):
        self.topic_id = topic_id
        self.seq = seq


class Ping:
    """Liveness probe; ``reply_to`` is the prober's own address."""

    __slots__ = ("reply_to", "nonce")

    def __init__(self, reply_to: str, nonce: int):
        self.reply_to = reply_to
        self.nonce = nonce


class Pong:
    """Liveness probe response."""

    __slots__ = ("nonce",)

    def __init__(self, nonce: int):
        self.nonce = nonce
