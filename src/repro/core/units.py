"""Time-unit helpers.

Everything inside the library uses **seconds** (floats).  The paper states
its parameters in milliseconds (Table 2, Sec. III-D), so specs and examples
use these converters at the boundary rather than sprinkling ``/ 1000``
around.
"""

from __future__ import annotations

MILLISECOND = 1e-3
MICROSECOND = 1e-6


def ms(value: float) -> float:
    """Milliseconds to seconds."""
    return value * MILLISECOND


def us(value: float) -> float:
    """Microseconds to seconds."""
    return value * MICROSECOND


def to_ms(seconds: float) -> float:
    """Seconds to milliseconds (for reporting in the paper's units)."""
    return seconds / MILLISECOND
