"""The FRAME broker engine (paper Fig. 4, Sec. IV).

One :class:`Broker` instance plays either role:

* **Primary** — its Message Proxy stamps arrivals, copies messages into
  the Message Buffer and generates dispatch/replication jobs with absolute
  deadlines ``tp + Dd_i`` / ``tp + Dr_i`` (Sec. IV-A); the Message
  Delivery module's worker pool pops jobs in EDF order, pushes messages to
  subscribers, replicates to the Backup, and runs the dispatch-replicate
  coordination of Table 3.
* **Backup** — its Message Proxy stores incoming replicas in the Backup
  Buffer and applies prune directives; on promotion it re-dispatches every
  non-discarded copy and from then on behaves as a Primary (with no
  further replication — the system tolerates one broker failure).

CPU is modeled by charging each operation its :class:`~repro.core.config.
CostModel` demand on the owning module: the Message Proxy owns one core,
Message Delivery owns ``delivery_workers`` cores, as in the paper's
testbed pinning.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.config import SystemConfig
from repro.core.coordination import MessageBuffer, MessageEntry
from repro.core.buffers import BackupBuffer
from repro.core.model import Message
from repro.core.policy import ARRIVAL_ORDER
from repro.core.protocol import Deliver, Ping, Pong, Prune, PublishBatch, Replica
from repro.core.scheduling import DISPATCH, REPLICATE, EDFJobQueue, Job
from repro.core.timing import (
    needs_replication,
    pseudo_dispatch_deadline,
    pseudo_replication_deadline,
)
from repro.sim.monitor import UtilizationMeter
from repro.sim.process import Queue, Timeout
from repro.sim.trace import trace

PRIMARY = "primary"
BACKUP = "backup"

# Proxy work-item tags.
_BATCH = 0
_REPLICA = 1
_PRUNE = 2
_RECOVERY = 3


class BrokerStats:
    """Operation counters and per-module CPU meters of one broker."""

    def __init__(self, name: str, delivery_workers: int):
        self.proxy_meter = UtilizationMeter(f"{name}/proxy", capacity=1.0)
        self.delivery_meter = UtilizationMeter(f"{name}/delivery",
                                               capacity=float(delivery_workers))
        # Worker time spent blocked on synchronous journal writes (the
        # disk strategy).  Not CPU, but it consumes delivery capacity.
        self.disk_meter = UtilizationMeter(f"{name}/disk",
                                           capacity=float(delivery_workers))
        self.disk_writes = 0
        self.dispatched = 0
        self.dispatch_duplicates = 0
        self.replicated = 0
        self.replications_aborted = 0
        self.replications_cancelled = 0
        self.prunes_sent = 0
        self.prunes_applied = 0
        self.replicas_stored = 0
        self.recovery_dispatch_jobs = 0
        self.recovery_skipped = 0
        self.resend_messages = 0
        self.resend_skipped = 0
        self.promotion_time: Optional[float] = None

    def set_window(self, t0: float, t1: float) -> None:
        self.proxy_meter.set_window(t0, t1)
        self.delivery_meter.set_window(t0, t1)
        self.disk_meter.set_window(t0, t1)


class Broker:
    """One broker host's FRAME middleware stack."""

    def __init__(self, engine, host, network, config: SystemConfig, name: str,
                 role: str, peer_name: Optional[str] = None):
        if role not in (PRIMARY, BACKUP):
            raise ValueError(f"unknown role {role!r}")
        self.engine = engine
        self.host = host
        self.network = network
        self.config = config
        self.name = name
        self.role = role
        self.peer_name = peer_name

        self.ingress_address = f"{name}/ingress"
        self.replica_address = f"{name}/replica"
        self.ctl_address = f"{name}/ctl"
        self._peer_replica_address = f"{peer_name}/replica" if peer_name else None

        self.stats = BrokerStats(name, config.delivery_workers)
        self.message_buffer = MessageBuffer()
        self.backup_buffer = BackupBuffer(config.backup_buffer_capacity)
        self.job_queue = EDFJobQueue(engine)
        self._proxy_queue = Queue(engine)
        self._fifo = config.policy.scheduling == ARRIVAL_ORDER
        self._cost_dispatch = config.costs.dispatch
        self._cost_replicate = config.costs.replicate
        self._plan = self._build_plan()

        network.register(host, self.ingress_address, self._on_ingress)
        network.register(host, self.replica_address, self._on_replica_path)
        network.register(host, self.ctl_address, self._on_ctl)

        engine.spawn(self._proxy_process(), name=f"{name}/proxy", host=host)
        for index in range(config.delivery_workers):
            engine.spawn(self._delivery_worker(), name=f"{name}/delivery-{index}",
                         host=host)

    # ------------------------------------------------------------------
    # Initialization: pseudo deadlines and the replication plan (Sec. IV-A)
    # ------------------------------------------------------------------
    def _build_plan(self) -> Dict[int, Tuple[float, Optional[float], bool]]:
        """Per topic: ``(Dd_i', Dr_i' or None, replicate-first flag)``.

        Everything the Job Generator needs per message is a pure function
        of the topic and the policy, so it is computed once here and the
        per-message path does only arithmetic.  The replicate-first flag
        (who runs first when workers are idle) depends only on the pseudo
        deadlines' *difference*, which is per-topic constant: under EDF
        both absolute deadlines share the same ``arrived_at`` offset, and
        under FCFS both equal ``arrived_at`` (replication pushed first).
        """
        plan: Dict[int, Tuple[float, Optional[float], bool]] = {}
        policy = self.config.policy
        params = self.config.params
        for topic_id, spec in self.config.topics.items():
            pseudo_dd = pseudo_dispatch_deadline(spec, params)
            if not policy.replication_enabled:
                wants = False  # non-replicating strategies (e.g. disk logging)
            elif policy.selective_replication:
                wants = needs_replication(spec, params)
            else:
                wants = True  # no differentiation: the baselines replicate everything
            pseudo_dr = pseudo_replication_deadline(spec, params) if wants else None
            replicate_first = (policy.replicate_before_dispatch or self._fifo
                               or (pseudo_dr is not None and pseudo_dr <= pseudo_dd))
            plan[topic_id] = (pseudo_dd, pseudo_dr, replicate_first)
        return plan

    # ------------------------------------------------------------------
    # Network-facing callbacks (zero CPU: NIC/kernel path)
    # ------------------------------------------------------------------
    def _on_ingress(self, batch: PublishBatch) -> None:
        self._proxy_queue.put((_BATCH, batch, self.host.now()))

    def _on_replica_path(self, item) -> None:
        if isinstance(item, Replica):
            self._proxy_queue.put((_REPLICA, item, self.host.now()))
        elif isinstance(item, Prune):
            self._proxy_queue.put((_PRUNE, item, self.host.now()))
        else:
            raise TypeError(f"unexpected replica-path item {item!r}")

    def _on_ctl(self, ping: Ping) -> None:
        # The liveness responder runs at interrupt priority (no modeled
        # cost): an overloaded but live broker must not be declared dead.
        self.network.send(self.host, ping.reply_to, Pong(ping.nonce))

    # ------------------------------------------------------------------
    # Message Proxy module (one core)
    # ------------------------------------------------------------------
    def _proxy_process(self):
        # Hot loop: busy accounting is inlined (no per-operation generator
        # frame) and the fixed-cost Timeouts are allocated once and reused —
        # a Timeout is immutable and subscription leaves no state on it.
        engine = self.engine
        costs = self.config.costs
        stats = self.stats
        meter = stats.proxy_meter
        add_busy = meter.add_busy
        backup_buffer = self.backup_buffer
        per_message = costs.proxy_per_message
        store_timeout = Timeout(costs.backup_store)
        prune_timeout = Timeout(costs.backup_prune)
        # One reused waitable: _QueueGet is immutable and subscription
        # leaves no state on it.
        get_wait = self._proxy_queue.get()
        while True:
            kind, item, stamped_at = yield get_wait
            if kind == _BATCH:
                start = engine.now
                yield Timeout(per_message * len(item.messages))
                add_busy(start, engine.now)
                if item.resend:
                    self._ingest_resend(item, stamped_at)
                else:
                    self._ingest_batch(item, stamped_at)
            elif kind == _REPLICA:
                start = engine.now
                yield store_timeout
                add_busy(start, engine.now)
                backup_buffer.store(item.message, stamped_at)
                stats.replicas_stored += 1
            elif kind == _PRUNE:
                start = engine.now
                yield prune_timeout
                add_busy(start, engine.now)
                if backup_buffer.prune(item.topic_id, item.seq):
                    stats.prunes_applied += 1
            elif kind == _RECOVERY:
                yield from self._recover()
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unknown proxy item kind {kind}")

    def _busy(self, meter: UtilizationMeter, cost: float):
        start = self.engine.now
        yield Timeout(cost)
        meter.add_busy(start, self.engine.now)

    # ------------------------------------------------------------------
    # Job Generator (runs on the proxy core)
    # ------------------------------------------------------------------
    def _ingest_batch(self, batch: PublishBatch, arrived_at: float) -> None:
        generate = self._generate_jobs
        for message in batch.messages:
            generate(message, arrived_at)

    def _generate_jobs(self, message: Message, arrived_at: float) -> None:
        plan = self._plan.get(message.topic_id)
        if plan is None:
            return  # unknown topic: not admitted, drop
        pseudo_dd, pseudo_dr, replicate_first = plan
        wants = pseudo_dr is not None and self._peer_replica_address is not None
        entry = self.message_buffer.insert(message, arrived_at,
                                           wants_replication=wants)
        push = self.job_queue.push
        if self._fifo:
            dispatch_job = Job(DISPATCH, entry, arrived_at, self._cost_dispatch)
            entry.dispatch_job = dispatch_job
            if not wants:
                push(dispatch_job)
                return
            replicate_deadline = arrived_at
        else:
            delta_pb = arrived_at - message.created_at
            if delta_pb < 0.0:
                delta_pb = 0.0
            dispatch_job = Job(DISPATCH, entry, arrived_at + (pseudo_dd - delta_pb),
                               self._cost_dispatch)
            entry.dispatch_job = dispatch_job
            if not wants:
                push(dispatch_job)
                return
            replicate_deadline = arrived_at + (pseudo_dr - delta_pb)
        replicate_job = Job(REPLICATE, entry, replicate_deadline,
                            self._cost_replicate)
        entry.replicate_job = replicate_job
        # Push in execution-priority order: when workers are idle, push
        # order decides who runs first, so it must agree with the queue's
        # ordering (EDF by deadline; the FCFS baselines replicate first).
        # The flag was precomputed per topic in _build_plan.
        if replicate_first:
            push(replicate_job)
            push(dispatch_job)
        else:
            push(dispatch_job)
            push(replicate_job)

    def _ingest_resend(self, batch: PublishBatch, arrived_at: float) -> None:
        """Handle the retained messages a publisher re-sends at fail-over.

        Copies whose Backup Buffer entry carries ``Discard`` are known to
        have been dispatched by the old Primary and are skipped; copies
        already ingested (e.g. via recovery) are skipped; the rest are
        dispatched like fresh arrivals (subscribers dedup any leftovers).
        """
        for message in batch.messages:
            self.stats.resend_messages += 1
            backup_entry = self.backup_buffer.get(message.topic_id, message.seq)
            if backup_entry is not None and backup_entry.discard:
                self.stats.resend_skipped += 1
                continue
            if self.message_buffer.get(message.topic_id, message.seq) is not None:
                self.stats.resend_skipped += 1
                continue
            self._generate_jobs(message, arrived_at)

    # ------------------------------------------------------------------
    # Message Delivery module (worker pool on dedicated cores)
    # ------------------------------------------------------------------
    def _delivery_worker(self):
        # The hottest loop in a simulation run: every attribute that is
        # constant for the broker's lifetime is hoisted into a local, busy
        # accounting is inlined, and the fixed-cost Timeouts are shared
        # across iterations (immutable; subscription leaves no state).
        engine = self.engine
        costs = self.config.costs
        stats = self.stats
        meter = stats.delivery_meter
        add_busy = meter.add_busy
        disk_meter = stats.disk_meter
        disk_add_busy = disk_meter.add_busy
        coordination = self.config.policy.coordination
        disk_logging = self.config.policy.disk_logging
        job_queue = self.job_queue
        pop = job_queue.pop
        release = self.message_buffer.release_if_settled
        send = self.network.send
        host = self.host
        subscriptions = self.config.subscriptions
        dispatch_timeout = Timeout(costs.dispatch)
        replicate_timeout = Timeout(costs.replicate)
        coordinate_timeout = Timeout(costs.coordinate)
        disk_timeout = Timeout(costs.disk_write)
        # One waitable serves every iteration: _JobGet is immutable and
        # subscription leaves no state on it.
        pop_wait = pop()
        while True:
            job = yield pop_wait
            entry: MessageEntry = job.entry
            if job.kind == DISPATCH:
                if entry.dispatched:
                    stats.dispatch_duplicates += 1
                    continue
                if disk_logging and not job.recovery:
                    # Table 1's "local disk" strategy: journal synchronously
                    # before dispatch.  Blocks this worker (I/O wait, not
                    # CPU) — the capacity cost the paper alludes to.
                    start = engine.now
                    yield disk_timeout
                    disk_add_busy(start, engine.now)
                    stats.disk_writes += 1
                start = engine.now
                yield dispatch_timeout
                add_busy(start, engine.now)
                message = entry.message
                deliver = Deliver(message, dispatched_at=engine.now,
                                  recovered=job.recovery)
                for address in subscriptions.get(message.topic_id, ()):
                    send(host, address, deliver)
                entry.dispatched = True
                stats.dispatched += 1
                # Guarded to skip the key() tuple build when tracing is off.
                if engine._tracer is not None:
                    trace(engine, "dispatch", self.name, message.key())
                # Table 3 checks, inlined from coordination.should_cancel_
                # pending_replication / should_request_prune (one call frame
                # less per dispatch; the pure functions remain for tests).
                if coordination:
                    replicate_job = entry.replicate_job
                    if (replicate_job is not None
                            and not replicate_job.cancelled
                            and not entry.replicated):
                        job_queue.cancel(replicate_job)
                        stats.replications_cancelled += 1
                if coordination and entry.replicated and self._peer_replica_address:
                    start = engine.now
                    yield coordinate_timeout
                    add_busy(start, engine.now)
                    send(host, self._peer_replica_address,
                         Prune(message.topic_id, message.seq))
                    stats.prunes_sent += 1
                release(entry)
            elif job.kind == REPLICATE:
                if coordination and entry.dispatched:  # abort replication
                    stats.replications_aborted += 1
                    if engine._tracer is not None:
                        trace(engine, "replicate-abort", self.name,
                              entry.message.key())
                    release(entry)
                    continue
                start = engine.now
                yield replicate_timeout
                add_busy(start, engine.now)
                if self._peer_replica_address is not None:
                    send(host, self._peer_replica_address,
                         Replica(entry.message, entry.arrived_at))
                entry.replicated = True
                stats.replicated += 1
                if engine._tracer is not None:
                    trace(engine, "replicate", self.name, entry.message.key())
                if (coordination and entry.dispatched
                        and self._peer_replica_address is not None):
                    # The message was dispatched while this replication was
                    # in flight (two workers raced): discard the now-stale
                    # copy so recovery will not re-send it.
                    start = engine.now
                    yield coordinate_timeout
                    add_busy(start, engine.now)
                    send(host, self._peer_replica_address,
                         Prune(entry.message.topic_id, entry.message.seq))
                    stats.prunes_sent += 1
                release(entry)
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unknown job kind {job.kind}")

    # ------------------------------------------------------------------
    # Re-protection (extension beyond the paper's one-failure model)
    # ------------------------------------------------------------------
    def attach_peer(self, peer_name: str, resync: bool = True) -> None:
        """Re-enable replication toward a (new) Backup broker.

        The paper's model tolerates exactly one broker failure: after
        promotion the survivor runs unreplicated.  This extension restores
        protection by pointing the Primary at a freshly provisioned Backup.
        With ``resync`` (default), replication jobs are created for every
        in-flight message of a replication-needing topic that has not yet
        been dispatched — dispatched messages need no replica (Table 3's
        own argument), so the new Backup converges by just absorbing the
        ongoing replication stream.
        """
        if self.role != PRIMARY:
            raise RuntimeError("only a Primary can attach a Backup")
        self.peer_name = peer_name
        self._peer_replica_address = f"{peer_name}/replica"
        if not resync:
            return
        costs = self.config.costs
        for entry in list(self.message_buffer._entries.values()):
            if entry.dispatched or entry.replicated:
                continue
            _pseudo_dd, pseudo_dr, _replicate_first = self._plan.get(
                entry.message.topic_id, (None, None, False))
            if pseudo_dr is None:
                continue
            entry.wants_replication = True
            if entry.replicate_job is not None and not entry.replicate_job.cancelled:
                continue  # already queued
            if self._fifo:
                deadline = entry.arrived_at
            else:
                delta_pb = max(0.0, entry.arrived_at - entry.message.created_at)
                deadline = entry.arrived_at + (pseudo_dr - delta_pb)
            job = Job(REPLICATE, entry, deadline, costs.replicate)
            entry.replicate_job = job
            self.job_queue.push(job)

    # ------------------------------------------------------------------
    # Fault recovery (Sec. IV-A, Table 3 "Recovery")
    # ------------------------------------------------------------------
    def promote(self) -> None:
        """Become the new Primary (called by the promotion detector).

        Recovery work — selecting non-discarded Backup Buffer copies and
        turning them into dispatch jobs — is queued onto the Message Proxy
        so its CPU demand is accounted for like any other proxy work.
        """
        if self.role == PRIMARY:
            return
        self.role = PRIMARY
        self._peer_replica_address = None  # one-failure model: no further replication
        self.stats.promotion_time = self.engine.now
        trace(self.engine, "promote", self.name)
        self._proxy_queue.put((_RECOVERY, None, self.engine.now))

    def _recover(self):
        costs = self.config.costs
        meter = self.stats.proxy_meter
        for backup_entry in list(self.backup_buffer.all_entries()):
            if backup_entry.discard:
                yield from self._busy(meter, costs.recovery_skip)
                self.stats.recovery_skipped += 1
                continue
            yield from self._busy(meter, costs.recovery_select)
            message = backup_entry.message
            if self.message_buffer.get(message.topic_id, message.seq) is not None:
                continue  # already re-ingested (e.g. resend raced ahead)
            pseudo_dd, _, _ = self._plan.get(message.topic_id, (None, None, False))
            if pseudo_dd is None:
                continue
            entry = self.message_buffer.insert(message, backup_entry.arrived_at,
                                               wants_replication=False)
            if self._fifo:
                deadline = backup_entry.arrived_at
            else:
                # "dPB is increased according to the arrival time of the
                # copy": the end-to-end budget keeps running from creation.
                deadline = message.created_at + pseudo_dd
            job = Job(DISPATCH, entry, deadline, costs.dispatch, recovery=True)
            entry.dispatch_job = job
            self.job_queue.push(job)
            self.stats.recovery_dispatch_jobs += 1
