"""The FRAME broker engine (paper Fig. 4, Sec. IV).

One :class:`Broker` instance plays either role:

* **Primary** — its Message Proxy stamps arrivals, copies messages into
  the Message Buffer and generates dispatch/replication jobs with absolute
  deadlines ``tp + Dd_i`` / ``tp + Dr_i`` (Sec. IV-A); the Message
  Delivery module's worker pool pops jobs in EDF order, pushes messages to
  subscribers, replicates to the Backup, and runs the dispatch-replicate
  coordination of Table 3.
* **Backup** — its Message Proxy stores incoming replicas in the Backup
  Buffer and applies prune directives; on promotion it re-dispatches every
  non-discarded copy and from then on behaves as a Primary (with no
  further replication — the system tolerates one broker failure).

CPU is modeled by charging each operation its :class:`~repro.core.config.
CostModel` demand on the owning module: the Message Proxy owns one core,
Message Delivery owns ``delivery_workers`` cores, as in the paper's
testbed pinning.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.config import SystemConfig
from repro.core.coordination import (
    MessageBuffer,
    MessageEntry,
    should_abort_replication,
    should_cancel_pending_replication,
    should_request_prune,
)
from repro.core.buffers import BackupBuffer
from repro.core.model import Message
from repro.core.policy import ARRIVAL_ORDER
from repro.core.protocol import Deliver, Ping, Pong, Prune, PublishBatch, Replica
from repro.core.scheduling import DISPATCH, REPLICATE, EDFJobQueue, Job
from repro.core.timing import (
    needs_replication,
    pseudo_dispatch_deadline,
    pseudo_replication_deadline,
)
from repro.sim.monitor import UtilizationMeter
from repro.sim.process import Queue, Timeout
from repro.sim.trace import trace

PRIMARY = "primary"
BACKUP = "backup"

# Proxy work-item tags.
_BATCH = 0
_REPLICA = 1
_PRUNE = 2
_RECOVERY = 3


class BrokerStats:
    """Operation counters and per-module CPU meters of one broker."""

    def __init__(self, name: str, delivery_workers: int):
        self.proxy_meter = UtilizationMeter(f"{name}/proxy", capacity=1.0)
        self.delivery_meter = UtilizationMeter(f"{name}/delivery",
                                               capacity=float(delivery_workers))
        # Worker time spent blocked on synchronous journal writes (the
        # disk strategy).  Not CPU, but it consumes delivery capacity.
        self.disk_meter = UtilizationMeter(f"{name}/disk",
                                           capacity=float(delivery_workers))
        self.disk_writes = 0
        self.dispatched = 0
        self.dispatch_duplicates = 0
        self.replicated = 0
        self.replications_aborted = 0
        self.replications_cancelled = 0
        self.prunes_sent = 0
        self.prunes_applied = 0
        self.replicas_stored = 0
        self.recovery_dispatch_jobs = 0
        self.recovery_skipped = 0
        self.resend_messages = 0
        self.resend_skipped = 0
        self.promotion_time: Optional[float] = None

    def set_window(self, t0: float, t1: float) -> None:
        self.proxy_meter.set_window(t0, t1)
        self.delivery_meter.set_window(t0, t1)
        self.disk_meter.set_window(t0, t1)


class Broker:
    """One broker host's FRAME middleware stack."""

    def __init__(self, engine, host, network, config: SystemConfig, name: str,
                 role: str, peer_name: Optional[str] = None):
        if role not in (PRIMARY, BACKUP):
            raise ValueError(f"unknown role {role!r}")
        self.engine = engine
        self.host = host
        self.network = network
        self.config = config
        self.name = name
        self.role = role
        self.peer_name = peer_name

        self.ingress_address = f"{name}/ingress"
        self.replica_address = f"{name}/replica"
        self.ctl_address = f"{name}/ctl"
        self._peer_replica_address = f"{peer_name}/replica" if peer_name else None

        self.stats = BrokerStats(name, config.delivery_workers)
        self.message_buffer = MessageBuffer()
        self.backup_buffer = BackupBuffer(config.backup_buffer_capacity)
        self.job_queue = EDFJobQueue(engine)
        self._proxy_queue = Queue(engine)
        self._fifo = config.policy.scheduling == ARRIVAL_ORDER
        self._plan = self._build_plan()

        network.register(host, self.ingress_address, self._on_ingress)
        network.register(host, self.replica_address, self._on_replica_path)
        network.register(host, self.ctl_address, self._on_ctl)

        engine.spawn(self._proxy_process(), name=f"{name}/proxy", host=host)
        for index in range(config.delivery_workers):
            engine.spawn(self._delivery_worker(), name=f"{name}/delivery-{index}",
                         host=host)

    # ------------------------------------------------------------------
    # Initialization: pseudo deadlines and the replication plan (Sec. IV-A)
    # ------------------------------------------------------------------
    def _build_plan(self) -> Dict[int, Tuple[float, Optional[float]]]:
        """Per topic: ``(Dd_i', Dr_i' or None when replication is suppressed)``."""
        plan: Dict[int, Tuple[float, Optional[float]]] = {}
        policy = self.config.policy
        params = self.config.params
        for topic_id, spec in self.config.topics.items():
            pseudo_dd = pseudo_dispatch_deadline(spec, params)
            if not policy.replication_enabled:
                wants = False  # non-replicating strategies (e.g. disk logging)
            elif policy.selective_replication:
                wants = needs_replication(spec, params)
            else:
                wants = True  # no differentiation: the baselines replicate everything
            pseudo_dr = pseudo_replication_deadline(spec, params) if wants else None
            plan[topic_id] = (pseudo_dd, pseudo_dr)
        return plan

    # ------------------------------------------------------------------
    # Network-facing callbacks (zero CPU: NIC/kernel path)
    # ------------------------------------------------------------------
    def _on_ingress(self, batch: PublishBatch) -> None:
        self._proxy_queue.put((_BATCH, batch, self.host.now()))

    def _on_replica_path(self, item) -> None:
        if isinstance(item, Replica):
            self._proxy_queue.put((_REPLICA, item, self.host.now()))
        elif isinstance(item, Prune):
            self._proxy_queue.put((_PRUNE, item, self.host.now()))
        else:
            raise TypeError(f"unexpected replica-path item {item!r}")

    def _on_ctl(self, ping: Ping) -> None:
        # The liveness responder runs at interrupt priority (no modeled
        # cost): an overloaded but live broker must not be declared dead.
        self.network.send(self.host, ping.reply_to, Pong(ping.nonce))

    # ------------------------------------------------------------------
    # Message Proxy module (one core)
    # ------------------------------------------------------------------
    def _proxy_process(self):
        costs = self.config.costs
        meter = self.stats.proxy_meter
        while True:
            kind, item, stamped_at = yield self._proxy_queue.get()
            if kind == _BATCH:
                work = costs.proxy_per_message * len(item.messages)
                yield from self._busy(meter, work)
                if item.resend:
                    self._ingest_resend(item, stamped_at)
                else:
                    self._ingest_batch(item, stamped_at)
            elif kind == _REPLICA:
                yield from self._busy(meter, costs.backup_store)
                self.backup_buffer.store(item.message, stamped_at)
                self.stats.replicas_stored += 1
            elif kind == _PRUNE:
                yield from self._busy(meter, costs.backup_prune)
                if self.backup_buffer.prune(item.topic_id, item.seq):
                    self.stats.prunes_applied += 1
            elif kind == _RECOVERY:
                yield from self._recover()
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unknown proxy item kind {kind}")

    def _busy(self, meter: UtilizationMeter, cost: float):
        start = self.engine.now
        yield Timeout(cost)
        meter.add_busy(start, self.engine.now)

    # ------------------------------------------------------------------
    # Job Generator (runs on the proxy core)
    # ------------------------------------------------------------------
    def _ingest_batch(self, batch: PublishBatch, arrived_at: float) -> None:
        for message in batch.messages:
            self._generate_jobs(message, arrived_at)

    def _generate_jobs(self, message: Message, arrived_at: float) -> None:
        plan = self._plan.get(message.topic_id)
        if plan is None:
            return  # unknown topic: not admitted, drop
        pseudo_dd, pseudo_dr = plan
        can_replicate = self._peer_replica_address is not None
        entry = self.message_buffer.insert(
            message, arrived_at, wants_replication=pseudo_dr is not None and can_replicate
        )
        if self._fifo:
            dispatch_deadline = arrived_at
            replicate_deadline = arrived_at
        else:
            delta_pb = max(0.0, arrived_at - message.created_at)
            dispatch_deadline = arrived_at + (pseudo_dd - delta_pb)
            replicate_deadline = (
                arrived_at + (pseudo_dr - delta_pb) if pseudo_dr is not None else 0.0
            )
        costs = self.config.costs
        dispatch_job = Job(DISPATCH, entry, dispatch_deadline, costs.dispatch)
        entry.dispatch_job = dispatch_job
        if not entry.wants_replication:
            self.job_queue.push(dispatch_job)
            return
        replicate_job = Job(REPLICATE, entry, replicate_deadline, costs.replicate)
        entry.replicate_job = replicate_job
        # Push in execution-priority order: when workers are idle, push
        # order decides who runs first, so it must agree with the queue's
        # ordering (EDF by deadline; the FCFS baselines replicate first).
        replicate_first = (self.config.policy.replicate_before_dispatch
                           or replicate_deadline <= dispatch_deadline)
        if replicate_first:
            self.job_queue.push(replicate_job)
            self.job_queue.push(dispatch_job)
        else:
            self.job_queue.push(dispatch_job)
            self.job_queue.push(replicate_job)

    def _ingest_resend(self, batch: PublishBatch, arrived_at: float) -> None:
        """Handle the retained messages a publisher re-sends at fail-over.

        Copies whose Backup Buffer entry carries ``Discard`` are known to
        have been dispatched by the old Primary and are skipped; copies
        already ingested (e.g. via recovery) are skipped; the rest are
        dispatched like fresh arrivals (subscribers dedup any leftovers).
        """
        for message in batch.messages:
            self.stats.resend_messages += 1
            backup_entry = self.backup_buffer.get(message.topic_id, message.seq)
            if backup_entry is not None and backup_entry.discard:
                self.stats.resend_skipped += 1
                continue
            if self.message_buffer.get(message.topic_id, message.seq) is not None:
                self.stats.resend_skipped += 1
                continue
            self._generate_jobs(message, arrived_at)

    # ------------------------------------------------------------------
    # Message Delivery module (worker pool on dedicated cores)
    # ------------------------------------------------------------------
    def _delivery_worker(self):
        costs = self.config.costs
        meter = self.stats.delivery_meter
        coordination = self.config.policy.coordination
        while True:
            job = yield self.job_queue.pop()
            entry: MessageEntry = job.entry
            if job.kind == DISPATCH:
                if entry.dispatched:
                    self.stats.dispatch_duplicates += 1
                    continue
                if self.config.policy.disk_logging and not job.recovery:
                    # Table 1's "local disk" strategy: journal synchronously
                    # before dispatch.  Blocks this worker (I/O wait, not
                    # CPU) — the capacity cost the paper alludes to.
                    yield from self._busy(self.stats.disk_meter, costs.disk_write)
                    self.stats.disk_writes += 1
                yield from self._busy(meter, costs.dispatch)
                self._push_to_subscribers(entry, recovered=job.recovery)
                entry.dispatched = True
                self.stats.dispatched += 1
                trace(self.engine, "dispatch", self.name, entry.message.key())
                if should_cancel_pending_replication(entry, coordination):
                    self.job_queue.cancel(entry.replicate_job)
                    self.stats.replications_cancelled += 1
                if should_request_prune(entry, coordination) and self._peer_replica_address:
                    yield from self._busy(meter, costs.coordinate)
                    self.network.send(self.host, self._peer_replica_address,
                                      Prune(entry.message.topic_id, entry.message.seq))
                    self.stats.prunes_sent += 1
                self.message_buffer.release_if_settled(entry)
            elif job.kind == REPLICATE:
                if should_abort_replication(entry, coordination):
                    self.stats.replications_aborted += 1
                    trace(self.engine, "replicate-abort", self.name,
                          entry.message.key())
                    self.message_buffer.release_if_settled(entry)
                    continue
                yield from self._busy(meter, costs.replicate)
                if self._peer_replica_address is not None:
                    self.network.send(self.host, self._peer_replica_address,
                                      Replica(entry.message, entry.arrived_at))
                entry.replicated = True
                self.stats.replicated += 1
                trace(self.engine, "replicate", self.name, entry.message.key())
                if (coordination and entry.dispatched
                        and self._peer_replica_address is not None):
                    # The message was dispatched while this replication was
                    # in flight (two workers raced): discard the now-stale
                    # copy so recovery will not re-send it.
                    yield from self._busy(meter, costs.coordinate)
                    self.network.send(self.host, self._peer_replica_address,
                                      Prune(entry.message.topic_id, entry.message.seq))
                    self.stats.prunes_sent += 1
                self.message_buffer.release_if_settled(entry)
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unknown job kind {job.kind}")

    def _push_to_subscribers(self, entry: MessageEntry, recovered: bool) -> None:
        message = entry.message
        deliver = Deliver(message, dispatched_at=self.engine.now, recovered=recovered)
        for address in self.config.subscribers_of(message.topic_id):
            self.network.send(self.host, address, deliver)

    # ------------------------------------------------------------------
    # Re-protection (extension beyond the paper's one-failure model)
    # ------------------------------------------------------------------
    def attach_peer(self, peer_name: str, resync: bool = True) -> None:
        """Re-enable replication toward a (new) Backup broker.

        The paper's model tolerates exactly one broker failure: after
        promotion the survivor runs unreplicated.  This extension restores
        protection by pointing the Primary at a freshly provisioned Backup.
        With ``resync`` (default), replication jobs are created for every
        in-flight message of a replication-needing topic that has not yet
        been dispatched — dispatched messages need no replica (Table 3's
        own argument), so the new Backup converges by just absorbing the
        ongoing replication stream.
        """
        if self.role != PRIMARY:
            raise RuntimeError("only a Primary can attach a Backup")
        self.peer_name = peer_name
        self._peer_replica_address = f"{peer_name}/replica"
        if not resync:
            return
        costs = self.config.costs
        for entry in list(self.message_buffer._entries.values()):
            if entry.dispatched or entry.replicated:
                continue
            pseudo_dd, pseudo_dr = self._plan.get(entry.message.topic_id,
                                                  (None, None))
            if pseudo_dr is None:
                continue
            entry.wants_replication = True
            if entry.replicate_job is not None and not entry.replicate_job.cancelled:
                continue  # already queued
            if self._fifo:
                deadline = entry.arrived_at
            else:
                delta_pb = max(0.0, entry.arrived_at - entry.message.created_at)
                deadline = entry.arrived_at + (pseudo_dr - delta_pb)
            job = Job(REPLICATE, entry, deadline, costs.replicate)
            entry.replicate_job = job
            self.job_queue.push(job)

    # ------------------------------------------------------------------
    # Fault recovery (Sec. IV-A, Table 3 "Recovery")
    # ------------------------------------------------------------------
    def promote(self) -> None:
        """Become the new Primary (called by the promotion detector).

        Recovery work — selecting non-discarded Backup Buffer copies and
        turning them into dispatch jobs — is queued onto the Message Proxy
        so its CPU demand is accounted for like any other proxy work.
        """
        if self.role == PRIMARY:
            return
        self.role = PRIMARY
        self._peer_replica_address = None  # one-failure model: no further replication
        self.stats.promotion_time = self.engine.now
        trace(self.engine, "promote", self.name)
        self._proxy_queue.put((_RECOVERY, None, self.engine.now))

    def _recover(self):
        costs = self.config.costs
        meter = self.stats.proxy_meter
        for backup_entry in list(self.backup_buffer.all_entries()):
            if backup_entry.discard:
                yield from self._busy(meter, costs.recovery_skip)
                self.stats.recovery_skipped += 1
                continue
            yield from self._busy(meter, costs.recovery_select)
            message = backup_entry.message
            if self.message_buffer.get(message.topic_id, message.seq) is not None:
                continue  # already re-ingested (e.g. resend raced ahead)
            pseudo_dd, _ = self._plan.get(message.topic_id, (None, None))
            if pseudo_dd is None:
                continue
            entry = self.message_buffer.insert(message, backup_entry.arrived_at,
                                               wants_replication=False)
            if self._fifo:
                deadline = backup_entry.arrived_at
            else:
                # "dPB is increased according to the arrival time of the
                # copy": the end-to-end budget keeps running from creation.
                deadline = message.created_at + pseudo_dd
            job = Job(DISPATCH, entry, deadline, costs.dispatch, recovery=True)
            entry.dispatch_job = job
            self.job_queue.push(job)
            self.stats.recovery_dispatch_jobs += 1
