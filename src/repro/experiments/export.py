"""Serialization of experiment results to JSON and CSV.

Rendered text tables are for humans; these exports are for notebooks and
plotting front-ends.  Row keys ``(Di, Li)`` serialize as ``{"di_ms": ...,
"li": ...}`` with ``Li = ∞`` encoded as the string ``"inf"`` (JSON has no
infinity).
"""

from __future__ import annotations

import csv
import json
import math
from typing import Any, Dict, List

from repro.experiments.cells import TABLE_ROWS
from repro.experiments.figures import FIG7_MODULES, Fig7Result, Fig8Result, Fig9Result
from repro.experiments.tables import TableResult


def _row_key_obj(row) -> Dict[str, Any]:
    di, li = row
    return {"di_ms": di, "li": "inf" if math.isinf(li) else int(li)}


def table_to_dict(result: TableResult) -> Dict[str, Any]:
    cells: List[Dict[str, Any]] = []
    for workload in result.workloads:
        for row in TABLE_ROWS:
            for policy in result.policies:
                cell = result.cell(workload, row, policy)
                cells.append({
                    "workload": workload,
                    **_row_key_obj(row),
                    "policy": policy,
                    "mean": cell.mean,
                    "ci95_half_width": cell.half_width,
                    "paper_mean": cell.paper,
                })
    return {"title": result.title, "metric": result.metric, "cells": cells}


def fig7_to_dict(result: Fig7Result) -> Dict[str, Any]:
    points: List[Dict[str, Any]] = []
    for label, key in FIG7_MODULES:
        for workload in result.workloads:
            for policy in result.policies:
                mean, half = result.utilization[(key, workload, policy)]
                points.append({
                    "module": key,
                    "panel": label,
                    "workload": workload,
                    "policy": policy,
                    "utilization": mean,
                    "ci95_half_width": half,
                })
    return {"title": "fig7", "points": points}


def fig8_to_dict(result: Fig8Result) -> Dict[str, Any]:
    return {
        "title": "fig8",
        "setup_delta_bs": result.setup_delta_bs,
        "min_delta_bs": result.min_delta_bs,
        "max_delta_bs": result.max_delta_bs,
        "losses": result.losses,
        "max_consecutive_losses": result.max_consecutive_losses,
        "series": [{"time": t, "delta_bs": v} for t, v in result.series],
    }


def fig9_to_dict(result: Fig9Result) -> Dict[str, Any]:
    panels: List[Dict[str, Any]] = []
    for policy in result.policies:
        for category in result.categories:
            trace = result.trace(policy, category)
            panels.append({
                "policy": policy,
                "category": category,
                "peak_latency_before": trace.peak_latency_before,
                "peak_latency_after": trace.peak_latency_after,
                "total_losses": trace.total_losses,
                "max_consecutive_losses": trace.max_consecutive_losses,
                "series": [
                    {"seq": point.seq, "time": point.received_true_time,
                     "latency": point.latency, "recovered": point.recovered}
                    for point in result.series[(policy, category)]
                ],
            })
    return {"title": "fig9", "crash_time": result.crash_time, "panels": panels}


def save_json(obj: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(obj, handle, indent=2, allow_nan=True)


def table_to_csv(result: TableResult, path: str) -> None:
    """Flat CSV: one row per (workload, Di, Li, policy) cell."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["workload", "di_ms", "li", "policy", "mean",
                         "ci95_half_width", "paper_mean"])
        for cell in table_to_dict(result)["cells"]:
            writer.writerow([cell["workload"], cell["di_ms"], cell["li"],
                             cell["policy"], f"{cell['mean']:.6g}",
                             f"{cell['ci95_half_width']:.6g}",
                             "" if cell["paper_mean"] is None
                             else f"{cell['paper_mean']:.6g}"])
