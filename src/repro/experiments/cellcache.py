"""Persistent, cross-process cache of cell summaries.

The in-memory cache in :mod:`repro.experiments.cells` dies with the
process, so every benchmark run used to re-simulate every cell.  This
module persists each :class:`~repro.experiments.cells.CellSummary` to
disk under ``benchmarks/.cellcache/`` (one pickle per cell), keyed by a
stable hash of:

* the full :class:`~repro.experiments.runner.ExperimentSettings` value
  (its dataclass ``repr``, which covers the policy and every knob),
* a fingerprint of the Table 2 workload categories, and
* a version hash over the ``repro`` package's source files, so any code
  change invalidates the whole cache rather than serving stale results.

Entries are written atomically (temp file + ``os.replace``), so parallel
workers can share one cache directory safely.  Override the location
with the ``REPRO_CELLCACHE`` environment variable (a path, or ``off`` to
disable) or programmatically with :func:`set_cache_dir`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.experiments.cells import CellSummary
    from repro.experiments.runner import ExperimentSettings

_DISABLE_VALUES = {"off", "none", "0", ""}

_cache_dir: Optional[str] = None
_cache_dir_resolved = False
_code_version: Optional[str] = None
_workload_fingerprint: Optional[str] = None


def _default_cache_dir() -> Optional[str]:
    env = os.environ.get("REPRO_CELLCACHE")
    if env is not None:
        return None if env.strip().lower() in _DISABLE_VALUES else env
    # <repo>/src/repro/experiments/cellcache.py -> <repo>/benchmarks/.cellcache
    package_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    root = os.path.dirname(os.path.dirname(package_dir))
    return os.path.join(root, "benchmarks", ".cellcache")


def cache_dir() -> Optional[str]:
    """The active cache directory, or ``None`` when disabled."""
    global _cache_dir, _cache_dir_resolved
    if not _cache_dir_resolved:
        _cache_dir = _default_cache_dir()
        _cache_dir_resolved = True
    return _cache_dir


def set_cache_dir(path: Optional[str]) -> None:
    """Point the disk cache at ``path`` (``None`` disables it)."""
    global _cache_dir, _cache_dir_resolved
    _cache_dir = path
    _cache_dir_resolved = True


def enabled() -> bool:
    return cache_dir() is not None


# ----------------------------------------------------------------------
# Key derivation
# ----------------------------------------------------------------------
def code_version() -> str:
    """Hash of every ``repro`` source file: any edit invalidates the cache."""
    global _code_version
    if _code_version is None:
        import repro

        package_dir = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for dirpath, _dirnames, filenames in sorted(os.walk(package_dir)):
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(os.path.relpath(path, package_dir).encode())
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _code_version = digest.hexdigest()[:16]
    return _code_version


def workload_fingerprint() -> str:
    """Hash of the Table 2 category definitions the workloads derive from."""
    global _workload_fingerprint
    if _workload_fingerprint is None:
        from repro.workloads.spec import CATEGORIES

        text = repr(sorted(CATEGORIES.items()))
        _workload_fingerprint = hashlib.sha256(text.encode()).hexdigest()[:16]
    return _workload_fingerprint


def cache_key(settings: "ExperimentSettings") -> str:
    """Stable hex key for one cell, valid across processes and runs."""
    payload = "\n".join((repr(settings), workload_fingerprint(), code_version()))
    return hashlib.sha256(payload.encode()).hexdigest()


def _entry_path(key: str) -> str:
    return os.path.join(cache_dir(), f"{key}.pkl")


# ----------------------------------------------------------------------
# Load / store
# ----------------------------------------------------------------------
def load_cell(settings: "ExperimentSettings") -> Optional["CellSummary"]:
    """Return the cached summary for ``settings``, or ``None`` on any miss.

    Unreadable entries (truncated writes from a killed process, format
    drift) are deleted and treated as misses.
    """
    if not enabled():
        return None
    path = _entry_path(cache_key(settings))
    try:
        with open(path, "rb") as handle:
            return pickle.load(handle)
    except FileNotFoundError:
        return None
    except Exception:
        try:
            os.remove(path)
        except OSError:
            pass
        return None


def store_cell(settings: "ExperimentSettings", summary: "CellSummary") -> None:
    """Persist ``summary`` atomically; silently a no-op when disabled."""
    if not enabled():
        return
    directory = cache_dir()
    try:
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(summary, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, _entry_path(cache_key(settings)))
        except BaseException:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise
    except OSError:
        # A read-only checkout or full disk must not fail the sweep.
        pass


def clear_disk_cache() -> int:
    """Delete every cached entry; returns how many were removed."""
    directory = cache_dir()
    if directory is None or not os.path.isdir(directory):
        return 0
    removed = 0
    for name in os.listdir(directory):
        if name.endswith(".pkl") or name.endswith(".tmp"):
            try:
                os.remove(os.path.join(directory, name))
                removed += 1
            except OSError:
                pass
    return removed


def disk_cache_size() -> int:
    """Number of persisted cell entries."""
    directory = cache_dir()
    if directory is None or not os.path.isdir(directory):
        return 0
    return sum(1 for name in os.listdir(directory) if name.endswith(".pkl"))
