"""Build the Fig. 6 testbed in simulation and run one experiment cell.

Topology (paper Sec. VI-A):

* two publisher hosts (``pub-0``, ``pub-1``) carrying the proxies,
* two broker hosts (``primary`` = B1, ``backup`` = B2),
* two edge subscriber hosts (``edge-sub-0``, ``edge-sub-1``),
* one cloud subscriber host (``cloud-sub``) behind the WAN model,
* a Gigabit LAN (sub-millisecond) connecting the local hosts, a dedicated
  broker interconnect, and PTP/NTP clock synchronization to the Primary's
  clock.

A cell is ``(policy, workload, seed, fault plan)``; the result object
exposes the reductions every table and figure needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.actors.detector import FailureDetector
from repro.actors.publisher import PublisherProxy, PublisherStats
from repro.actors.subscriber import Subscriber, SubscriberStats, TracedDelivery
from repro.clocks import NTP_CLOUD, PTP_EDGE, ClockSyncService, attach_clock
from repro.core.broker import BACKUP, PRIMARY, Broker
from repro.core.config import CostModel, SystemConfig
from repro.core.model import CLOUD, TopicSpec
from repro.core.policy import ConfigPolicy, FRAME
from repro.core.timing import DeadlineParameters
from repro.core.units import ms
from repro.faults.injector import CrashInjector, FaultPlan
from repro.metrics.latency import LatencySummary, latency_summary
from repro.metrics.loss import (
    max_consecutive_losses,
    meets_loss_tolerance,
    total_losses,
)
from repro.net.cloud import CloudLatencyModel, LatencySpike
from repro.net.link import UniformLatency
from repro.net.topology import Network
from repro.sim.engine import Engine
from repro.sim.host import Host
from repro.workloads.spec import Workload, build_workload


@dataclass(frozen=True)
class ExperimentSettings:
    """All knobs of one experiment cell (defaults reproduce the paper)."""

    policy: ConfigPolicy = FRAME
    paper_total: int = 1525
    scale: float = 0.1
    seed: int = 0

    # Phases (paper: 35 s warm-up, 60 s measuring, crash at second 30).
    warmup: float = 4.0
    measure: float = 12.0
    crash_at: Optional[float] = None   # relative to measuring start
    grace: float = 1.0                 # exclude creations in the last `grace`

    # Network (one-way latencies, seconds).
    edge_latency_low: float = ms(0.2)
    edge_latency_high: float = ms(0.3)
    broker_link_latency: float = ms(0.05)
    cloud_floor: float = ms(20.5)
    cloud_diurnal_amplitude: float = ms(3.0)
    cloud_jitter_median: float = ms(0.5)
    cloud_day_length: float = 86400.0
    cloud_spikes: Tuple[LatencySpike, ...] = ()

    # Deadline-parameter estimates fed to the brokers (Sec. III-D).
    delta_pb_est: float = ms(0.3)
    delta_bb_est: float = ms(0.05)
    delta_bs_edge_est: float = ms(1.0)
    delta_bs_cloud_est: float = ms(20.7)
    failover_bound: float = ms(50.0)   # x

    # Failure detection.
    publisher_poll: float = ms(15.0)
    publisher_timeout: float = ms(10.0)
    publisher_misses: int = 2
    backup_poll: float = ms(10.0)
    backup_timeout: float = ms(8.0)
    backup_misses: int = 2

    # Broker sizing.
    backup_buffer_capacity: int = 10
    delivery_workers: int = 2

    # Fan-out: how many edge subscribers each edge topic is delivered to
    # (the paper evaluates 1; Sec. IV-A describes the >1 mechanism: one
    # dispatch job pushes to every subscriber).
    subscribers_per_topic: int = 1

    # Clocks.
    clock_drift_ppm: float = 20.0
    clock_sync: bool = True

    # Per-run background OS load on the broker hosts, inflating all service
    # demands.  Most runs see only residual noise; occasionally a noisy
    # neighbor (IRQ storms, kernel housekeeping) adds several percent.
    # This bimodality is what makes near-knee runs split into good/degraded
    # outcomes — the paper's wide CIs at 13525 topics (e.g. 80.0 ± 30.1).
    background_idle_load: Tuple[float, float] = (0.0, 0.01)
    background_noise_load: Tuple[float, float] = (0.04, 0.07)
    background_noise_probability: float = 0.25

    # Tracing: keep full per-message series for these categories (first
    # topic of each), as the paper's Fig. 8/9 plots do.
    traced_categories: Tuple[int, ...] = ()

    def deadline_parameters(self) -> DeadlineParameters:
        return DeadlineParameters(
            delta_pb=self.delta_pb_est,
            delta_bb=self.delta_bb_est,
            delta_bs_edge=self.delta_bs_edge_est,
            delta_bs_cloud=self.delta_bs_cloud_est,
            failover_time=self.failover_bound,
        )

    def with_policy(self, policy: ConfigPolicy) -> "ExperimentSettings":
        return replace(self, policy=policy)


#: Table row key: (deadline in ms, loss tolerance), e.g. ``(50, 0)``.
RowKey = Tuple[float, float]


@dataclass
class RunResult:
    """Everything measured in one cell, plus the reductions the tables need."""

    settings: ExperimentSettings
    workload: Workload
    publisher_stats: PublisherStats
    subscriber_stats: SubscriberStats
    primary_broker: Broker
    backup_broker: Broker
    crash_time: Optional[float]
    window: Tuple[float, float]        # measuring window (true time)
    accounting_end: float              # window end minus grace, for creations
    traced_topic_by_category: Dict[int, int] = field(default_factory=dict)

    # Memoization of the per-topic reductions: the loss and latency
    # reductions re-derive the same published/delivered views up to four
    # times per topic, so each is computed once and reused.  Callers must
    # treat the returned containers as read-only.
    _spec_index: Optional[Dict[int, TopicSpec]] = field(
        default=None, init=False, repr=False, compare=False)
    _published_cache: Dict[int, List[int]] = field(
        default_factory=dict, init=False, repr=False, compare=False)
    _delivered_cache: Dict[int, set] = field(
        default_factory=dict, init=False, repr=False, compare=False)

    # ------------------------------------------------------------------
    def published_seqs(self, topic_id: int) -> List[int]:
        """Seqs of messages created inside the accounting window."""
        cached = self._published_cache.get(topic_id)
        if cached is not None:
            return cached
        log = self.publisher_stats.created.get(topic_id, [])
        t0, _ = self.window
        end = self.accounting_end
        seqs = [index + 1 for index, created in enumerate(log)
                if t0 <= created < end]
        self._published_cache[topic_id] = seqs
        return seqs

    def _delivered_seqs(self, topic_id: int) -> set:
        cached = self._delivered_cache.get(topic_id)
        if cached is None:
            cached = self.subscriber_stats.delivered_seqs(topic_id)
            self._delivered_cache[topic_id] = cached
        return cached

    def topic_spec(self, topic_id: int) -> TopicSpec:
        index = self._spec_index
        if index is None:
            index = {spec.topic_id: spec for spec in self.workload.specs}
            self._spec_index = index
        spec = index.get(topic_id)
        if spec is None:
            raise KeyError(topic_id)
        return spec

    # ------------------------------------------------------------------
    def topic_loss_ok(self, spec: TopicSpec) -> bool:
        published = self.published_seqs(spec.topic_id)
        delivered = self._delivered_seqs(spec.topic_id)
        return meets_loss_tolerance(published, delivered, spec.loss_tolerance)

    def topic_max_consecutive_losses(self, spec: TopicSpec) -> int:
        published = self.published_seqs(spec.topic_id)
        delivered = self._delivered_seqs(spec.topic_id)
        return max_consecutive_losses(published, delivered)

    def topic_total_losses(self, spec: TopicSpec) -> int:
        published = self.published_seqs(spec.topic_id)
        delivered = self._delivered_seqs(spec.topic_id)
        return total_losses(published, delivered)

    def topic_latency(self, spec: TopicSpec) -> LatencySummary:
        published = self.published_seqs(spec.topic_id)
        records = self.subscriber_stats.latency_by_seq.get(spec.topic_id, {})
        return latency_summary(published, records, spec.deadline)

    def latency_percentile_by_row(self, fraction: float) -> Dict[RowKey, float]:
        """A latency percentile (e.g. 0.99) of delivered messages, per row.

        Rows with no deliveries report ``nan``.
        """
        from math import nan

        from repro.metrics.latency import percentile

        pools: Dict[RowKey, List[float]] = {}
        for spec in self.workload.specs:
            key = self._row_key(spec)
            records = self.subscriber_stats.latency_by_seq.get(spec.topic_id, {})
            pools.setdefault(key, []).extend(records.values())
        return {key: (percentile(values, fraction) if values else nan)
                for key, values in pools.items()}

    # ------------------------------------------------------------------
    def loss_success_by_row(self) -> Dict[RowKey, float]:
        """Table 4 reduction: fraction of topics meeting Li, per (Di, Li) row."""
        outcomes: Dict[RowKey, List[bool]] = {}
        for spec in self.workload.specs:
            key = self._row_key(spec)
            outcomes.setdefault(key, []).append(self.topic_loss_ok(spec))
        return {key: sum(flags) / len(flags) for key, flags in outcomes.items()}

    def latency_success_by_row(self) -> Dict[RowKey, float]:
        """Table 5 reduction: mean per-topic latency success, per row."""
        rates: Dict[RowKey, List[float]] = {}
        for spec in self.workload.specs:
            key = self._row_key(spec)
            rates.setdefault(key, []).append(self.topic_latency(spec).success_rate)
        return {key: sum(values) / len(values) for key, values in rates.items()}

    @staticmethod
    def _row_key(spec: TopicSpec) -> RowKey:
        return (round(spec.deadline / ms(1.0), 6), spec.loss_tolerance)

    # ------------------------------------------------------------------
    def utilizations(self) -> Dict[str, float]:
        """Fig. 7 reduction: per-module CPU utilization over the window."""
        return {
            "primary_delivery": self.primary_broker.stats.delivery_meter.utilization(),
            "primary_proxy": self.primary_broker.stats.proxy_meter.utilization(),
            "backup_delivery": self.backup_broker.stats.delivery_meter.utilization(),
            "backup_proxy": self.backup_broker.stats.proxy_meter.utilization(),
        }

    def trace_of_category(self, category: int) -> List[TracedDelivery]:
        topic_id = self.traced_topic_by_category[category]
        return self.subscriber_stats.traces.get(topic_id, [])


def _aggregate_fanout(subscribers, subscriptions) -> SubscriberStats:
    """Fold fan-out deliveries into one view per topic.

    With multiple subscribers per topic, the requirement is judged at the
    *highest* standard (paper Sec. III-B): a message counts as delivered
    only when every subscriber received it, and its latency is the worst
    subscriber's.
    """
    by_address = {subscriber.address: subscriber for subscriber in subscribers}
    merged = SubscriberStats()
    for topic_id, addresses in subscriptions.items():
        views = [by_address[a].stats.latency_by_seq.get(topic_id, {})
                 for a in addresses if a in by_address]
        if not views:
            continue
        if len(views) == 1:
            merged.latency_by_seq[topic_id] = dict(views[0])
            continue
        common = set(views[0])
        for view in views[1:]:
            common &= set(view)
        merged.latency_by_seq[topic_id] = {
            seq: max(view[seq] for view in views) for seq in common
        }
    merged.duplicates = sum(subscriber.stats.duplicates
                            for subscriber in subscribers)
    for subscriber in subscribers:
        merged.traced_topics |= subscriber.stats.traced_topics
        for topic_id, trace in subscriber.stats.traces.items():
            if trace and topic_id not in merged.traces:
                merged.traces[topic_id] = list(trace)
    return merged


def run_experiment(settings: ExperimentSettings,
                   workload: Optional[Workload] = None) -> RunResult:
    """Run one experiment cell and return its measurements."""
    engine = Engine(seed=settings.seed)
    rng = engine.rng("runner")

    # ------------------------------------------------------------------
    # Hosts and clocks
    # ------------------------------------------------------------------
    pub_hosts = [Host(engine, f"pub-{index}") for index in range(2)]
    primary_host = Host(engine, "primary")
    backup_host = Host(engine, "backup")
    edge_sub_hosts = [Host(engine, f"edge-sub-{index}") for index in range(2)]
    cloud_host = Host(engine, "cloud-sub")
    local_hosts = pub_hosts + [primary_host, backup_host] + edge_sub_hosts
    all_hosts = local_hosts + [cloud_host]

    for host in all_hosts:
        attach_clock(
            host,
            offset=rng.uniform(-ms(0.5), ms(0.5)),
            drift_ppm=rng.uniform(-settings.clock_drift_ppm, settings.clock_drift_ppm),
        )
    if settings.clock_sync:
        edge_followers = [host for host in local_hosts if host is not primary_host]
        ClockSyncService(engine, primary_host, edge_followers, PTP_EDGE,
                         rng_stream="sync/ptp")
        ClockSyncService(engine, primary_host, [cloud_host], NTP_CLOUD,
                         rng_stream="sync/ntp")

    # ------------------------------------------------------------------
    # Network
    # ------------------------------------------------------------------
    network = Network(engine)

    def lan() -> UniformLatency:
        return UniformLatency(settings.edge_latency_low, settings.edge_latency_high)

    for pub_host in pub_hosts:
        network.connect(pub_host, primary_host, lan())
        network.connect(pub_host, backup_host, lan())
    network.connect(primary_host, backup_host, settings.broker_link_latency)
    for sub_host in edge_sub_hosts:
        network.connect(primary_host, sub_host, lan())
        network.connect(backup_host, sub_host, lan())
    cloud_model = CloudLatencyModel(
        floor=settings.cloud_floor,
        diurnal_amplitude=settings.cloud_diurnal_amplitude,
        jitter_median=settings.cloud_jitter_median,
        day_length=settings.cloud_day_length,
        spikes=settings.cloud_spikes,
    )
    network.connect(primary_host, cloud_host, cloud_model)
    network.connect(backup_host, cloud_host, cloud_model)

    # ------------------------------------------------------------------
    # Workload, subscriptions, traced topics
    # ------------------------------------------------------------------
    if workload is None:
        workload = build_workload(settings.paper_total, settings.scale)
    traced_topic_by_category: Dict[int, int] = {}
    for category in settings.traced_categories:
        specs = workload.specs_of_category(category)
        if not specs:
            raise ValueError(f"no topics in traced category {category}")
        traced_topic_by_category[category] = specs[0].topic_id
    traced_topics = set(traced_topic_by_category.values())

    if not 1 <= settings.subscribers_per_topic <= len(edge_sub_hosts):
        raise ValueError(
            f"subscribers_per_topic must be in [1, {len(edge_sub_hosts)}]")
    edge_subscriber_names = [f"{host.name}" for host in edge_sub_hosts]
    subscriptions: Dict[int, Tuple[str, ...]] = {}
    edge_turn = 0
    for spec in workload.specs:
        if spec.destination == CLOUD:
            subscriptions[spec.topic_id] = ("cloud-sub/sub",)
        else:
            chosen = tuple(
                f"{edge_subscriber_names[(edge_turn + k) % len(edge_subscriber_names)]}/sub"
                for k in range(settings.subscribers_per_topic))
            subscriptions[spec.topic_id] = chosen
            edge_turn += 1

    load_rng = engine.rng("background-load")
    if load_rng.random() < settings.background_noise_probability:
        background = load_rng.uniform(*settings.background_noise_load)
    else:
        background = load_rng.uniform(*settings.background_idle_load)
    config = SystemConfig.from_specs(
        list(workload.specs),
        policy=settings.policy,
        params=settings.deadline_parameters(),
        costs=CostModel.calibrated(settings.scale).scaled(1.0 + background),
        subscriptions=subscriptions,
        backup_buffer_capacity=settings.backup_buffer_capacity,
        delivery_workers=settings.delivery_workers,
    )

    # ------------------------------------------------------------------
    # Brokers, subscribers, publishers, detectors
    # ------------------------------------------------------------------
    primary = Broker(engine, primary_host, network, config, name="B1",
                     role=PRIMARY, peer_name="B2")
    backup = Broker(engine, backup_host, network, config, name="B2",
                    role=BACKUP, peer_name=None)
    t0 = settings.warmup
    t_end = settings.warmup + settings.measure
    primary.stats.set_window(t0, t_end)
    backup.stats.set_window(t0, t_end)

    subscribers = []
    for host in edge_sub_hosts + [cloud_host]:
        subscribers.append(Subscriber(engine, host, network, name=host.name,
                                      traced_topics=traced_topics))

    FailureDetector(
        engine, backup_host, network, name="B2-promoter",
        target_ctl_address=primary.ctl_address, on_failure=backup.promote,
        poll_interval=settings.backup_poll, reply_timeout=settings.backup_timeout,
        miss_threshold=settings.backup_misses,
    )

    publisher_stats = PublisherStats()
    publishers = []
    adjusted_by_id = config.topics
    for group in workload.proxies:
        host = pub_hosts[group.host_index]
        group_specs = [adjusted_by_id[spec.topic_id] for spec in group.specs]
        period = group_specs[0].period
        publishers.append(PublisherProxy(
            engine, host, network,
            publisher_id=group.publisher_id,
            specs=group_specs,
            primary_ingress=primary.ingress_address,
            backup_ingress=backup.ingress_address,
            failover_bound=settings.failover_bound,
            detector_poll=settings.publisher_poll,
            detector_timeout=settings.publisher_timeout,
            detector_misses=settings.publisher_misses,
            start_offset=engine.rng(f"phase/{group.publisher_id}").uniform(0.0, period),
            stats=publisher_stats,
        ))

    # ------------------------------------------------------------------
    # Faults, run, collect
    # ------------------------------------------------------------------
    crash_time = None
    if settings.crash_at is not None:
        crash_time = settings.warmup + settings.crash_at
        if not t0 <= crash_time < t_end:
            raise ValueError("crash_at must fall inside the measuring phase")
        CrashInjector(engine, {"primary": primary_host},
                      FaultPlan.primary_crash(crash_time))

    engine.run(until=t_end)

    if settings.subscribers_per_topic == 1:
        subscriber_stats = SubscriberStats()
        for subscriber in subscribers:
            subscriber_stats.merge(subscriber.stats)
    else:
        subscriber_stats = _aggregate_fanout(subscribers, subscriptions)

    return RunResult(
        settings=settings,
        workload=workload,
        publisher_stats=publisher_stats,
        subscriber_stats=subscriber_stats,
        primary_broker=primary,
        backup_broker=backup,
        crash_time=crash_time,
        window=(t0, t_end),
        accounting_end=t_end - settings.grace,
        traced_topic_by_category=traced_topic_by_category,
    )
