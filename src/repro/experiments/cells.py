"""Cached experiment cells.

Tables 4/5 and Figs 7/9 share the same ``(policy, workload, seed, fault)``
cells; this module runs each cell once per process and caches a compact
summary (success rates, utilizations, trace reductions) instead of the full
:class:`RunResult`, which holds per-message records and would not fit in
memory across a whole sweep.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.actors.subscriber import TracedDelivery
from repro.experiments import cellcache
from repro.experiments.runner import ExperimentSettings, RowKey, RunResult, run_experiment

#: Paper row order for Tables 4 and 5: (Di in ms, Li).
TABLE_ROWS: Tuple[RowKey, ...] = (
    (50.0, 0), (50.0, 3), (100.0, 0), (100.0, 3), (100.0, float("inf")), (500.0, 0),
)


@dataclass(frozen=True)
class TraceSummary:
    """Reduction of one traced topic's delivery series (Fig. 9 panels)."""

    category: int
    peak_latency_before: float      # max latency before the crash
    peak_latency_after: float       # max latency at/after the crash
    total_losses: int
    max_consecutive_losses: int
    delivered: int
    series: Tuple[TracedDelivery, ...] = ()


@dataclass(frozen=True)
class CellSummary:
    """Everything the tables/figures need from one run."""

    policy_name: str
    paper_total: int
    seed: int
    crashed: bool
    loss_by_row: Dict[RowKey, float]
    latency_by_row: Dict[RowKey, float]
    utilizations: Dict[str, float]
    traces: Dict[int, TraceSummary] = field(default_factory=dict)
    broker_counters: Dict[str, int] = field(default_factory=dict)
    #: Whether the summary was reduced with ``keep_series=True``.  This is
    #: recorded explicitly because an *empty* series is not evidence of
    #: reduction: a traced topic may legitimately deliver zero messages,
    #: and such a cell must still satisfy a ``keep_series=True`` recall.
    series_kept: bool = False


def summarize(result: RunResult, keep_series: bool = False) -> CellSummary:
    """Reduce a :class:`RunResult` to a cacheable summary."""
    traces: Dict[int, TraceSummary] = {}
    for category, topic_id in result.traced_topic_by_category.items():
        series = result.subscriber_stats.traces.get(topic_id, [])
        crash = result.crash_time if result.crash_time is not None else float("inf")
        before = [t.latency for t in series if t.received_true_time < crash]
        after = [t.latency for t in series if t.received_true_time >= crash]
        spec = result.topic_spec(topic_id)
        traces[category] = TraceSummary(
            category=category,
            peak_latency_before=max(before) if before else float("nan"),
            peak_latency_after=max(after) if after else float("nan"),
            total_losses=result.topic_total_losses(spec),
            max_consecutive_losses=result.topic_max_consecutive_losses(spec),
            delivered=len(series),
            series=tuple(series) if keep_series else (),
        )
    primary = result.primary_broker.stats
    backup = result.backup_broker.stats
    counters = {
        "primary_dispatched": primary.dispatched,
        "primary_replicated": primary.replicated,
        "primary_prunes_sent": primary.prunes_sent,
        "primary_replications_aborted": primary.replications_aborted,
        "primary_replications_cancelled": primary.replications_cancelled,
        "backup_replicas_stored": backup.replicas_stored,
        "backup_prunes_applied": backup.prunes_applied,
        "backup_recovery_dispatch_jobs": backup.recovery_dispatch_jobs,
        "backup_recovery_skipped": backup.recovery_skipped,
        "backup_resend_messages": backup.resend_messages,
        "backup_resend_skipped": backup.resend_skipped,
        "subscriber_duplicates": result.subscriber_stats.duplicates,
    }
    return CellSummary(
        policy_name=result.settings.policy.name,
        paper_total=result.settings.paper_total,
        seed=result.settings.seed,
        crashed=result.crash_time is not None,
        loss_by_row=result.loss_success_by_row(),
        latency_by_row=result.latency_success_by_row(),
        utilizations=result.utilizations(),
        traces=traces,
        broker_counters=counters,
        series_kept=keep_series,
    )


def summary_digest(summary: CellSummary) -> str:
    """Canonical content hash of a cell result.

    Two runs of the same cell are bit-for-bit equivalent iff their digests
    match: the hash covers every reduction the tables and figures read
    (rates, utilizations, counters, trace reductions) via exact float
    ``repr``, with dict items sorted so iteration order cannot leak in.
    The engine-optimization benchmarks and the golden-determinism test both
    compare these digests across engine versions.
    """
    trace_rows = sorted(
        (category, t.category, t.peak_latency_before, t.peak_latency_after,
         t.total_losses, t.max_consecutive_losses, t.delivered)
        for category, t in summary.traces.items()
    )
    parts = [
        summary.policy_name,
        repr(summary.paper_total),
        repr(summary.seed),
        repr(summary.crashed),
        repr(sorted(summary.loss_by_row.items())),
        repr(sorted(summary.latency_by_row.items())),
        repr(sorted(summary.utilizations.items())),
        repr(sorted(summary.broker_counters.items())),
        repr(trace_rows),
    ]
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


_CACHE: Dict[ExperimentSettings, CellSummary] = {}


def cached_cell(settings: ExperimentSettings,
                keep_series: bool = False) -> Optional[CellSummary]:
    """Recall a cell from the in-memory or on-disk cache, never simulating.

    Returns ``None`` on a miss, or when ``keep_series`` asks for full
    series and the cached summary was reduced without them.
    """
    cached = _CACHE.get(settings)
    if cached is not None and (not keep_series or _has_series(cached)):
        return cached
    cached = cellcache.load_cell(settings)
    if cached is not None and (not keep_series or _has_series(cached)):
        _CACHE[settings] = cached
        return cached
    return None


def adopt_cell(settings: ExperimentSettings, summary: CellSummary) -> None:
    """Install an externally-computed summary (e.g. from a worker process)."""
    _CACHE[settings] = summary
    cellcache.store_cell(settings, summary)


def run_cell(settings: ExperimentSettings, keep_series: bool = False) -> CellSummary:
    """Run (or recall) one cell.

    Cached per settings value, in memory and — when the persistent cache
    is enabled (see :mod:`repro.experiments.cellcache`) — on disk, so
    repeated sweeps skip simulation entirely across processes and runs.
    """
    cached = cached_cell(settings, keep_series=keep_series)
    if cached is not None:
        return cached
    summary = summarize(run_experiment(settings), keep_series=keep_series)
    adopt_cell(settings, summary)
    return summary


def _has_series(summary: CellSummary) -> bool:
    return summary.series_kept or not summary.traces


def clear_cache() -> None:
    """Drop the in-memory cache (the disk cache is left untouched)."""
    _CACHE.clear()


def cache_size() -> int:
    return len(_CACHE)
