"""Parallel sweep executor for experiment cells.

Every paper artifact (Tables 4/5, Figs 7–9, the ablations, the
multi-edge scenarios) is a sweep over independent ``(policy, workload,
seed, fault)`` cells; each cell owns its own seeded :class:`Engine`, so
cells can run in worker processes with bit-for-bit the same results as a
serial sweep.  Workers run ``run_experiment`` + ``summarize`` and return
only the compact :class:`~repro.experiments.cells.CellSummary` (~1 kB),
never the full :class:`RunResult`.

``run_cells`` is the one entry point the tables/figures/ablations route
through; ``jobs`` resolves as: explicit argument → ``REPRO_JOBS``
environment variable → 1 (serial).  ``jobs=0`` (or any non-positive
value) means "all CPUs".  Cells already present in the in-memory or
persistent cache are served without touching the pool.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments import cells
from repro.experiments.cells import CellSummary
from repro.experiments.runner import ExperimentSettings

#: Environment variable consulted when ``jobs`` is not given explicitly.
JOBS_ENV_VAR = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: argument → ``REPRO_JOBS`` → 1; <= 0 = all CPUs."""
    if jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR, "1")
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(f"{JOBS_ENV_VAR} must be an integer, got {raw!r}")
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def _worker_run_cell(settings: ExperimentSettings,
                     keep_series: bool) -> CellSummary:
    """Top-level (picklable) worker: run one cell inside a pool process."""
    return cells.run_cell(settings, keep_series=keep_series)


def run_cells(settings_list: Sequence[ExperimentSettings],
              jobs: Optional[int] = None,
              keep_series: bool = False) -> List[CellSummary]:
    """Run (or recall) a sweep of cells, optionally across processes.

    Returns one :class:`CellSummary` per input, in input order.  The
    result is independent of ``jobs``: parallel and serial sweeps produce
    identical summaries because every cell is a self-contained seeded
    simulation.  Duplicate settings are simulated once.
    """
    settings_list = list(settings_list)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(settings_list) <= 1:
        return [cells.run_cell(settings, keep_series=keep_series)
                for settings in settings_list]

    summaries: List[Optional[CellSummary]] = [None] * len(settings_list)
    pending: Dict[ExperimentSettings, List[int]] = {}
    for index, settings in enumerate(settings_list):
        cached = cells.cached_cell(settings, keep_series=keep_series)
        if cached is not None:
            summaries[index] = cached
        else:
            pending.setdefault(settings, []).append(index)

    if pending:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {
                pool.submit(_worker_run_cell, settings, keep_series): settings
                for settings in pending
            }
            for future, settings in futures.items():
                summary = future.result()
                cells.adopt_cell(settings, summary)
                for index in pending[settings]:
                    summaries[index] = summary
    return summaries


# ----------------------------------------------------------------------
# Multi-edge sweeps
# ----------------------------------------------------------------------
#: One multi-edge cell: (settings, num_edges, crash_edge).
MultiEdgeCell = Tuple[ExperimentSettings, int, Optional[int]]


def _worker_multi_edge(cell: MultiEdgeCell) -> Tuple[CellSummary, ...]:
    from repro.experiments.multi_edge import run_multi_edge_cell

    settings, num_edges, crash_edge = cell
    return run_multi_edge_cell(settings, num_edges=num_edges,
                               crash_edge=crash_edge)


def run_multi_edge_cells(cell_list: Sequence[MultiEdgeCell],
                         jobs: Optional[int] = None
                         ) -> List[Tuple[CellSummary, ...]]:
    """Run a sweep of multi-edge scenarios, one tuple of summaries each.

    Each entry of ``cell_list`` is ``(settings, num_edges, crash_edge)``;
    the result preserves input order and, like :func:`run_cells`, is
    identical for any ``jobs`` value.
    """
    from repro.experiments.multi_edge import run_multi_edge_cell

    cell_list = list(cell_list)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(cell_list) <= 1:
        return [run_multi_edge_cell(settings, num_edges=num_edges,
                                    crash_edge=crash_edge)
                for settings, num_edges, crash_edge in cell_list]
    with ProcessPoolExecutor(max_workers=min(jobs, len(cell_list))) as pool:
        futures = [pool.submit(_worker_multi_edge, cell) for cell in cell_list]
        return [future.result() for future in futures]
