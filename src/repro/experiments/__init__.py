"""Experiment harness: the paper's evaluation (Tables 4-5, Figs 7-9).

:mod:`repro.experiments.runner` builds the Fig. 6 testbed in simulation
and runs one ``(policy, workload, seed)`` cell; the per-table modules
aggregate cells into the paper's tables and figure summaries; the CLI
(``python -m repro.experiments``) regenerates everything.

Sweeps route through :mod:`repro.experiments.parallel` (worker-process
fan-out, ``--jobs`` / ``REPRO_JOBS``) and are memoized both in memory
(:mod:`repro.experiments.cells`) and on disk across runs
(:mod:`repro.experiments.cellcache`).
"""

from repro.experiments.parallel import run_cells
from repro.experiments.runner import ExperimentSettings, RunResult, run_experiment

__all__ = ["ExperimentSettings", "RunResult", "run_cells", "run_experiment"]
