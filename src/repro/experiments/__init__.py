"""Experiment harness: the paper's evaluation (Tables 4-5, Figs 7-9).

:mod:`repro.experiments.runner` builds the Fig. 6 testbed in simulation
and runs one ``(policy, workload, seed)`` cell; the per-table modules
aggregate cells into the paper's tables and figure summaries; the CLI
(``python -m repro.experiments``) regenerates everything.
"""

from repro.experiments.runner import ExperimentSettings, RunResult, run_experiment

__all__ = ["ExperimentSettings", "RunResult", "run_experiment"]
