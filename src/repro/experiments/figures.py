"""Regeneration of Figs 7, 8, and 9 (paper Sec. VI-B/C).

These produce the data series behind the paper's figures and render them
as text summaries (this library has no plotting dependency; the returned
objects expose the raw series for any plotting front-end).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.actors.subscriber import TracedDelivery
from repro.core.policy import ALL_POLICIES, FRAME, ConfigPolicy
from repro.core.units import ms, to_ms
from repro.experiments.cells import TraceSummary, run_cell
from repro.experiments.parallel import run_cells
from repro.experiments.runner import ExperimentSettings, run_experiment
from repro.metrics.report import format_table, format_value
from repro.metrics.stats import mean_confidence_interval
from repro.net.cloud import LatencySpike

#: Fig. 7 panels: (label, utilization key).
FIG7_MODULES: Tuple[Tuple[str, str], ...] = (
    ("(a) Message Delivery in the Primary", "primary_delivery"),
    ("(b) Message Proxy in the Primary", "primary_proxy"),
    ("(c) Message Proxy in the Backup", "backup_proxy"),
)


# ----------------------------------------------------------------------
# Fig. 7: CPU utilization per module and configuration
# ----------------------------------------------------------------------
@dataclass
class Fig7Result:
    """Per-module CPU utilization (fraction of module capacity)."""

    workloads: Tuple[int, ...]
    policies: Tuple[str, ...]
    utilization: Dict[Tuple[str, int, str], Tuple[float, float]]  # mean, ci

    def value(self, module_key: str, workload: int, policy: str) -> float:
        return self.utilization[(module_key, workload, policy)][0]

    def render(self) -> str:
        blocks: List[str] = []
        headers = ["workload"] + [p for p in self.policies]
        for label, key in FIG7_MODULES:
            rows = []
            for workload in self.workloads:
                line = [str(workload)]
                for policy in self.policies:
                    mean, half = self.utilization[(key, workload, policy)]
                    line.append(format_value(100 * mean, 100 * half))
                rows.append(line)
            blocks.append(format_table(
                f"FIG 7{label} - CPU utilization (% of module capacity)",
                headers, rows))
        return "\n\n".join(blocks)


def fig7(workloads: Sequence[int] = (1525, 4525, 7525, 10525, 13525),
         seeds: Sequence[int] = range(5),
         scale: float = 0.1,
         policies: Sequence[ConfigPolicy] = ALL_POLICIES,
         settings: Optional[ExperimentSettings] = None,
         jobs: Optional[int] = None) -> Fig7Result:
    """Fig. 7: per-module CPU utilization across configurations (fault-free)."""
    base = settings if settings is not None else ExperimentSettings(scale=scale)
    base = replace(base, crash_at=None)
    run_cells([replace(base, policy=policy, paper_total=workload, seed=seed)
               for workload in workloads
               for policy in policies
               for seed in seeds], jobs=jobs)
    utilization: Dict[Tuple[str, int, str], Tuple[float, float]] = {}
    for workload in workloads:
        for policy in policies:
            samples: Dict[str, List[float]] = {key: [] for _, key in FIG7_MODULES}
            for seed in seeds:
                cell = run_cell(replace(base, policy=policy,
                                        paper_total=workload, seed=seed))
                for _, key in FIG7_MODULES:
                    samples[key].append(cell.utilizations[key])
            for _, key in FIG7_MODULES:
                utilization[(key, workload, policy.name)] = (
                    mean_confidence_interval(samples[key])
                )
    return Fig7Result(
        workloads=tuple(workloads),
        policies=tuple(policy.name for policy in policies),
        utilization=utilization,
    )


# ----------------------------------------------------------------------
# Fig. 8: dBS of a category-5 topic across a (compressed) 24-hour day
# ----------------------------------------------------------------------
@dataclass
class Fig8Result:
    """The measured broker-to-cloud latency series and loss outcome."""

    series: List[Tuple[float, float]]   # (true time, measured dBS seconds)
    setup_delta_bs: float               # the configured lower bound
    min_delta_bs: float
    max_delta_bs: float
    spike_peak: float
    losses: int
    max_consecutive_losses: int

    def render(self) -> str:
        lines = [
            "FIG 8: dBS of a category-5 topic through a compressed 24-hour day",
            f"  samples                : {len(self.series)}",
            f"  setup dBS (lower bound): {to_ms(self.setup_delta_bs):.1f} ms",
            f"  min measured dBS       : {to_ms(self.min_delta_bs):.1f} ms",
            f"  max measured dBS       : {to_ms(self.max_delta_bs):.1f} ms "
            f"(paper saw a +104 ms spike)",
            f"  message losses         : {self.losses} "
            f"(paper: none throughout 24 h)",
        ]
        return "\n".join(lines)

    def render_chart(self, width: int = 72, height: int = 12) -> str:
        """The Fig. 8 scatter itself, as an ASCII chart."""
        from repro.metrics.ascii_plot import ascii_chart

        times = [t for t, _ in self.series]
        values = [to_ms(v) for _, v in self.series]
        return ascii_chart(times, values,
                           title="dBS (ms) over the compressed day",
                           width=width, height=height,
                           x_label="simulated time (s)")


def fig8(paper_total: int = 7525,
         scale: float = 0.05,
         seed: int = 0,
         day_length: float = 120.0,
         settings: Optional[ExperimentSettings] = None) -> Fig8Result:
    """Fig. 8: run FRAME under cloud-latency variation for one compressed day.

    The paper ran 7525 topics for 24 wall-clock hours and observed a
    +104 ms latency spike around 8 am with zero message loss.  Here the
    diurnal cycle is compressed into ``day_length`` simulated seconds
    (shape preserved), with the same +104 ms spike at the 8 am position.
    """
    spike = LatencySpike(start=day_length * 8.0 / 24.0,
                         duration=day_length / 86400.0 * 600.0 + 1.0,
                         magnitude=ms(104.0))
    base = settings if settings is not None else ExperimentSettings()
    base = replace(
        base,
        policy=FRAME,
        paper_total=paper_total,
        scale=scale,
        seed=seed,
        warmup=2.0,
        measure=day_length,
        grace=2.0,
        crash_at=None,
        cloud_day_length=day_length,
        cloud_spikes=(spike,),
        traced_categories=(5,),
    )
    result = run_experiment(base)
    topic_id = result.traced_topic_by_category[5]
    spec = result.topic_spec(topic_id)
    trace = result.subscriber_stats.traces[topic_id]
    series = [(t.received_true_time, t.delta_bs) for t in trace]
    delta_values = [value for _, value in series]
    return Fig8Result(
        series=series,
        setup_delta_bs=base.delta_bs_cloud_est,
        min_delta_bs=min(delta_values),
        max_delta_bs=max(delta_values),
        spike_peak=max(delta_values),
        losses=result.topic_total_losses(spec),
        max_consecutive_losses=result.topic_max_consecutive_losses(spec),
    )


# ----------------------------------------------------------------------
# Fig. 9: end-to-end latency before, upon, and after fault recovery
# ----------------------------------------------------------------------
@dataclass
class Fig9Result:
    """Per-policy latency series around a crash for categories 0, 2, 5."""

    paper_total: int
    policies: Tuple[str, ...]
    categories: Tuple[int, ...]
    traces: Dict[Tuple[str, int], TraceSummary]
    series: Dict[Tuple[str, int], Tuple[TracedDelivery, ...]]
    crash_time: float

    def trace(self, policy: str, category: int) -> TraceSummary:
        return self.traces[(policy, category)]

    def render(self) -> str:
        headers = ["policy", "category", "peak before (ms)", "peak after (ms)",
                   "losses", "max consecutive"]
        rows = []
        for policy in self.policies:
            for category in self.categories:
                trace = self.traces[(policy, category)]
                rows.append([
                    policy, str(category),
                    f"{to_ms(trace.peak_latency_before):.1f}",
                    f"{to_ms(trace.peak_latency_after):.1f}",
                    str(trace.total_losses),
                    str(trace.max_consecutive_losses),
                ])
        return format_table(
            f"FIG 9: end-to-end latency around fault recovery "
            f"({self.paper_total} topics, crash mid-measure)",
            headers, rows)

    def render_chart(self, policy: str, category: int,
                     width: int = 72, height: int = 12) -> str:
        """One Fig. 9 panel (latency vs sequence number) as ASCII art."""
        from repro.metrics.ascii_plot import ascii_chart

        series = self.series[(policy, category)]
        return ascii_chart(
            [float(point.seq) for point in series],
            [to_ms(point.latency) for point in series],
            title=f"{policy}, category {category}: latency (ms) by sequence",
            width=width, height=height, x_label="sequence number")


def fig9(paper_total: int = 7525,
         scale: float = 0.1,
         seed: int = 0,
         policies: Sequence[ConfigPolicy] = ALL_POLICIES,
         categories: Sequence[int] = (0, 2, 5),
         settings: Optional[ExperimentSettings] = None,
         jobs: Optional[int] = None) -> Fig9Result:
    """Fig. 9: one crash run per policy, tracing one topic per category."""
    base = settings if settings is not None else ExperimentSettings()
    base = replace(base, paper_total=paper_total, scale=scale, seed=seed,
                   traced_categories=tuple(categories))
    base = replace(base, crash_at=base.measure / 2.0)
    sweep = [replace(base, policy=policy) for policy in policies]
    run_cells(sweep, jobs=jobs, keep_series=True)
    traces: Dict[Tuple[str, int], TraceSummary] = {}
    series: Dict[Tuple[str, int], Tuple[TracedDelivery, ...]] = {}
    for policy in policies:
        cell = run_cell(replace(base, policy=policy), keep_series=True)
        for category in categories:
            trace = cell.traces[category]
            traces[(policy.name, category)] = trace
            series[(policy.name, category)] = trace.series
    return Fig9Result(
        paper_total=paper_total,
        policies=tuple(policy.name for policy in policies),
        categories=tuple(categories),
        traces=traces,
        series=series,
        crash_time=base.warmup + base.crash_at,
    )
