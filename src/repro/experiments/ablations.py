"""Ablation studies for the paper's four "key lessons" (Sec. VI-E).

1. Replication removal (Proposition 1) lowers CPU and admits more topics
   (FRAME vs FCFS — isolated here as FRAME vs FRAME-without-selective-
   replication so scheduling policy is held constant).
2. Pruning backup messages trades fault-free overhead for recovery latency
   (FCFS vs FCFS−).
3. Combining both wins on both sides (FRAME vs FCFS−).
4. One extra retained message can remove replication entirely
   (FRAME vs FRAME+), including a retention sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.policy import (
    DISK_LOG,
    EDF,
    FCFS,
    FCFS_MINUS,
    FRAME,
    FRAME_PLUS,
    ConfigPolicy,
)
from repro.core.timing import DeadlineParameters, needs_replication
from repro.core.units import to_ms
from repro.experiments.cells import run_cell
from repro.experiments.parallel import run_cells
from repro.experiments.runner import ExperimentSettings
from repro.metrics.report import format_table
from repro.metrics.stats import mean_confidence_interval
from repro.workloads.spec import CATEGORIES

#: FRAME with Proposition 1 disabled (replicate everything, still EDF +
#: coordination) — isolates the effect of selective replication.
FRAME_NO_SELECTIVE = ConfigPolicy(
    name="FRAME-noSR",
    scheduling=EDF,
    selective_replication=False,
    coordination=True,
    replicate_before_dispatch=False,
)


@dataclass
class LessonResult:
    """One A/B comparison: per-policy aggregates plus a rendered verdict."""

    lesson: str
    description: str
    workload: int
    metrics: Dict[str, Dict[str, float]]   # policy -> metric -> value

    def render(self) -> str:
        policies = list(self.metrics)
        metric_names = sorted({name for values in self.metrics.values()
                               for name in values})
        headers = ["metric"] + policies
        rows = []
        for name in metric_names:
            rows.append([name] + [f"{self.metrics[p].get(name, float('nan')):.3f}"
                                  for p in policies])
        return format_table(f"{self.lesson}: {self.description} "
                            f"({self.workload} topics)", headers, rows)


def _cell_settings(policy: ConfigPolicy, base: ExperimentSettings,
                   seed: int, crash: bool) -> ExperimentSettings:
    return replace(base, policy=policy, seed=seed,
                   crash_at=base.measure / 2.0 if crash else None,
                   traced_categories=(0, 2, 5) if crash else ())


def _prefetch(policies: Sequence[ConfigPolicy], base: ExperimentSettings,
              seeds: Sequence[int], crash: bool,
              jobs: Optional[int]) -> None:
    """Fan the lesson's full settings grid through the parallel executor."""
    run_cells([_cell_settings(policy, base, seed, crash)
               for policy in policies for seed in seeds], jobs=jobs)


def _policy_aggregates(policy: ConfigPolicy, base: ExperimentSettings,
                       seeds: Sequence[int], crash: bool) -> Dict[str, float]:
    delivery, proxy, backup_proxy = [], [], []
    loss, latency = [], []
    peak_after = []
    recovered, skipped = [], []
    for seed in seeds:
        cell = run_cell(_cell_settings(policy, base, seed, crash))
        delivery.append(cell.utilizations["primary_delivery"])
        proxy.append(cell.utilizations["primary_proxy"])
        backup_proxy.append(cell.utilizations["backup_proxy"])
        loss.append(100.0 * sum(cell.loss_by_row.values()) / len(cell.loss_by_row))
        latency.append(100.0 * sum(cell.latency_by_row.values())
                       / len(cell.latency_by_row))
        if crash:
            peaks = [trace.peak_latency_after for trace in cell.traces.values()]
            peak_after.append(to_ms(max(peaks)))
            recovered.append(cell.broker_counters["backup_recovery_dispatch_jobs"])
            skipped.append(cell.broker_counters["backup_recovery_skipped"])
    out = {
        "delivery_util": mean_confidence_interval(delivery)[0],
        "proxy_util": mean_confidence_interval(proxy)[0],
        "backup_proxy_util": mean_confidence_interval(backup_proxy)[0],
        "loss_success_%": mean_confidence_interval(loss)[0],
        "latency_success_%": mean_confidence_interval(latency)[0],
    }
    if crash:
        out["peak_latency_after_crash_ms"] = mean_confidence_interval(peak_after)[0]
        out["recovery_jobs"] = mean_confidence_interval(recovered)[0]
        out["recovery_skipped"] = mean_confidence_interval(skipped)[0]
    return out


def lesson1_replication_removal(workload: int = 7525, seeds: Sequence[int] = range(3),
                                scale: float = 0.1,
                                jobs: Optional[int] = None) -> LessonResult:
    """Selective replication (Prop. 1) cuts Message Delivery CPU."""
    base = ExperimentSettings(paper_total=workload, scale=scale)
    policies = (FRAME, FRAME_NO_SELECTIVE, FCFS)
    _prefetch(policies, base, seeds, crash=False, jobs=jobs)
    return LessonResult(
        lesson="Lesson 1",
        description="replication removal lowers CPU utilization",
        workload=workload,
        metrics={
            policy.name: _policy_aggregates(policy, base, seeds, crash=False)
            for policy in policies
        },
    )


def lesson2_pruning_tradeoff(workload: int = 7525, seeds: Sequence[int] = range(3),
                             scale: float = 0.1,
                             jobs: Optional[int] = None) -> LessonResult:
    """Pruning cuts recovery latency but costs fault-free overhead."""
    base = ExperimentSettings(paper_total=workload, scale=scale)
    policies = (FCFS, FCFS_MINUS)
    _prefetch(policies, base, seeds, crash=True, jobs=jobs)
    return LessonResult(
        lesson="Lesson 2",
        description="pruning reduces recovery latency at fault-free cost",
        workload=workload,
        metrics={
            policy.name: _policy_aggregates(policy, base, seeds, crash=True)
            for policy in policies
        },
    )


def lesson3_combined(workload: int = 7525, seeds: Sequence[int] = range(3),
                     scale: float = 0.1,
                     jobs: Optional[int] = None) -> LessonResult:
    """Removal + pruning beats FCFS- both at recovery and fault-free."""
    base = ExperimentSettings(paper_total=workload, scale=scale)
    policies = (FRAME, FCFS_MINUS)
    _prefetch(policies, base, seeds, crash=True, jobs=jobs)
    return LessonResult(
        lesson="Lesson 3",
        description="replication removal + pruning wins on both sides",
        workload=workload,
        metrics={
            policy.name: _policy_aggregates(policy, base, seeds, crash=True)
            for policy in policies
        },
    )


def lesson4_retention(workload: int = 13525, seeds: Sequence[int] = range(3),
                      scale: float = 0.1,
                      jobs: Optional[int] = None) -> LessonResult:
    """A small retention increase removes replication and saves CPU.

    Fault-free runs (like the paper's Fig. 7): in crash runs the promoted
    Backup's proxy carries all ingress traffic, which would mask the
    replication-traffic difference this lesson is about.
    """
    base = ExperimentSettings(paper_total=workload, scale=scale)
    policies = (FRAME, FRAME_PLUS)
    _prefetch(policies, base, seeds, crash=False, jobs=jobs)
    return LessonResult(
        lesson="Lesson 4",
        description="retention +1 removes replication and improves efficiency",
        workload=workload,
        metrics={
            policy.name: _policy_aggregates(policy, base, seeds, crash=False)
            for policy in policies
        },
    )


def table1_strategies(workloads: Sequence[int] = (7525, 10525),
                      seeds: Sequence[int] = range(2),
                      scale: float = 0.1,
                      jobs: Optional[int] = None) -> List[LessonResult]:
    """Empirical comparison of Table 1's loss-tolerance strategies.

    * **publisher resend only** — FRAME+ (retention covers everything);
    * **backup broker (+ resend where needed)** — FRAME;
    * **local disk** — DISK_LOG: synchronous journaling before dispatch,
      no Backup replication.  The paper excluded this strategy "because
      it performs relatively slowly"; the comparison quantifies that: the
      journal writes consume delivery-worker capacity, so the strategy's
      throughput ceiling sits well below FRAME's.
    """
    policies = (FRAME_PLUS, FRAME, DISK_LOG)
    run_cells([_cell_settings(policy, ExperimentSettings(paper_total=workload,
                                                         scale=scale),
                              seed, crash=False)
               for workload in workloads
               for policy in policies
               for seed in seeds], jobs=jobs)
    results = []
    for workload in workloads:
        base = ExperimentSettings(paper_total=workload, scale=scale)
        results.append(LessonResult(
            lesson="Table 1 strategies",
            description="publisher-resend vs backup-broker vs local-disk",
            workload=workload,
            metrics={
                policy.name: _policy_aggregates(policy, base, seeds, crash=False)
                for policy in policies
            },
        ))
    return results


@dataclass
class RetentionSweepResult:
    """How the replication plan shrinks as retention grows (analysis only)."""

    bonuses: Tuple[int, ...]
    replicated_categories: Dict[int, Tuple[int, ...]]

    def render(self) -> str:
        headers = ["retention bonus", "categories needing replication"]
        rows = [[str(bonus),
                 ",".join(map(str, self.replicated_categories[bonus])) or "(none)"]
                for bonus in self.bonuses]
        return format_table(
            "Retention sweep: Proposition 1 replication plan vs publisher retention",
            headers, rows)


def retention_sweep(bonuses: Sequence[int] = (0, 1, 2, 3),
                    params: Optional[DeadlineParameters] = None) -> RetentionSweepResult:
    """Analytic sweep of the Sec. III-D.3 observation across all categories."""
    if params is None:
        params = ExperimentSettings().deadline_parameters()
    replicated: Dict[int, Tuple[int, ...]] = {}
    for bonus in bonuses:
        needing: List[int] = []
        for category, cat_spec in sorted(CATEGORIES.items()):
            spec = cat_spec.make_topic(category)
            spec = spec.with_retention(spec.retention + bonus)
            if needs_replication(spec, params):
                needing.append(category)
        replicated[bonus] = tuple(needing)
    return RetentionSweepResult(bonuses=tuple(bonuses),
                                replicated_categories=replicated)


def all_lessons(scale: float = 0.1, seeds: Sequence[int] = range(3),
                jobs: Optional[int] = None) -> List[LessonResult]:
    return [
        lesson1_replication_removal(scale=scale, seeds=seeds, jobs=jobs),
        lesson2_pruning_tradeoff(scale=scale, seeds=seeds, jobs=jobs),
        lesson3_combined(scale=scale, seeds=seeds, jobs=jobs),
        lesson4_retention(scale=scale, seeds=seeds, jobs=jobs),
    ]
