"""Regeneration of Tables 4 and 5 (paper Sec. VI-B/D).

Each table aggregates ``(policy, workload, seed)`` cells: per (Di, Li) row
and policy, the mean success rate with its 95 % confidence interval across
seeds, printed next to the paper's published mean.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.policy import ALL_POLICIES, ConfigPolicy
from repro.experiments import paper_reference
from repro.experiments.cells import TABLE_ROWS, run_cell
from repro.experiments.parallel import run_cells
from repro.experiments.runner import ExperimentSettings, RowKey
from repro.metrics.report import format_table, format_value
from repro.metrics.stats import mean_confidence_interval


@dataclass(frozen=True)
class TableCell:
    """One aggregated table cell: measured mean ± CI (%), paper mean (%)."""

    mean: float
    half_width: float
    paper: Optional[float]

    def rendered(self) -> str:
        return format_value(self.mean, self.half_width)


@dataclass
class TableResult:
    """An aggregated Table 4 or Table 5."""

    title: str
    metric: str                         # "loss" or "latency"
    workloads: Tuple[int, ...]
    policies: Tuple[str, ...]
    cells: Dict[Tuple[int, RowKey, str], TableCell]

    def cell(self, workload: int, row: RowKey, policy: str) -> TableCell:
        return self.cells[(workload, row, policy)]

    def render(self) -> str:
        blocks: List[str] = []
        headers = ["Di", "Li"]
        for policy in self.policies:
            headers.append(policy)
            headers.append(f"(paper {policy})")
        for workload in self.workloads:
            rows = []
            for row_key in TABLE_ROWS:
                di, li = row_key
                li_text = "inf" if li == float("inf") else str(int(li))
                line = [f"{di:.0f}", li_text]
                for policy in self.policies:
                    cell = self.cells[(workload, row_key, policy)]
                    line.append(cell.rendered())
                    line.append("-" if cell.paper is None else f"{cell.paper:.1f}")
                rows.append(line)
            blocks.append(format_table(
                f"{self.title} - workload = {workload} topics", headers, rows))
        return "\n\n".join(blocks)


def _aggregate(metric: str, title: str, workloads: Sequence[int],
               seeds: Sequence[int], base: ExperimentSettings,
               policies: Sequence[ConfigPolicy],
               paper_table, jobs: Optional[int] = None) -> TableResult:
    # Fan the whole (workload, policy, seed) grid out through the parallel
    # executor first; the per-row consumption below then hits the cache.
    run_cells([replace(base, policy=policy, paper_total=workload, seed=seed)
               for workload in workloads
               for policy in policies
               for seed in seeds], jobs=jobs)
    cells: Dict[Tuple[int, RowKey, str], TableCell] = {}
    for workload in workloads:
        for policy in policies:
            per_row: Dict[RowKey, List[float]] = {key: [] for key in TABLE_ROWS}
            for seed in seeds:
                settings = replace(base, policy=policy, paper_total=workload,
                                   seed=seed)
                summary = run_cell(settings)
                source = (summary.loss_by_row if metric == "loss"
                          else summary.latency_by_row)
                for key in TABLE_ROWS:
                    per_row[key].append(100.0 * source[key])
            for key in TABLE_ROWS:
                mean, half = mean_confidence_interval(per_row[key])
                cells[(workload, key, policy.name)] = TableCell(
                    mean=mean, half_width=half,
                    paper=paper_reference.paper_value(
                        paper_table, workload, key, policy.name),
                )
    return TableResult(
        title=title, metric=metric, workloads=tuple(workloads),
        policies=tuple(policy.name for policy in policies), cells=cells,
    )


def table4(workloads: Sequence[int] = (7525, 10525, 13525),
           seeds: Sequence[int] = range(5),
           scale: float = 0.1,
           policies: Sequence[ConfigPolicy] = ALL_POLICIES,
           settings: Optional[ExperimentSettings] = None,
           jobs: Optional[int] = None) -> TableResult:
    """Table 4: success rate for the loss-tolerance requirement (%).

    Crash runs: the Primary is killed halfway through the measuring phase
    (the paper's 30th second of 60).
    """
    base = settings if settings is not None else ExperimentSettings(scale=scale)
    base = replace(base, crash_at=base.measure / 2.0)
    return _aggregate("loss", "TABLE 4: success rate for loss-tolerance requirement (%)",
                      workloads, seeds, base, policies, paper_reference.TABLE4,
                      jobs=jobs)


def table5(workloads: Sequence[int] = (4525, 7525, 10525, 13525),
           seeds: Sequence[int] = range(5),
           scale: float = 0.1,
           policies: Sequence[ConfigPolicy] = ALL_POLICIES,
           settings: Optional[ExperimentSettings] = None,
           jobs: Optional[int] = None) -> TableResult:
    """Table 5: success rate for the latency requirement (%), fault-free."""
    base = settings if settings is not None else ExperimentSettings(scale=scale)
    base = replace(base, crash_at=None)
    return _aggregate("latency", "TABLE 5: success rate for latency requirement (%)",
                      workloads, seeds, base, policies, paper_reference.TABLE5,
                      jobs=jobs)
