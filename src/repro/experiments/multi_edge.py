"""Multi-edge deployments: N edges sharing one cloud (paper Fig. 1).

The paper scopes its evaluation to one edge and one cloud (Sec. I), but
its architecture figure shows a private cloud serving many edges.  This
extension instantiates N complete edges — each with its own publisher
hosts, Primary/Backup broker pair, edge subscribers, PTP domain, and
fail-over machinery — all delivering their cloud-bound topics to a single
shared cloud subscriber.

The headline property it demonstrates: **fault isolation**.  Crashing one
edge's Primary triggers fail-over only within that edge; every other
edge's topics keep their guarantees untouched, and the cloud keeps
receiving every edge's logging traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.actors.detector import FailureDetector
from repro.actors.publisher import PublisherProxy, PublisherStats
from repro.actors.subscriber import Subscriber, SubscriberStats
from repro.clocks import PTP_EDGE, ClockSyncService, attach_clock
from repro.core.broker import BACKUP, PRIMARY, Broker
from repro.core.config import CostModel, SystemConfig
from repro.core.model import CLOUD
from repro.experiments.runner import ExperimentSettings, RunResult
from repro.net.cloud import CloudLatencyModel
from repro.net.link import UniformLatency
from repro.sim.engine import Engine
from repro.sim.host import Host
from repro.net.topology import Network
from repro.workloads.spec import Workload, build_workload

#: Topic-id stride between edges (keeps ids globally unique).
EDGE_TOPIC_STRIDE = 1_000_000


@dataclass
class MultiEdgeResult:
    """Per-edge results plus shared-cloud accounting."""

    edges: List[RunResult]
    cloud_stats: SubscriberStats
    crashed_edge: Optional[int]

    def edge(self, index: int) -> RunResult:
        return self.edges[index]

    def cloud_topics_received(self) -> Dict[int, int]:
        """Per edge: number of cloud-bound messages the shared cloud saw."""
        received: Dict[int, int] = {}
        for index, result in enumerate(self.edges):
            count = 0
            for spec in result.workload.specs:
                if spec.destination == CLOUD:
                    count += len(self.cloud_stats.latency_by_seq.get(
                        spec.topic_id, {}))
            received[index] = count
        return received


def _offset_workload(workload: Workload, offset: int) -> Workload:
    specs = tuple(replace(spec, topic_id=spec.topic_id + offset)
                  for spec in workload.specs)
    by_id = {spec.topic_id: spec for spec in specs}
    proxies = tuple(
        replace(group,
                publisher_id=f"e{offset // EDGE_TOPIC_STRIDE}-{group.publisher_id}",
                specs=tuple(by_id[spec.topic_id + offset] for spec in group.specs))
        for group in workload.proxies
    )
    return replace(workload, specs=specs, proxies=proxies)


def run_multi_edge(settings: ExperimentSettings, num_edges: int = 2,
                   crash_edge: Optional[int] = None) -> MultiEdgeResult:
    """Run ``num_edges`` complete edges against one shared cloud.

    ``settings.paper_total`` is the per-edge workload; ``crash_edge``
    (with ``settings.crash_at``) selects which edge's Primary dies.
    """
    if num_edges < 1:
        raise ValueError("need at least one edge")
    if crash_edge is not None and not 0 <= crash_edge < num_edges:
        raise ValueError(f"crash_edge {crash_edge} out of range")
    if crash_edge is not None and settings.crash_at is None:
        raise ValueError("crash_edge requires settings.crash_at")

    engine = Engine(seed=settings.seed)
    rng = engine.rng("multi-edge-runner")
    network = Network(engine)
    t0 = settings.warmup
    t_end = settings.warmup + settings.measure

    cloud_host = Host(engine, "cloud-sub")
    attach_clock(cloud_host, offset=rng.uniform(-5e-3, 5e-3))
    cloud_subscriber = Subscriber(engine, cloud_host, network, name="cloud-sub")
    cloud_model = CloudLatencyModel(
        floor=settings.cloud_floor,
        diurnal_amplitude=settings.cloud_diurnal_amplitude,
        jitter_median=settings.cloud_jitter_median,
        day_length=settings.cloud_day_length,
        spikes=settings.cloud_spikes,
    )

    def lan() -> UniformLatency:
        return UniformLatency(settings.edge_latency_low, settings.edge_latency_high)

    edge_records: List[dict] = []
    for edge_index in range(num_edges):
        prefix = f"e{edge_index}"
        pub_hosts = [Host(engine, f"{prefix}-pub-{i}") for i in range(2)]
        primary_host = Host(engine, f"{prefix}-primary")
        backup_host = Host(engine, f"{prefix}-backup")
        sub_hosts = [Host(engine, f"{prefix}-sub-{i}") for i in range(2)]
        local_hosts = pub_hosts + [primary_host, backup_host] + sub_hosts
        for host in local_hosts:
            attach_clock(host, offset=rng.uniform(-5e-4, 5e-4),
                         drift_ppm=rng.uniform(-settings.clock_drift_ppm,
                                               settings.clock_drift_ppm))
        if settings.clock_sync:
            followers = [h for h in local_hosts if h is not primary_host]
            ClockSyncService(engine, primary_host, followers, PTP_EDGE,
                             rng_stream=f"{prefix}/sync")

        for pub_host in pub_hosts:
            network.connect(pub_host, primary_host, lan())
            network.connect(pub_host, backup_host, lan())
        network.connect(primary_host, backup_host, settings.broker_link_latency)
        for sub_host in sub_hosts:
            network.connect(primary_host, sub_host, lan())
            network.connect(backup_host, sub_host, lan())
        network.connect(primary_host, cloud_host, cloud_model)
        network.connect(backup_host, cloud_host, cloud_model)

        workload = _offset_workload(
            build_workload(settings.paper_total, settings.scale),
            edge_index * EDGE_TOPIC_STRIDE)
        subscriptions: Dict[int, Tuple[str, ...]] = {}
        turn = 0
        for spec in workload.specs:
            if spec.destination == CLOUD:
                subscriptions[spec.topic_id] = (cloud_subscriber.address,)
            else:
                subscriptions[spec.topic_id] = (
                    f"{sub_hosts[turn % 2].name}/sub",)
                turn += 1

        load_rng = engine.rng(f"{prefix}/background-load")
        if load_rng.random() < settings.background_noise_probability:
            background = load_rng.uniform(*settings.background_noise_load)
        else:
            background = load_rng.uniform(*settings.background_idle_load)
        config = SystemConfig.from_specs(
            list(workload.specs),
            policy=settings.policy,
            params=settings.deadline_parameters(),
            costs=CostModel.calibrated(settings.scale).scaled(1.0 + background),
            subscriptions=subscriptions,
            backup_buffer_capacity=settings.backup_buffer_capacity,
            delivery_workers=settings.delivery_workers,
        )
        primary = Broker(engine, primary_host, network, config,
                         name=f"{prefix}-B1", role=PRIMARY,
                         peer_name=f"{prefix}-B2")
        backup = Broker(engine, backup_host, network, config,
                        name=f"{prefix}-B2", role=BACKUP, peer_name=None)
        primary.stats.set_window(t0, t_end)
        backup.stats.set_window(t0, t_end)
        FailureDetector(
            engine, backup_host, network, name=f"{prefix}-promoter",
            target_ctl_address=primary.ctl_address, on_failure=backup.promote,
            poll_interval=settings.backup_poll,
            reply_timeout=settings.backup_timeout,
            miss_threshold=settings.backup_misses)

        subscribers = [Subscriber(engine, host, network, name=host.name)
                       for host in sub_hosts]
        publisher_stats = PublisherStats()
        for group in workload.proxies:
            host = pub_hosts[group.host_index]
            group_specs = [config.topics[spec.topic_id] for spec in group.specs]
            PublisherProxy(
                engine, host, network, publisher_id=group.publisher_id,
                specs=group_specs,
                primary_ingress=primary.ingress_address,
                backup_ingress=backup.ingress_address,
                failover_bound=settings.failover_bound,
                detector_poll=settings.publisher_poll,
                detector_timeout=settings.publisher_timeout,
                detector_misses=settings.publisher_misses,
                start_offset=engine.rng(
                    f"phase/{group.publisher_id}").uniform(0.0, group_specs[0].period),
                stats=publisher_stats)

        edge_records.append({
            "workload": workload,
            "primary_host": primary_host,
            "primary": primary,
            "backup": backup,
            "publisher_stats": publisher_stats,
            "subscribers": subscribers,
        })

    crash_time = None
    if crash_edge is not None:
        crash_time = settings.warmup + settings.crash_at
        engine.call_at(crash_time, edge_records[crash_edge]["primary_host"].crash)

    engine.run(until=t_end)

    edges: List[RunResult] = []
    for edge_index, record in enumerate(edge_records):
        merged = SubscriberStats()
        for subscriber in record["subscribers"]:
            merged.merge(subscriber.stats)
        # Fold in this edge's slice of the shared cloud subscriber.
        for spec in record["workload"].specs:
            if spec.destination == CLOUD:
                merged.latency_by_seq[spec.topic_id] = dict(
                    cloud_subscriber.stats.latency_by_seq.get(spec.topic_id, {}))
        edges.append(RunResult(
            settings=settings,
            workload=record["workload"],
            publisher_stats=record["publisher_stats"],
            subscriber_stats=merged,
            primary_broker=record["primary"],
            backup_broker=record["backup"],
            crash_time=crash_time if edge_index == crash_edge else None,
            window=(t0, t_end),
            accounting_end=t_end - settings.grace,
        ))
    return MultiEdgeResult(edges=edges, cloud_stats=cloud_subscriber.stats,
                           crashed_edge=crash_edge)


def run_multi_edge_cell(settings: ExperimentSettings, num_edges: int = 2,
                        crash_edge: Optional[int] = None):
    """Run one multi-edge scenario and reduce each edge to a cell summary.

    This is the worker-friendly form used by
    :func:`repro.experiments.parallel.run_multi_edge_cells`: the full
    per-edge :class:`RunResult` objects (per-message records, live broker
    state) stay inside the process; only the compact per-edge
    :class:`~repro.experiments.cells.CellSummary` tuple crosses back.
    """
    from repro.experiments.cells import summarize

    result = run_multi_edge(settings, num_edges=num_edges,
                            crash_edge=crash_edge)
    return tuple(summarize(edge) for edge in result.edges)
