"""Command-line interface: regenerate the paper's tables and figures.

Examples::

    python -m repro.experiments table4
    python -m repro.experiments table5 --seeds 10 --jobs 4
    python -m repro.experiments fig9 --workload 7525
    python -m repro.experiments all --seeds 3 --scale 0.1
    python -m repro.experiments all --full --jobs 0  # paper-scale, all CPUs

``--full`` runs at scale 1.0 with the paper's timing (35 s warm-up, 60 s
measuring phase); expect hours of wall-clock time.  ``--jobs N`` (or the
``REPRO_JOBS`` env var; 0 = all CPUs) fans the sweeps out over worker
processes with bit-identical results, and summaries persist under
``benchmarks/.cellcache/`` so repeated sweeps skip simulation.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import os

from repro.experiments import ablations, export, figures, tables
from repro.experiments.runner import ExperimentSettings


def _base_settings(args: argparse.Namespace) -> ExperimentSettings:
    if args.full:
        return ExperimentSettings(scale=1.0, warmup=35.0, measure=60.0, grace=2.0)
    return ExperimentSettings(scale=args.scale)


def _emit(text: str, out_path: Optional[str]) -> None:
    print(text)
    if out_path:
        with open(out_path, "a", encoding="utf-8") as handle:
            handle.write(text + "\n\n")


def _export(args, name: str, obj) -> None:
    if args.json_dir:
        os.makedirs(args.json_dir, exist_ok=True)
        export.save_json(obj, os.path.join(args.json_dir, f"{name}.json"))


def _run_table4(args) -> None:
    result = tables.table4(seeds=range(args.seeds), settings=_base_settings(args),
                           jobs=args.jobs)
    _emit(result.render(), args.out)
    _export(args, "table4", export.table_to_dict(result))


def _run_table5(args) -> None:
    result = tables.table5(seeds=range(args.seeds), settings=_base_settings(args),
                           jobs=args.jobs)
    _emit(result.render(), args.out)
    _export(args, "table5", export.table_to_dict(result))


def _run_fig7(args) -> None:
    result = figures.fig7(seeds=range(args.seeds), settings=_base_settings(args),
                          jobs=args.jobs)
    _emit(result.render(), args.out)
    _export(args, "fig7", export.fig7_to_dict(result))


def _run_fig8(args) -> None:
    scale = 1.0 if args.full else min(args.scale, 0.05)
    result = figures.fig8(scale=scale, settings=_base_settings(args))
    _emit(result.render() + "\n\n" + result.render_chart(), args.out)
    _export(args, "fig8", export.fig8_to_dict(result))


def _run_fig9(args) -> None:
    result = figures.fig9(paper_total=args.workload, settings=_base_settings(args),
                          jobs=args.jobs)
    charts = "\n\n".join(result.render_chart(policy, 2)
                         for policy in ("FRAME", "FCFS-"))
    _emit(result.render() + "\n\n" + charts, args.out)
    _export(args, "fig9", export.fig9_to_dict(result))


def _run_ablations(args) -> None:
    for lesson in ablations.all_lessons(scale=args.scale, seeds=range(args.seeds),
                                        jobs=args.jobs):
        _emit(lesson.render(), args.out)
    _emit(ablations.retention_sweep().render(), args.out)


def _run_strategies(args) -> None:
    for result in ablations.table1_strategies(scale=args.scale,
                                              seeds=range(args.seeds),
                                              jobs=args.jobs):
        _emit(result.render(), args.out)


def _run_plan(args) -> None:
    from repro.analysis import plan_capacity
    from repro.core.config import CostModel
    from repro.core.policy import policy_by_name
    from repro.metrics.report import format_table
    from repro.workloads.custom import load_topics
    from repro.workloads.spec import build_workload

    if args.topics:
        specs = load_topics(args.topics)
        source = args.topics
    else:
        specs = list(build_workload(args.workload, scale=args.scale).specs)
        source = f"Table 2 workload, {args.workload} topics @ scale {args.scale}"
    policy = policy_by_name(args.policy)
    settings = _base_settings(args)
    report = plan_capacity(specs, policy, settings.deadline_parameters(),
                           CostModel.calibrated(args.scale if not args.full else 1.0))
    rows = [[module.name, f"{module.demand:.3f}", f"{module.capacity:.0f}",
             f"{100 * module.utilization:.1f}%",
             "OVERLOADED" if module.overloaded else "ok"]
            for module in report.plan.modules]
    _emit(format_table(
        f"Capacity plan: {source} under {policy.name}",
        ["module", "demand (cores)", "capacity", "utilization", "verdict"],
        rows), args.out)
    verdict = "DEPLOYABLE" if report.deployable else "NOT deployable"
    lines = [f"admitted topics : {report.admitted}",
             f"rejected topics : {len(report.rejected)}",
             f"verdict         : {verdict}"]
    for topic_id, reason in report.rejected[:10]:
        lines.append(f"  rejected {topic_id}: {reason}")
    _emit("\n".join(lines), args.out)


def _run_all(args) -> None:
    _run_table4(args)
    _run_table5(args)
    _run_fig7(args)
    _run_fig8(args)
    _run_fig9(args)
    _run_ablations(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="frame-experiments",
        description="Regenerate the FRAME paper's tables and figures.",
    )
    parser.add_argument("--seeds", type=int, default=5,
                        help="repetitions per cell (paper uses 10)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the sweeps (default: "
                             "$REPRO_JOBS or 1; 0 = all CPUs)")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="sensor-topic scale factor (1.0 = paper scale)")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale workloads and timing (slow)")
    parser.add_argument("--out", type=str, default=None,
                        help="append rendered output to this file")
    parser.add_argument("--json-dir", type=str, default=None,
                        help="also write machine-readable JSON exports here")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("table4", help="loss-tolerance success rates").set_defaults(
        func=_run_table4)
    sub.add_parser("table5", help="latency success rates").set_defaults(
        func=_run_table5)
    sub.add_parser("fig7", help="per-module CPU utilization").set_defaults(
        func=_run_fig7)
    sub.add_parser("fig8", help="cloud-latency variation micro-benchmark").set_defaults(
        func=_run_fig8)
    fig9_parser = sub.add_parser("fig9", help="latency around fault recovery")
    fig9_parser.add_argument("--workload", type=int, default=7525)
    fig9_parser.set_defaults(func=_run_fig9)
    sub.add_parser("ablations", help="the Sec. VI-E lesson ablations").set_defaults(
        func=_run_ablations)
    sub.add_parser("strategies",
                   help="Table 1 loss-tolerance strategies incl. local disk"
                   ).set_defaults(func=_run_strategies)
    plan_parser = sub.add_parser(
        "plan", help="admission + capacity planning (no simulation)")
    plan_parser.add_argument("--topics", type=str, default=None,
                             help="JSON topic file (see repro.workloads.custom)")
    plan_parser.add_argument("--workload", type=int, default=7525,
                             help="Table 2 workload size when no file given")
    plan_parser.add_argument("--policy", type=str, default="FRAME")
    plan_parser.set_defaults(func=_run_plan)
    all_parser = sub.add_parser("all", help="everything")
    all_parser.add_argument("--workload", type=int, default=7525)
    all_parser.set_defaults(func=_run_all)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
