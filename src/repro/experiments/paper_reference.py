"""The paper's published numbers, for side-by-side comparison.

Values transcribed from the paper (ICDCS 2019).  Success rates are
percentages; ``None`` marks cells the paper does not report.  These feed
the rendered tables ("paper" columns) and the benchmarks' qualitative
shape checks — the reproduction is expected to match *shape* (who wins,
where the overload crossovers fall), not absolute numbers.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

RowKey = Tuple[float, float]
INF = float("inf")

#: Table rows in paper order: (Di ms, Li).
ROWS: Tuple[RowKey, ...] = ((50, 0), (50, 3), (100, 0), (100, 3), (100, INF), (500, 0))

POLICIES: Tuple[str, ...] = ("FRAME+", "FRAME", "FCFS", "FCFS-")

#: Table 4 — success rate for loss-tolerance requirement (%), mean values.
#: The paper reports 100 % for every cell at 1525 and 4525 topics.
TABLE4: Dict[int, Dict[RowKey, Dict[str, float]]] = {
    7525: {
        (50, 0): {"FRAME+": 100.0, "FRAME": 100.0, "FCFS": 0.0, "FCFS-": 100.0},
        (50, 3): {"FRAME+": 100.0, "FRAME": 100.0, "FCFS": 0.0, "FCFS-": 100.0},
        (100, 0): {"FRAME+": 100.0, "FRAME": 100.0, "FCFS": 0.0, "FCFS-": 100.0},
        (100, 3): {"FRAME+": 100.0, "FRAME": 100.0, "FCFS": 0.0, "FCFS-": 100.0},
        (100, INF): {"FRAME+": 100.0, "FRAME": 100.0, "FCFS": 100.0, "FCFS-": 100.0},
        (500, 0): {"FRAME+": 100.0, "FRAME": 100.0, "FCFS": 0.0, "FCFS-": 100.0},
    },
    10525: {
        (50, 0): {"FRAME+": 100.0, "FRAME": 100.0, "FCFS": 0.0, "FCFS-": 100.0},
        (50, 3): {"FRAME+": 100.0, "FRAME": 100.0, "FCFS": 0.0, "FCFS-": 100.0},
        (100, 0): {"FRAME+": 100.0, "FRAME": 100.0, "FCFS": 0.0, "FCFS-": 100.0},
        (100, 3): {"FRAME+": 100.0, "FRAME": 100.0, "FCFS": 0.0, "FCFS-": 100.0},
        (100, INF): {"FRAME+": 100.0, "FRAME": 100.0, "FCFS": 100.0, "FCFS-": 100.0},
        (500, 0): {"FRAME+": 100.0, "FRAME": 100.0, "FCFS": 0.0, "FCFS-": 100.0},
    },
    13525: {
        (50, 0): {"FRAME+": 100.0, "FRAME": 80.0, "FCFS": 0.0, "FCFS-": 100.0},
        (50, 3): {"FRAME+": 100.0, "FRAME": 80.0, "FCFS": 0.0, "FCFS-": 100.0},
        (100, 0): {"FRAME+": 100.0, "FRAME": 73.2, "FCFS": 0.0, "FCFS-": 78.4},
        (100, 3): {"FRAME+": 100.0, "FRAME": 79.3, "FCFS": 0.0, "FCFS-": 99.3},
        (100, INF): {"FRAME+": 100.0, "FRAME": 100.0, "FCFS": 100.0, "FCFS-": 100.0},
        (500, 0): {"FRAME+": 100.0, "FRAME": 80.0, "FCFS": 0.0, "FCFS-": 100.0},
    },
}

#: Table 5 — success rate for latency requirement (%), mean values.
#: The paper reports 100 % for every cell at 1525 topics.
TABLE5: Dict[int, Dict[RowKey, Dict[str, float]]] = {
    4525: {
        (50, 0): {"FRAME+": 100.0, "FRAME": 99.9, "FCFS": 99.9, "FCFS-": 100.0},
        (50, 3): {"FRAME+": 100.0, "FRAME": 99.9, "FCFS": 99.9, "FCFS-": 100.0},
        (100, 0): {"FRAME+": 100.0, "FRAME": 100.0, "FCFS": 100.0, "FCFS-": 100.0},
        (100, 3): {"FRAME+": 100.0, "FRAME": 100.0, "FCFS": 99.9, "FCFS-": 100.0},
        (100, INF): {"FRAME+": 100.0, "FRAME": 100.0, "FCFS": 99.9, "FCFS-": 100.0},
        (500, 0): {"FRAME+": 100.0, "FRAME": 100.0, "FCFS": 100.0, "FCFS-": 100.0},
    },
    7525: {
        (50, 0): {"FRAME+": 100.0, "FRAME": 99.9, "FCFS": 0.2, "FCFS-": 99.9},
        (50, 3): {"FRAME+": 100.0, "FRAME": 99.9, "FCFS": 0.2, "FCFS-": 99.9},
        (100, 0): {"FRAME+": 100.0, "FRAME": 99.9, "FCFS": 0.0, "FCFS-": 99.9},
        (100, 3): {"FRAME+": 100.0, "FRAME": 99.9, "FCFS": 0.0, "FCFS-": 99.9},
        (100, INF): {"FRAME+": 100.0, "FRAME": 99.9, "FCFS": 0.0, "FCFS-": 99.9},
        (500, 0): {"FRAME+": 100.0, "FRAME": 100.0, "FCFS": 0.0, "FCFS-": 100.0},
    },
    10525: {
        (50, 0): {"FRAME+": 100.0, "FRAME": 99.9, "FCFS": 0.2, "FCFS-": 99.8},
        (50, 3): {"FRAME+": 100.0, "FRAME": 99.9, "FCFS": 0.2, "FCFS-": 99.8},
        (100, 0): {"FRAME+": 99.9, "FRAME": 99.9, "FCFS": 0.072, "FCFS-": 99.9},
        (100, 3): {"FRAME+": 99.9, "FRAME": 99.9, "FCFS": 0.072, "FCFS-": 99.9},
        (100, INF): {"FRAME+": 99.9, "FRAME": 99.9, "FCFS": 0.069, "FCFS-": 99.9},
        (500, 0): {"FRAME+": 100.0, "FRAME": 100.0, "FCFS": 0.0, "FCFS-": 100.0},
    },
    13525: {
        (50, 0): {"FRAME+": 98.4, "FRAME": 85.4, "FCFS": 0.1, "FCFS-": 99.4},
        (50, 3): {"FRAME+": 98.4, "FRAME": 85.3, "FCFS": 0.2, "FCFS-": 99.5},
        (100, 0): {"FRAME+": 97.6, "FRAME": 83.7, "FCFS": 0.0, "FCFS-": 98.3},
        (100, 3): {"FRAME+": 97.6, "FRAME": 83.8, "FCFS": 0.0, "FCFS-": 98.3},
        (100, INF): {"FRAME+": 97.6, "FRAME": 83.8, "FCFS": 0.0, "FCFS-": 98.3},
        (500, 0): {"FRAME+": 98.6, "FRAME": 86.1, "FCFS": 0.0, "FCFS-": 100.0},
    },
}

#: Fig. 9 headline numbers at 7525 topics (crash runs).
FIG9_NOTES = {
    "FRAME": "peak latency below 50 ms for category 0; Backup Buffer empty "
             "(all pruned) at recovery; zero losses",
    "FRAME+": "zero losses; one message recovered per topic via publisher "
              "resend for categories 0 and 2; slightly above FRAME's latency",
    "FCFS": "overloaded: latency > 10 s and losses (206 for a cat-0 topic, "
            "103 cat-2, 20 cat-5)",
    "FCFS-": "peak latency above 500 ms (cat 2) clearing a full Backup "
             "Buffer; no real losses; resends unnecessary",
}

#: Fig. 8: the configured dBS lower bound was 20.7 ms; one +104 ms spike
#: was observed; no message was lost during the 24-hour run.
FIG8_DELTA_BS_SETUP_MS = 20.7
FIG8_SPIKE_MS = 104.0


def paper_value(table: Dict[int, Dict[RowKey, Dict[str, float]]],
                paper_total: int, row: RowKey, policy: str) -> Optional[float]:
    """Look up a published mean, or None when the paper omits the cell."""
    by_row = table.get(paper_total)
    if by_row is None:
        return None
    by_policy = by_row.get(row)
    if by_policy is None:
        return None
    return by_policy.get(policy)
