"""Scheduled fail-stop crash injection.

The paper injects a crash by sending ``SIGKILL`` to the Primary broker at
the 30th second of the measuring phase; the equivalent here is a scheduled
:meth:`Host.crash`, which kills every process on the host and makes the
network drop packets addressed to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class FaultPlan:
    """Which hosts crash, and when (absolute simulated time)."""

    crashes: Tuple[Tuple[str, float], ...] = ()

    @staticmethod
    def none() -> "FaultPlan":
        return FaultPlan()

    @staticmethod
    def primary_crash(at: float, host_name: str = "primary") -> "FaultPlan":
        return FaultPlan(crashes=((host_name, at),))

    def crash_time_of(self, host_name: str) -> Optional[float]:
        for name, at in self.crashes:
            if name == host_name:
                return at
        return None


class CrashInjector:
    """Arms a :class:`FaultPlan` against a set of hosts."""

    def __init__(self, engine, hosts_by_name: Dict[str, object], plan: FaultPlan):
        self.engine = engine
        self.plan = plan
        self.injected: List[Tuple[str, float]] = []
        for host_name, at in plan.crashes:
            host = hosts_by_name.get(host_name)
            if host is None:
                raise KeyError(f"fault plan names unknown host {host_name!r}")
            engine.call_at(at, self._crash, host)

    def _crash(self, host) -> None:
        host.crash()
        self.injected.append((host.name, self.engine.now))
