"""Fault injection: scheduled fail-stop crashes (paper Sec. VI-A)."""

from repro.faults.injector import CrashInjector, FaultPlan

__all__ = ["CrashInjector", "FaultPlan"]
