"""Closed-form module-utilization model and admission planning.

For a topic set with aggregate message rate ``lambda`` and replicated-topic
rate ``rho`` (the topics FRAME actually replicates under Proposition 1),
per-module CPU demand is:

* Message Proxy (Primary):   ``lambda * c_p``
* Message Delivery (Primary):
    - FRAME:   ``lambda * c_d + rho * (c_r + c_c)``
    - FRAME+:  ``lambda * c_d`` (retention bonus removes all replication)
    - FCFS:    ``lambda * (c_d + c_r + c_c)`` (replicate + coordinate all)
    - FCFS−:   ``lambda * (c_d + c_r)`` (no coordination)
* Message Proxy (Backup):    ``replica_rate * c_store + prune_rate * c_prune``

These are *offered demands*; utilization is demand capped at module
capacity.  The model is linear (no contention term), which matches the
simulator by construction and the paper's testbed up to the saturation
knee (see EXPERIMENTS.md, known deviations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.core.config import CostModel
from repro.core.model import TopicSpec
from repro.core.policy import ConfigPolicy
from repro.core.timing import DeadlineParameters, admission_test, needs_replication


@dataclass(frozen=True)
class ModuleDemand:
    """Offered demand and capacity of one broker module (in cores)."""

    name: str
    demand: float
    capacity: float

    @property
    def utilization(self) -> float:
        """Realized busy fraction of the module (demand capped at 1.0)."""
        return min(self.demand, self.capacity) / self.capacity

    @property
    def overloaded(self) -> bool:
        return self.demand > self.capacity


@dataclass(frozen=True)
class CapacityPlan:
    """Predicted per-module demands for one (topic set, policy) pair."""

    policy_name: str
    message_rate: float
    replicated_rate: float
    modules: Tuple[ModuleDemand, ...]

    def module(self, name: str) -> ModuleDemand:
        for module in self.modules:
            if module.name == name:
                return module
        raise KeyError(name)

    @property
    def feasible(self) -> bool:
        """True when no module is driven past its capacity."""
        return self.feasible_with(headroom=0.0)

    def feasible_with(self, headroom: float) -> bool:
        """Feasible with ``headroom`` spare capacity on every module.

        Production deployments should plan with headroom: a module at
        99.9 % of capacity is one background-load burst away from missing
        deadlines (exactly the bimodality the paper's 13525-topic CIs
        show).
        """
        if not 0.0 <= headroom < 1.0:
            raise ValueError("headroom must be in [0, 1)")
        limit = 1.0 - headroom
        return all(module.demand <= limit * module.capacity
                   for module in self.modules)

    @property
    def bottleneck(self) -> ModuleDemand:
        """The module closest to (or deepest past) saturation."""
        return max(self.modules, key=lambda m: m.demand / m.capacity)


@dataclass(frozen=True)
class CapacityReport:
    """Admission + capacity verdict for a whole deployment."""

    plan: CapacityPlan
    admitted: int
    rejected: Tuple[Tuple[int, str], ...]   # (topic_id, reason)

    @property
    def deployable(self) -> bool:
        return self.plan.feasible and not self.rejected


def _rates(specs: Iterable[TopicSpec], policy: ConfigPolicy,
           params: DeadlineParameters) -> Tuple[float, float]:
    """(aggregate message rate, rate of topics the policy replicates)."""
    specs = list(policy.adjust_specs(list(specs)))
    message_rate = sum(1.0 / spec.period for spec in specs)
    if not policy.replication_enabled:
        replicated_rate = 0.0
    elif policy.selective_replication:
        replicated_rate = sum(1.0 / spec.period for spec in specs
                              if needs_replication(spec, params))
    else:
        replicated_rate = message_rate
    return message_rate, replicated_rate


def predict_utilization(specs: Iterable[TopicSpec], policy: ConfigPolicy,
                        params: DeadlineParameters, costs: CostModel,
                        delivery_workers: int = 2) -> CapacityPlan:
    """Predict per-module demand for a topic set under a policy."""
    specs = list(specs)
    message_rate, replicated_rate = _rates(specs, policy, params)
    proxy_demand = message_rate * costs.proxy_per_message
    dispatch_demand = message_rate * costs.dispatch
    if policy.coordination:
        replication_demand = replicated_rate * (costs.replicate + costs.coordinate)
    else:
        replication_demand = replicated_rate * costs.replicate
    delivery_demand = dispatch_demand + replication_demand
    if policy.disk_logging:
        # Synchronous journal writes block delivery workers (I/O wait);
        # they consume delivery *capacity* even though they burn no CPU.
        delivery_demand += message_rate * costs.disk_write
    backup_demand = replicated_rate * costs.backup_store
    if policy.coordination:
        backup_demand += replicated_rate * costs.backup_prune
    return CapacityPlan(
        policy_name=policy.name,
        message_rate=message_rate,
        replicated_rate=replicated_rate,
        modules=(
            ModuleDemand("primary_proxy", proxy_demand, 1.0),
            ModuleDemand("primary_delivery", delivery_demand,
                         float(delivery_workers)),
            ModuleDemand("backup_proxy", backup_demand, 1.0),
        ),
    )


def plan_capacity(specs: Iterable[TopicSpec], policy: ConfigPolicy,
                  params: DeadlineParameters, costs: CostModel,
                  delivery_workers: int = 2) -> CapacityReport:
    """Full deployment check: per-topic admission plus module capacity.

    A deployment is *deployable* when every topic passes the Sec. III-D.1
    admission test (after the policy's retention adjustment) and no broker
    module is driven past saturation.
    """
    specs = list(specs)
    adjusted = policy.adjust_specs(specs)
    rejected: List[Tuple[int, str]] = []
    for spec in adjusted:
        verdict = admission_test(spec, params)
        if not verdict.admitted:
            rejected.append((spec.topic_id, verdict.reason))
    plan = predict_utilization(specs, policy, params, costs,
                               delivery_workers=delivery_workers)
    return CapacityReport(plan=plan, admitted=len(adjusted) - len(rejected),
                          rejected=tuple(rejected))


def max_admissible_workload(make_specs, policy: ConfigPolicy,
                            params: DeadlineParameters, costs: CostModel,
                            candidates: Iterable[int],
                            delivery_workers: int = 2,
                            headroom: float = 0.0) -> int:
    """Largest workload size from ``candidates`` that stays deployable.

    ``make_specs(size)`` must return the topic set for a candidate size
    (e.g. ``lambda n: build_workload(n).specs``); ``headroom`` reserves
    spare capacity on every module.  Returns 0 when none fit.
    """
    best = 0
    for size in sorted(candidates):
        report = plan_capacity(make_specs(size), policy, params, costs,
                               delivery_workers=delivery_workers)
        if report.plan.feasible_with(headroom) and not report.rejected:
            best = size
    return best
