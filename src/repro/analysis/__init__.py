"""Analytic capacity planning for FRAME deployments.

Closed-form utilization predictions for each broker module under each
configuration policy — the model behind DESIGN.md §5's calibration,
exposed as a library API so operators can size deployments *before*
running them.  The test suite validates these predictions against the
simulator to within a few percent.
"""

from repro.analysis.capacity import (
    CapacityPlan,
    CapacityReport,
    ModuleDemand,
    plan_capacity,
    predict_utilization,
)
from repro.analysis.schedulability import (
    SchedulabilityVerdict,
    SporadicTask,
    check_topic_set,
    delivery_task_set,
    edf_schedulability,
)

__all__ = [
    "CapacityPlan",
    "CapacityReport",
    "ModuleDemand",
    "SchedulabilityVerdict",
    "SporadicTask",
    "check_topic_set",
    "delivery_task_set",
    "edf_schedulability",
    "plan_capacity",
    "predict_utilization",
]
