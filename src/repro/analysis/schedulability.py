"""EDF schedulability analysis of the Message Delivery job set.

Proposition 1's premise is that "a system can meet deadline ``Dd_i``";
the paper leaves *checking* that premise to measurement.  This module
provides the classical analytic check: the broker's dispatch/replication
jobs form a sporadic task set (period ``Ti``, WCET from the cost model,
relative deadline ``Dd_i``/``Dr_i``), and EDF feasibility on one core is
characterized by the **demand bound function**::

    dbf(t) = sum_i  max(0, floor((t - D_i) / T_i) + 1) * C_i   <=   t

for every t up to a bounded busy-period horizon (Baruah et al.).  For the
paper's two-core Message Delivery module we apply the same test against
``m * t``; with m > 1 this is a *necessary* condition plus the standard
density bound as a sufficient one — both verdicts are reported honestly.

Deadlines use the pessimistic (pseudo minus the configured ΔPB estimate)
values, matching what the broker would see at run time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.core.config import CostModel
from repro.core.model import TopicSpec
from repro.core.policy import ConfigPolicy
from repro.core.timing import (
    DeadlineParameters,
    dispatch_deadline,
    needs_replication,
    replication_deadline,
)


@dataclass(frozen=True)
class SporadicTask:
    """One sporadic task: minimum inter-arrival, WCET, relative deadline."""

    name: str
    period: float
    wcet: float
    deadline: float

    def __post_init__(self):
        if self.period <= 0 or self.wcet <= 0:
            raise ValueError(f"{self.name}: period and wcet must be positive")
        if self.deadline <= 0:
            raise ValueError(f"{self.name}: non-positive deadline "
                             f"(inadmissible topic; run the admission test first)")

    @property
    def utilization(self) -> float:
        return self.wcet / self.period

    @property
    def density(self) -> float:
        return self.wcet / min(self.deadline, self.period)

    def demand(self, t: float) -> float:
        """Demand bound of this task over any interval of length ``t``."""
        if t < self.deadline:
            return 0.0
        return (math.floor((t - self.deadline) / self.period) + 1) * self.wcet


@dataclass(frozen=True)
class SchedulabilityVerdict:
    """Outcome of the EDF analysis."""

    feasible_necessary: bool      # dbf(t) <= m*t everywhere checked
    feasible_sufficient: bool     # density bound (conservative)
    total_utilization: float
    capacity: float
    worst_slack: float            # min over checked t of (m*t - dbf(t))
    worst_time: float             # the t achieving worst_slack
    checked_points: int

    @property
    def verdict(self) -> str:
        if self.feasible_sufficient:
            return "schedulable (sufficient density bound)"
        if self.feasible_necessary:
            return "plausibly schedulable (necessary demand bound holds)"
        return "NOT schedulable (demand bound violated)"


def delivery_task_set(specs: Iterable[TopicSpec], policy: ConfigPolicy,
                      params: DeadlineParameters,
                      costs: CostModel) -> List[SporadicTask]:
    """The Message Delivery module's task set for a topic set + policy."""
    tasks: List[SporadicTask] = []
    for spec in policy.adjust_specs(list(specs)):
        dd = dispatch_deadline(spec, params)
        dispatch_cost = costs.dispatch
        if policy.disk_logging:
            dispatch_cost += costs.disk_write
        tasks.append(SporadicTask(f"dispatch/{spec.topic_id}", spec.period,
                                  dispatch_cost, dd))
        if not policy.replication_enabled:
            continue
        replicates = (needs_replication(spec, params)
                      if policy.selective_replication else True)
        if replicates:
            cost = costs.replicate
            if policy.coordination:
                cost += costs.coordinate
            dr = replication_deadline(spec, params)
            if math.isinf(dr):
                # Best-effort topics under the undifferentiated baselines:
                # the engine still replicates them, so their load exists
                # but no loss requirement bounds it.  Model the work with
                # an implicit deadline so the analysis accounts for it.
                dr = spec.period
            tasks.append(SporadicTask(f"replicate/{spec.topic_id}",
                                      spec.period, cost, dr))
    return tasks


def _busy_period_horizon(tasks: Sequence[SporadicTask], capacity: float) -> float:
    """Standard horizon bound: beyond it, dbf(t) <= m*t is implied by U < m."""
    total_u = sum(task.utilization for task in tasks)
    if total_u >= capacity:
        return max(task.deadline for task in tasks)  # already infeasible-ish
    numerator = sum(max(0.0, task.period - task.deadline) * task.utilization
                    for task in tasks)
    horizon = numerator / (capacity - total_u)
    return max(horizon, max(task.deadline for task in tasks))


def edf_schedulability(tasks: Sequence[SporadicTask], capacity: float = 1.0,
                       max_points: int = 50_000) -> SchedulabilityVerdict:
    """Run the demand-bound test over all deadline points up to the horizon.

    ``max_points`` caps the number of absolute-deadline test points (the
    points are the only places dbf can jump); with huge topic sets the
    later points are subsampled, which can only make the *necessary* test
    more permissive — the density bound is unaffected.
    """
    tasks = list(tasks)
    if not tasks:
        return SchedulabilityVerdict(True, True, 0.0, capacity,
                                     worst_slack=math.inf, worst_time=0.0,
                                     checked_points=0)
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    total_u = sum(task.utilization for task in tasks)
    total_density = sum(task.density for task in tasks)
    # Sufficient condition (uniprocessor: density <= 1; multiprocessor we
    # use the conservative global-EDF density bound m - (m-1)*max_density).
    max_density = max(task.density for task in tasks)
    if capacity == 1.0:
        sufficient = total_density <= 1.0 + 1e-12
    else:
        sufficient = total_density <= capacity - (capacity - 1.0) * max_density + 1e-12

    if total_u > capacity:
        return SchedulabilityVerdict(False, False, total_u, capacity,
                                     worst_slack=-math.inf,
                                     worst_time=math.inf, checked_points=0)

    horizon = _busy_period_horizon(tasks, capacity)
    points: set = set()
    for task in tasks:
        t = task.deadline
        while t <= horizon and len(points) < max_points * 4:
            points.add(t)
            t += task.period
    ordered = sorted(points)
    if len(ordered) > max_points:
        step = len(ordered) / max_points
        ordered = [ordered[int(index * step)] for index in range(max_points)]

    worst_slack = math.inf
    worst_time = 0.0
    feasible = True
    for t in ordered:
        demand = sum(task.demand(t) for task in tasks)
        slack = capacity * t - demand
        if slack < worst_slack:
            worst_slack = slack
            worst_time = t
        if slack < -1e-9:
            feasible = False
    return SchedulabilityVerdict(
        feasible_necessary=feasible,
        feasible_sufficient=bool(sufficient),
        total_utilization=total_u,
        capacity=capacity,
        worst_slack=worst_slack,
        worst_time=worst_time,
        checked_points=len(ordered),
    )


def check_topic_set(specs: Iterable[TopicSpec], policy: ConfigPolicy,
                    params: DeadlineParameters, costs: CostModel,
                    delivery_workers: int = 2,
                    max_points: int = 50_000) -> SchedulabilityVerdict:
    """End-to-end: build the delivery job set and run the EDF analysis."""
    tasks = delivery_task_set(specs, policy, params, costs)
    return edf_schedulability(tasks, capacity=float(delivery_workers),
                              max_points=max_points)
