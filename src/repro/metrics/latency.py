"""Latency accounting (the paper's latency-success metric, Table 5).

A message is a latency success when it is delivered within its topic's
end-to-end deadline ``Di``; undelivered messages count as misses.  The
success rate of a topic is the fraction of successes among the messages
created inside the accounting window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence


@dataclass
class LatencySummary:
    """Reduction of one topic's delivered latencies over a window."""

    published: int
    delivered: int
    on_time: int
    mean_latency: float
    max_latency: float

    @property
    def success_rate(self) -> float:
        if self.published == 0:
            return 1.0
        return self.on_time / self.published

    @property
    def delivery_rate(self) -> float:
        if self.published == 0:
            return 1.0
        return self.delivered / self.published


def latency_summary(published_seqs: Sequence[int],
                    latency_by_seq: Dict[int, float],
                    deadline: float) -> LatencySummary:
    """Summarize one topic given its published seqs and delivery records."""
    delivered = 0
    on_time = 0
    total = 0.0
    worst = -math.inf
    for seq in published_seqs:
        latency = latency_by_seq.get(seq)
        if latency is None:
            continue
        delivered += 1
        total += latency
        if latency > worst:
            worst = latency
        if latency <= deadline:
            on_time += 1
    return LatencySummary(
        published=len(published_seqs),
        delivered=delivered,
        on_time=on_time,
        mean_latency=total / delivered if delivered else math.nan,
        max_latency=worst if delivered else math.nan,
    )


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (``fraction`` in [0, 1]) of a non-empty list."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    ordered = sorted(values)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[rank - 1]
