"""Measurement and reporting: loss runs, latency success, CPU, statistics."""

from repro.metrics.latency import LatencySummary, latency_summary
from repro.metrics.loss import (
    consecutive_loss_runs,
    max_consecutive_losses,
    meets_loss_tolerance,
)
from repro.metrics.stats import mean_confidence_interval
from repro.metrics.report import format_table

__all__ = [
    "LatencySummary",
    "consecutive_loss_runs",
    "format_table",
    "latency_summary",
    "max_consecutive_losses",
    "mean_confidence_interval",
    "meets_loss_tolerance",
]
