"""Statistical reductions across repeated runs.

The paper reports each measurement as a mean with a 95 % confidence
interval over ten runs; :func:`mean_confidence_interval` reproduces that
(Student's t).  Implemented without SciPy so the core library stays
dependency-free; the inverse-t values for small sample sizes are tabulated
and checked against SciPy in the test suite when SciPy is available.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

# Two-sided 95 % critical values of Student's t for df = 1..30.
_T95 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]
_T95_INF = 1.960


def t_critical_95(df: int) -> float:
    """Two-sided 95 % Student-t critical value for ``df`` degrees of freedom."""
    if df < 1:
        raise ValueError("degrees of freedom must be >= 1")
    if df <= len(_T95):
        return _T95[df - 1]
    return _T95_INF


def mean_confidence_interval(values: Sequence[float]) -> Tuple[float, float]:
    """``(mean, half_width)`` of the 95 % CI of the mean.

    A single sample has an undefined interval; it is reported as width 0
    (the paper's tables omit the ± term when the variance is zero).
    """
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half_width = t_critical_95(n - 1) * math.sqrt(variance / n)
    return mean, half_width


def sample_std(values: Sequence[float]) -> float:
    """Sample (n-1) standard deviation."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    mean = sum(values) / len(values)
    return math.sqrt(sum((v - mean) ** 2 for v in values) / (len(values) - 1))
