"""Plain-text rendering of paper-style tables and figure summaries."""

from __future__ import annotations

from typing import List, Sequence


def format_value(mean: float, half_width: float, digits: int = 1) -> str:
    """Render ``mean ± half_width`` the way the paper's tables do.

    Zero-width intervals render as the bare mean; tiny half-widths use
    scientific notation like Table 5's ``2.5E-2`` entries.
    """
    if half_width == 0.0:
        return f"{mean:.{digits}f}"
    if half_width < 10 ** (-digits) / 2:
        return f"{mean:.{digits}f} ± {half_width:.1E}"
    return f"{mean:.{digits}f} ± {half_width:.{digits}f}"


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[str]]) -> str:
    """A fixed-width text table with a title rule, like the paper's tables."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} does not match {columns} headers")
    widths = [len(str(h)) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(widths[index])
                         for index, cell in enumerate(cells)).rstrip()

    rule = "-" * len(render_row(headers))
    lines: List[str] = [title, rule, render_row(headers), rule]
    lines.extend(render_row(row) for row in rows)
    lines.append(rule)
    return "\n".join(lines)
