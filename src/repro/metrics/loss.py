"""Consecutive-loss accounting (the paper's loss-tolerance metric).

A topic meets its requirement iff the subscriber never experiences more
than ``Li`` *consecutive* message losses (Sec. III-B).  Given the ordered
sequence numbers a publisher created and the set a subscriber received
(after dedup), losses are the missing numbers, and what matters is the
longest run of consecutive missing ones.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

from repro.core.model import LOSS_UNBOUNDED


def consecutive_loss_runs(published_seqs: Sequence[int],
                          delivered_seqs: Set[int]) -> List[Tuple[int, int]]:
    """Runs of consecutive losses as ``(first_lost_seq, run_length)``.

    ``published_seqs`` must be in creation order (it normally is a
    contiguous ascending range, but resend logic only needs order).
    """
    runs: List[Tuple[int, int]] = []
    run_start = None
    run_length = 0
    for seq in published_seqs:
        if seq in delivered_seqs:
            if run_length:
                runs.append((run_start, run_length))
            run_start = None
            run_length = 0
        else:
            if not run_length:
                run_start = seq
            run_length += 1
    if run_length:
        runs.append((run_start, run_length))
    return runs


def max_consecutive_losses(published_seqs: Sequence[int],
                           delivered_seqs: Set[int]) -> int:
    """Length of the longest consecutive-loss run (0 when nothing lost)."""
    longest = 0
    current = 0
    for seq in published_seqs:
        if seq in delivered_seqs:
            current = 0
        else:
            current += 1
            if current > longest:
                longest = current
    return longest


def total_losses(published_seqs: Sequence[int], delivered_seqs: Set[int]) -> int:
    return sum(1 for seq in published_seqs if seq not in delivered_seqs)


def meets_loss_tolerance(published_seqs: Sequence[int], delivered_seqs: Set[int],
                         loss_tolerance: float) -> bool:
    """Whether the topic satisfied ``Li`` over the accounting window."""
    if loss_tolerance == LOSS_UNBOUNDED:
        return True
    return max_consecutive_losses(published_seqs, delivered_seqs) <= loss_tolerance


def success_fraction(flags: Iterable[bool]) -> float:
    """Fraction of True values; 1.0 for an empty input (vacuous success)."""
    flags = list(flags)
    if not flags:
        return 1.0
    return sum(flags) / len(flags)
