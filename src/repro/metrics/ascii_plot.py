"""Terminal-friendly ASCII charts for the figure benchmarks.

The paper's Figs 8 and 9 are scatter/line plots; this module renders the
same series as fixed-size ASCII charts so `pytest benchmarks/ -s` and the
CLI can show the *shape* without a plotting dependency.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence


def ascii_chart(xs: Sequence[float], ys: Sequence[float], title: str = "",
                width: int = 72, height: int = 14,
                y_label: str = "", x_label: str = "") -> str:
    """Render ``(xs, ys)`` as a scatter chart in a character grid."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    points = [(x, y) for x, y in zip(xs, ys)
              if math.isfinite(x) and math.isfinite(y)]
    if not points:
        return f"{title}\n(no data)"
    if width < 16 or height < 4:
        raise ValueError("chart too small to be legible")
    x_min = min(x for x, _ in points)
    x_max = max(x for x, _ in points)
    y_min = min(y for _, y in points)
    y_max = max(y for _, y in points)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for x, y in points:
        column = int((x - x_min) / x_span * (width - 1))
        row = int((y - y_min) / y_span * (height - 1))
        grid[height - 1 - row][column] = "*"

    left_labels = [f"{y_max:10.3g} ", " " * 11, f"{y_min:10.3g} "]
    lines: List[str] = []
    if title:
        lines.append(title)
    for index, row in enumerate(grid):
        if index == 0:
            prefix = left_labels[0]
        elif index == height - 1:
            prefix = left_labels[2]
        else:
            prefix = left_labels[1]
        lines.append(prefix + "|" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    footer = f"{x_min:<12.4g}{x_label:^{max(0, width - 24)}}{x_max:>12.4g}"
    lines.append(" " * 12 + footer)
    if y_label:
        lines.insert(1 if title else 0, f"  [{y_label}]")
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """A one-line sparkline (8-level block characters), for log lines."""
    blocks = " .:-=+*#%@"
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return ""
    if width is not None and len(values) > width:
        # Downsample by max within buckets (spikes must stay visible).
        bucket = len(values) / width
        values = [max(values[int(i * bucket):max(int(i * bucket) + 1,
                                                 int((i + 1) * bucket))])
                  for i in range(width)]
    low = min(finite)
    high = max(finite)
    span = (high - low) or 1.0
    out = []
    for value in values:
        if not math.isfinite(value):
            out.append("?")
            continue
        level = int((value - low) / span * (len(blocks) - 1))
        out.append(blocks[level])
    return "".join(out)
