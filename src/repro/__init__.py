"""FRAME: Fault Tolerant and Real-Time Messaging for Edge Computing.

A complete reproduction of the ICDCS 2019 paper (Wang, Gill, Lu): the
timing model (Lemmas 1-2, Proposition 1, admission test), the FRAME broker
architecture (EDF Job Queue, selective replication, dispatch-replicate
coordination, recovery pruning), a deterministic discrete-event testbed
substituting for the paper's hardware, a wall-clock asyncio runtime, and
a benchmark harness regenerating every table and figure in the paper's
evaluation.

Quick start::

    from repro import ExperimentSettings, FRAME, run_experiment

    result = run_experiment(ExperimentSettings(policy=FRAME,
                                               paper_total=1525,
                                               crash_at=6.0))
    print(result.loss_success_by_row())

See ``examples/`` for runnable scenarios and ``DESIGN.md`` for the system
inventory.
"""

from repro.analysis import plan_capacity, predict_utilization
from repro.core import (
    CLOUD,
    EDGE,
    FCFS,
    FCFS_MINUS,
    FRAME,
    FRAME_PLUS,
    LOSS_UNBOUNDED,
    AdmissionResult,
    ConfigPolicy,
    DeadlineParameters,
    Message,
    TopicSpec,
    admission_test,
    deadline_order,
    dispatch_deadline,
    min_retention,
    needs_replication,
    replication_deadline,
)
from repro.core.policy import DISK_LOG, EXTENDED_POLICIES, policy_by_name
from repro.core.units import ms, to_ms, us
from repro.experiments.runner import ExperimentSettings, RunResult, run_experiment
from repro.workloads.spec import PAPER_WORKLOADS, build_workload

__version__ = "1.0.0"

__all__ = [
    "AdmissionResult",
    "DISK_LOG",
    "EXTENDED_POLICIES",
    "plan_capacity",
    "policy_by_name",
    "predict_utilization",
    "CLOUD",
    "ConfigPolicy",
    "DeadlineParameters",
    "EDGE",
    "ExperimentSettings",
    "FCFS",
    "FCFS_MINUS",
    "FRAME",
    "FRAME_PLUS",
    "LOSS_UNBOUNDED",
    "Message",
    "PAPER_WORKLOADS",
    "RunResult",
    "TopicSpec",
    "admission_test",
    "build_workload",
    "deadline_order",
    "dispatch_deadline",
    "min_retention",
    "ms",
    "needs_replication",
    "replication_deadline",
    "run_experiment",
    "to_ms",
    "us",
]
