"""Wire protocol: length-prefixed frames over TCP, JSON or binary.

Every frame is a 4-byte big-endian length followed by the frame payload.
Two payload codecs share that framing:

* **JSON** (the original codec): a UTF-8 JSON object with a ``"type"``
  discriminator.  Inspectable with standard tools, and the only codec
  low-rate frames (``hello``, ``subscribe``, ``stats``, ``ping``/``pong``)
  ever use — so the control plane stays debuggable.
* **Binary** (``bin2``): a ``struct``-packed fast path for the four
  high-rate data-plane frame types — ``publish``, ``deliver``,
  ``replica``, and ``prune`` — whose per-message JSON encode/decode cost
  dominates small-payload edge workloads (the paper's 16-byte messages).

The codecs are *self-describing on the wire*: a JSON payload always
starts with ``{`` (0x7B) while a binary payload always starts with the
marker byte 0x00, so any reader accepts both transparently.  Negotiation
is therefore only needed for the *sending* direction: a peer may emit
binary frames once the other side has advertised (``hello`` with
``"codecs": ["bin2"]``) or acknowledged (``hello_ack``) the codec; JSON
remains the universal fallback, which keeps old clients, the journal,
and debug tooling working unchanged.

Binary layouts (big-endian, after the 4-byte length prefix)::

    message   := topic:u32 seq:u64 created_at:f64 payload
    payload   := 0x00                      (None)
               | 0x01 len:u32 utf8-bytes   (str)
               | 0x02 len:u32 json-bytes   (any other JSON value)
    publish   := 0x00 0x01 flags:u8 count:u16 [plen:u16 publisher-utf8] message*
                 (flags bit0 = resend, bit1 = publisher id present)
    deliver   := 0x00 0x02 epoch:u32 message
    replica   := 0x00 0x03 flags:u8 epoch:u32 [arrived_at:f64] message
                 (flags bit0 = arrived_at stamped)
    prune     := 0x00 0x04 epoch:u32 topic:u32 seq:u64

Broker-originated frames (``deliver``/``replica``/``prune``) carry the
sender's fencing epoch; 0 means "unstamped" and decodes to an absent
``"epoch"`` key, which keeps pre-epoch peers interoperable.

A frame that does not fit the binary schema (unknown type, huge batch,
out-of-range ids) silently falls back to JSON inside the same stream —
mixed-codec streams are legal and the reader handles them per frame.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Iterable, List, Optional

from repro.core.model import Message

#: Upper bound on a single frame; protects brokers from rogue peers.
MAX_FRAME_BYTES = 4 * 1024 * 1024

#: Name of the binary codec advertised in ``hello`` frames and echoed in
#: ``hello_ack``; bump when the binary layout changes incompatibly.
#: ``bin2`` added the epoch field to broker-originated frames.
BINARY_CODEC = "bin2"

_LENGTH = struct.Struct(">I")

#: First payload byte of every binary frame.  JSON object payloads start
#: with ``{`` (0x7B), so 0x00 can never be mistaken for JSON.
_BIN_MARKER = 0x00
_BIN_PUBLISH = 0x01
_BIN_DELIVER = 0x02
_BIN_REPLICA = 0x03
_BIN_PRUNE = 0x04

_PAYLOAD_NONE = 0x00
_PAYLOAD_STR = 0x01
_PAYLOAD_JSON = 0x02

_MESSAGE = struct.Struct(">IQd")       # topic, seq, created_at
_U32 = struct.Struct(">I")
_U16 = struct.Struct(">H")
_PUBLISH_HEAD = struct.Struct(">BBBH")  # marker, kind, flags, count
_DELIVER_HEAD = struct.Struct(">BBI")   # marker, kind, epoch
_REPLICA_HEAD = struct.Struct(">BBBI")  # marker, kind, flags, epoch
_PRUNE = struct.Struct(">BBIIQ")        # marker, kind, epoch, topic, seq
_F64 = struct.Struct(">d")


class ProtocolError(Exception):
    """A malformed or oversized frame."""


def encode_message(message: Message) -> Dict[str, Any]:
    return {
        "topic": message.topic_id,
        "seq": message.seq,
        "created_at": message.created_at,
        "payload": message.data,
    }


def decode_message(obj) -> Message:
    """Normalize a wire message to a :class:`Message`.

    Binary frames decode straight to ``Message`` objects while JSON
    frames carry dicts; accepting both here lets every consumer stay
    codec-agnostic.
    """
    if type(obj) is Message:
        return obj
    try:
        return Message(
            topic_id=int(obj["topic"]),
            seq=int(obj["seq"]),
            created_at=float(obj["created_at"]),
            data=obj.get("payload"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad message object: {obj!r}") from exc


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def _json_default(obj):
    if type(obj) is Message:
        return encode_message(obj)
    raise TypeError(f"not JSON serializable: {obj!r}")


def _pack_payload(parts: List[bytes], data) -> bool:
    """Append the payload encoding of ``data``; False if it cannot fit."""
    if data is None:
        parts.append(b"\x00")
    elif type(data) is str:
        blob = data.encode("utf-8")
        if len(blob) > MAX_FRAME_BYTES:
            return False
        parts.append(b"\x01" + _U32.pack(len(blob)))
        parts.append(blob)
    else:
        try:
            blob = json.dumps(data, separators=(",", ":")).encode("utf-8")
        except (TypeError, ValueError):
            return False
        if len(blob) > MAX_FRAME_BYTES:
            return False
        parts.append(b"\x02" + _U32.pack(len(blob)))
        parts.append(blob)
    return True


def _pack_message(parts: List[bytes], obj) -> bool:
    message = obj if type(obj) is Message else decode_message(obj)
    topic, seq = message.topic_id, message.seq
    if not (0 <= topic < 1 << 32 and 0 <= seq < 1 << 64):
        return False
    parts.append(_MESSAGE.pack(topic, seq, message.created_at))
    return _pack_payload(parts, message.data)


def _frame_epoch(frame: Dict[str, Any]) -> Optional[int]:
    """Epoch stamp for ``frame`` (0 = unstamped); ``None`` if out of range."""
    epoch = frame.get("epoch")
    if epoch is None:
        return 0
    epoch = int(epoch)
    if not 0 <= epoch < 1 << 32:
        return None
    return epoch


def _encode_binary(frame: Dict[str, Any]) -> Optional[bytes]:
    """Binary payload for ``frame``, or ``None`` if it must go as JSON."""
    kind = frame.get("type")
    parts: List[bytes] = []
    if kind == "publish":
        messages = frame.get("messages", ())
        if len(messages) >= 1 << 16:
            return None
        flags = 1 if frame.get("resend") else 0
        publisher = frame.get("publisher")
        pub_blob = b""
        if publisher is not None:
            if type(publisher) is not str:
                return None
            pub_blob = publisher.encode("utf-8")
            if len(pub_blob) >= 1 << 16:
                return None
            flags |= 2
        parts.append(_PUBLISH_HEAD.pack(
            _BIN_MARKER, _BIN_PUBLISH, flags, len(messages)))
        if flags & 2:
            parts.append(_U16.pack(len(pub_blob)))
            parts.append(pub_blob)
        for obj in messages:
            if not _pack_message(parts, obj):
                return None
    elif kind == "deliver":
        epoch = _frame_epoch(frame)
        if epoch is None:
            return None
        parts.append(_DELIVER_HEAD.pack(_BIN_MARKER, _BIN_DELIVER, epoch))
        if not _pack_message(parts, frame["message"]):
            return None
    elif kind == "replica":
        epoch = _frame_epoch(frame)
        if epoch is None:
            return None
        arrived_at = frame.get("arrived_at")
        parts.append(_REPLICA_HEAD.pack(
            _BIN_MARKER, _BIN_REPLICA, 0 if arrived_at is None else 1, epoch))
        if arrived_at is not None:
            parts.append(_F64.pack(float(arrived_at)))
        if not _pack_message(parts, frame["message"]):
            return None
    elif kind == "prune":
        epoch = _frame_epoch(frame)
        if epoch is None:
            return None
        topic, seq = int(frame["topic"]), int(frame["seq"])
        if not (0 <= topic < 1 << 32 and 0 <= seq < 1 << 64):
            return None
        return _PRUNE.pack(_BIN_MARKER, _BIN_PRUNE, epoch, topic, seq)
    else:
        return None
    return b"".join(parts)


def encode_frames(frames: Iterable[Dict[str, Any]], binary: bool = False) -> bytes:
    """Encode frames into one contiguous length-prefixed blob.

    Splitting encoding from writing lets a sender encode once and fan the
    same bytes out to many connections (the broker's dispatch loop), or
    cork many frames into a single write (see :func:`write_frames`).

    With ``binary=True`` the high-rate frame types are struct-packed;
    anything else (and anything that doesn't fit the binary schema)
    falls back to JSON inside the same blob, which every reader accepts.
    """
    parts = []
    for frame in frames:
        data = _encode_binary(frame) if binary else None
        if data is None:
            data = json.dumps(frame, separators=(",", ":"),
                              default=_json_default).encode("utf-8")
        if len(data) > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame of {len(data)} bytes exceeds limit")
        parts.append(_LENGTH.pack(len(data)))
        parts.append(data)
    return b"".join(parts)


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def _unpack_payload(data: bytes, pos: int):
    try:
        tag = data[pos]
    except IndexError as exc:
        raise ProtocolError("truncated binary payload") from exc
    pos += 1
    if tag == _PAYLOAD_NONE:
        return None, pos
    end = pos + 4
    if end > len(data):
        raise ProtocolError("truncated binary payload")
    (length,) = _U32.unpack_from(data, pos)
    pos, end = end, end + length
    if end > len(data):
        raise ProtocolError("truncated binary payload")
    blob = data[pos:end]
    if tag == _PAYLOAD_STR:
        try:
            return blob.decode("utf-8"), end
        except UnicodeDecodeError as exc:
            raise ProtocolError("undecodable binary payload") from exc
    if tag == _PAYLOAD_JSON:
        try:
            return json.loads(blob), end
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError("undecodable binary payload") from exc
    raise ProtocolError(f"unknown payload tag {tag}")


def _unpack_message(data: bytes, pos: int):
    end = pos + _MESSAGE.size
    if end > len(data):
        raise ProtocolError("truncated binary message")
    topic, seq, created_at = _MESSAGE.unpack_from(data, pos)
    payload, pos = _unpack_payload(data, end)
    return Message(topic, seq, created_at, data=payload), pos


def _decode_binary(data: bytes) -> Dict[str, Any]:
    try:
        kind = data[1]
    except IndexError as exc:
        raise ProtocolError("truncated binary frame") from exc
    if kind == _BIN_PUBLISH:
        if len(data) < _PUBLISH_HEAD.size:
            raise ProtocolError("truncated binary frame")
        _, _, flags, count = _PUBLISH_HEAD.unpack_from(data)
        pos = _PUBLISH_HEAD.size
        publisher = None
        if flags & 2:
            end = pos + _U16.size
            if end > len(data):
                raise ProtocolError("truncated binary frame")
            (plen,) = _U16.unpack_from(data, pos)
            pos, end = end, end + plen
            if end > len(data):
                raise ProtocolError("truncated binary frame")
            try:
                publisher = data[pos:end].decode("utf-8")
            except UnicodeDecodeError as exc:
                raise ProtocolError("undecodable publisher id") from exc
            pos = end
        messages = []
        for _ in range(count):
            message, pos = _unpack_message(data, pos)
            messages.append(message)
        frame = {"type": "publish", "resend": bool(flags & 1),
                 "messages": messages}
        if publisher is not None:
            frame["publisher"] = publisher
        return frame
    if kind == _BIN_DELIVER:
        if len(data) < _DELIVER_HEAD.size:
            raise ProtocolError("truncated binary frame")
        _, _, epoch = _DELIVER_HEAD.unpack_from(data)
        message, _ = _unpack_message(data, _DELIVER_HEAD.size)
        frame = {"type": "deliver", "message": message}
        if epoch:
            frame["epoch"] = epoch
        return frame
    if kind == _BIN_REPLICA:
        if len(data) < _REPLICA_HEAD.size:
            raise ProtocolError("truncated binary frame")
        _, _, flags, epoch = _REPLICA_HEAD.unpack_from(data)
        pos = _REPLICA_HEAD.size
        arrived_at = None
        if flags & 1:
            if pos + _F64.size > len(data):
                raise ProtocolError("truncated binary frame")
            (arrived_at,) = _F64.unpack_from(data, pos)
            pos += _F64.size
        message, _ = _unpack_message(data, pos)
        frame = {"type": "replica", "message": message}
        if arrived_at is not None:
            frame["arrived_at"] = arrived_at
        if epoch:
            frame["epoch"] = epoch
        return frame
    if kind == _BIN_PRUNE:
        if len(data) < _PRUNE.size:
            raise ProtocolError("truncated binary frame")
        _, _, epoch, topic, seq = _PRUNE.unpack(data[:_PRUNE.size])
        frame = {"type": "prune", "topic": topic, "seq": seq}
        if epoch:
            frame["epoch"] = epoch
        return frame
    raise ProtocolError(f"unknown binary frame kind {kind}")


def decode_payload(data: bytes) -> Dict[str, Any]:
    """Decode one frame payload, auto-detecting the codec."""
    if data and data[0] == _BIN_MARKER:
        return _decode_binary(data)
    try:
        frame = json.loads(data)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("undecodable frame") from exc
    if not isinstance(frame, dict) or "type" not in frame:
        raise ProtocolError(f"frame without type: {frame!r}")
    return frame


class FrameReader:
    """Buffered frame reader: one ``recv`` feeds many frames.

    ``read_frame(StreamReader)`` costs two ``readexactly`` awaits (one
    event-loop round trip each) per frame.  Under batched traffic a
    single TCP segment carries dozens of corked frames, so this reader
    pulls large chunks into one buffer and slices frames out of it,
    awaiting the socket only when the buffer runs dry.

    Mixing ``FrameReader`` and the plain :func:`read_frame` function on
    the same ``StreamReader`` is not supported — the buffer would eat
    bytes the plain call expects.
    """

    __slots__ = ("_reader", "_buf", "_pos", "bytes_received")

    #: Bytes asked from the transport per refill.
    CHUNK = 256 * 1024
    #: Consumed-prefix size beyond which the buffer is compacted.
    _COMPACT = 1 << 16

    def __init__(self, reader: asyncio.StreamReader):
        self._reader = reader
        self._buf = bytearray()
        self._pos = 0
        self.bytes_received = 0

    async def read_frame(self) -> Optional[Dict[str, Any]]:
        """Read one frame; ``None`` on clean EOF or a dead transport."""
        buf = self._buf
        while True:
            avail = len(buf) - self._pos
            if avail >= _LENGTH.size:
                (length,) = _LENGTH.unpack_from(buf, self._pos)
                if length > MAX_FRAME_BYTES:
                    raise ProtocolError(f"frame of {length} bytes exceeds limit")
                if avail >= _LENGTH.size + length:
                    start = self._pos + _LENGTH.size
                    end = start + length
                    data = bytes(buf[start:end])
                    if end >= len(buf):
                        del buf[:]
                        self._pos = 0
                    elif end >= self._COMPACT:
                        del buf[:end]
                        self._pos = 0
                    else:
                        self._pos = end
                    return decode_payload(data)
            try:
                chunk = await self._reader.read(self.CHUNK)
            except (asyncio.IncompleteReadError, OSError):
                return None
            if not chunk:
                return None   # EOF (mid-frame truncation included)
            self.bytes_received += len(chunk)
            buf.extend(chunk)


# ----------------------------------------------------------------------
# Stream helpers
# ----------------------------------------------------------------------
async def write_encoded(writer: asyncio.StreamWriter, blob: bytes) -> None:
    """Write an :func:`encode_frames` blob and drain once."""
    writer.write(blob)
    await writer.drain()


async def write_frame(writer: asyncio.StreamWriter, frame: Dict[str, Any],
                      binary: bool = False) -> None:
    await write_encoded(writer, encode_frames((frame,), binary=binary))


async def write_frames(writer: asyncio.StreamWriter,
                       frames: Iterable[Dict[str, Any]],
                       binary: bool = False) -> None:
    """Cork a batch of frames into one ``write`` + a single ``drain``.

    ``write_frame`` awaits ``drain()`` after every frame, which costs an
    event-loop round trip per frame; a batch sender (e.g. the peer link
    flushing its outage queue on resync) pays that once per batch instead.
    Frames are encoded before anything is written, so an oversized frame
    raises without leaving a partial batch on the wire.
    """
    blob = encode_frames(frames, binary=binary)
    if blob:
        await write_encoded(writer, blob)


async def read_frame(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    """Read one frame; returns ``None`` on clean EOF.

    Any ``OSError`` while reading (reset, broken pipe, aborted, timed-out
    keepalive, ...) means the connection is dead, which callers handle
    exactly like EOF — so it is normalized to ``None`` rather than
    leaking transport-specific exception types into every caller.

    This is the unbuffered variant, fine for low-rate control
    connections (ping/pong polling, ``stats`` fetches); hot paths use
    :class:`FrameReader`.
    """
    try:
        header = await reader.readexactly(_LENGTH.size)
    except (asyncio.IncompleteReadError, OSError):
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds limit")
    try:
        data = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, OSError):
        return None
    return decode_payload(data)
