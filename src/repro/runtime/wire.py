"""Wire protocol: length-prefixed JSON frames over TCP.

Every frame is a 4-byte big-endian length followed by a UTF-8 JSON
object with a ``"type"`` discriminator.  JSON keeps the protocol
inspectable with standard tools; the 16-byte payloads of the paper's
workloads make encoding cost irrelevant here.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Iterable, Optional

from repro.core.model import Message

#: Upper bound on a single frame; protects brokers from rogue peers.
MAX_FRAME_BYTES = 4 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(Exception):
    """A malformed or oversized frame."""


def encode_message(message: Message) -> Dict[str, Any]:
    return {
        "topic": message.topic_id,
        "seq": message.seq,
        "created_at": message.created_at,
        "payload": message.data,
    }


def decode_message(obj: Dict[str, Any]) -> Message:
    try:
        return Message(
            topic_id=int(obj["topic"]),
            seq=int(obj["seq"]),
            created_at=float(obj["created_at"]),
            data=obj.get("payload"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad message object: {obj!r}") from exc


def encode_frames(frames: Iterable[Dict[str, Any]]) -> bytes:
    """Encode frames into one contiguous length-prefixed blob.

    Splitting encoding from writing lets a sender encode once and fan the
    same bytes out to many connections (the broker's dispatch loop), or
    cork many frames into a single write (see :func:`write_frames`).
    """
    parts = []
    for frame in frames:
        data = json.dumps(frame, separators=(",", ":")).encode("utf-8")
        if len(data) > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame of {len(data)} bytes exceeds limit")
        parts.append(_LENGTH.pack(len(data)))
        parts.append(data)
    return b"".join(parts)


async def write_encoded(writer: asyncio.StreamWriter, blob: bytes) -> None:
    """Write an :func:`encode_frames` blob and drain once."""
    writer.write(blob)
    await writer.drain()


async def write_frame(writer: asyncio.StreamWriter, frame: Dict[str, Any]) -> None:
    data = json.dumps(frame, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(data)} bytes exceeds limit")
    writer.write(_LENGTH.pack(len(data)) + data)
    await writer.drain()


async def write_frames(writer: asyncio.StreamWriter,
                       frames: Iterable[Dict[str, Any]]) -> None:
    """Cork a batch of frames into one ``write`` + a single ``drain``.

    ``write_frame`` awaits ``drain()`` after every frame, which costs an
    event-loop round trip per frame; a batch sender (e.g. the peer link
    flushing its outage queue on resync) pays that once per batch instead.
    Frames are encoded before anything is written, so an oversized frame
    raises without leaving a partial batch on the wire.
    """
    blob = encode_frames(frames)
    if blob:
        writer.write(blob)
        await writer.drain()


async def read_frame(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    """Read one frame; returns ``None`` on clean EOF.

    Any ``OSError`` while reading (reset, broken pipe, aborted, timed-out
    keepalive, ...) means the connection is dead, which callers handle
    exactly like EOF — so it is normalized to ``None`` rather than
    leaking transport-specific exception types into every caller.
    """
    try:
        header = await reader.readexactly(_LENGTH.size)
    except (asyncio.IncompleteReadError, OSError):
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds limit")
    try:
        data = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, OSError):
        return None
    try:
        frame = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("undecodable frame") from exc
    if not isinstance(frame, dict) or "type" not in frame:
        raise ProtocolError(f"frame without type: {frame!r}")
    return frame
