"""A transparent chaos TCP proxy for fault-injection drills.

:class:`ChaosProxy` sits on any client↔broker or Primary↔Backup link
(point it at the upstream, point the clients at the proxy) and injects
link-level faults at runtime:

* **Partition** — both directions stall; **blackhole** — one direction
  stalls (the asymmetric partition that makes split-brain interesting:
  pings reach the Primary but pongs never come back, or vice versa).
  Stalled bytes are *held, not dropped*: TCP is a byte stream, and
  discarding bytes mid-frame would corrupt the framing forever.  A heal
  releases everything in order, exactly like a long network stall.
* **Latency/jitter** — each forwarded chunk waits ``latency ± jitter``.
* **Bandwidth cap** — forwarding is paced to ``bytes_per_second``.
* **Half-open connections** — accepted sockets read and discard
  client bytes but never connect upstream: the client sees an
  established connection that produces nothing (the classic
  silently-dead NAT entry).
* **Connection rejection** — new connections are closed on accept.
* **Mid-frame resets** — forward an ``nbytes`` prefix of the next
  chunk, then abort both directions: the receiver is left holding a
  torn frame.

Everything is controllable per-direction while connections are live;
``heal()`` restores clean pass-through.  The proxy never inspects
frames — it is a byte pump, so it works under any codec.

Directions are named from the connecting client's point of view:
``c2s`` (client → upstream server) and ``s2c`` (upstream → client).
"""

from __future__ import annotations

import asyncio
import logging
import random
from typing import Dict, Optional, Set, Tuple

logger = logging.getLogger(__name__)

C2S = "c2s"
S2C = "s2c"
DIRECTIONS = (C2S, S2C)

#: Read size of the byte pump.  Small enough that latency/bandwidth
#: shaping has sub-chunk granularity under test loads.
CHUNK = 64 * 1024


class _Pipe:
    """One proxied connection: a client socket glued to an upstream one."""

    __slots__ = ("client_reader", "client_writer", "up_reader", "up_writer",
                 "tasks")

    def __init__(self, client_reader, client_writer, up_reader, up_writer):
        self.client_reader = client_reader
        self.client_writer = client_writer
        self.up_reader = up_reader
        self.up_writer = up_writer
        self.tasks: Set[asyncio.Task] = set()

    def abort(self) -> None:
        for writer in (self.client_writer, self.up_writer):
            if writer is None:
                continue
            try:
                transport = writer.transport
                if transport is not None:
                    transport.abort()   # RST-style teardown, not FIN
                else:   # pragma: no cover - defensive
                    writer.close()
            except Exception:   # pragma: no cover - defensive
                pass


class ChaosProxy:
    """Transparent TCP proxy with runtime-controllable fault injection."""

    def __init__(self, target: Tuple[str, int], host: str = "127.0.0.1",
                 port: int = 0, name: str = "chaos-proxy"):
        self.target = (target[0], int(target[1]))
        self.host = host
        self.port = port
        self.name = name
        self._server: Optional[asyncio.base_events.Server] = None
        self._pipes: Set[_Pipe] = set()
        # A set gate means "flowing"; clearing it stalls that direction.
        self._gates: Dict[str, asyncio.Event] = {}
        for direction in DIRECTIONS:
            gate = asyncio.Event()
            gate.set()
            self._gates[direction] = gate
        self.latency = 0.0
        self.jitter = 0.0
        self.bandwidth: Optional[float] = None       # bytes/second, None = ∞
        self.half_open = False
        self.reject_connections = False
        self._truncate: Dict[str, Optional[int]] = {d: None for d in DIRECTIONS}
        self._rng = random.Random()
        # Counters.
        self.connections_accepted = 0
        self.connections_rejected = 0
        self.connections_half_open = 0
        self.resets = 0
        self.bytes_forwarded: Dict[str, int] = {d: 0 for d in DIRECTIONS}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(self._on_connection,
                                                  self.host, self.port)
        if self._server.sockets:
            self.port = self._server.sockets[0].getsockname()[1]
        logger.info("%s: proxying %s:%d -> %s:%d", self.name, self.host,
                    self.port, *self.target)

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Release stalled pumps so their tasks can observe the abort.
        for gate in self._gates.values():
            gate.set()
        for pipe in list(self._pipes):
            pipe.abort()
        tasks = [task for pipe in list(self._pipes) for task in pipe.tasks]
        for task in tasks:
            task.cancel()
        for task in tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._pipes.clear()

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    # ------------------------------------------------------------------
    # Fault controls (all take effect on live connections immediately)
    # ------------------------------------------------------------------
    def partition(self) -> None:
        """Stall both directions: a full network partition."""
        for gate in self._gates.values():
            gate.clear()

    def blackhole(self, direction: str = C2S) -> None:
        """Stall one direction only (an asymmetric partition)."""
        self._gate(direction).clear()

    def set_latency(self, latency: float, jitter: float = 0.0) -> None:
        """Delay every forwarded chunk by ``latency ± jitter`` seconds."""
        if latency < 0 or jitter < 0:
            raise ValueError("latency and jitter must be >= 0")
        self.latency = latency
        self.jitter = jitter

    def set_bandwidth(self, bytes_per_second: Optional[float]) -> None:
        """Cap forwarding throughput (``None`` removes the cap)."""
        if bytes_per_second is not None and bytes_per_second <= 0:
            raise ValueError("bandwidth must be positive (or None)")
        self.bandwidth = bytes_per_second

    def set_half_open(self, enabled: bool = True) -> None:
        """New connections read-and-discard; nothing reaches upstream."""
        self.half_open = enabled

    def set_reject_connections(self, enabled: bool = True) -> None:
        """New connections are closed immediately on accept."""
        self.reject_connections = enabled

    def truncate_next(self, direction: str = S2C, nbytes: int = 2) -> None:
        """Forward ``nbytes`` of the next chunk in ``direction``, then
        abort the connection — the receiver holds a torn frame."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        self._truncate[self._check_direction(direction)] = nbytes

    def reset_connections(self) -> None:
        """Abort every live proxied connection (RST both sides)."""
        for pipe in list(self._pipes):
            self.resets += 1
            pipe.abort()

    def heal(self) -> None:
        """Clear every fault: gates open, shaping off, clean pass-through.

        Stalled bytes that were held during a partition/blackhole resume
        flowing in order, so in-flight frames survive the fault intact.
        """
        for gate in self._gates.values():
            gate.set()
        self.latency = 0.0
        self.jitter = 0.0
        self.bandwidth = None
        self.half_open = False
        self.reject_connections = False
        for direction in DIRECTIONS:
            self._truncate[direction] = None

    def _check_direction(self, direction: str) -> str:
        if direction not in DIRECTIONS:
            raise ValueError(f"direction must be one of {DIRECTIONS}")
        return direction

    def _gate(self, direction: str) -> asyncio.Event:
        return self._gates[self._check_direction(direction)]

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        if self.reject_connections:
            self.connections_rejected += 1
            writer.close()
            return
        if self.half_open:
            # Swallow the client's bytes without ever touching upstream:
            # the client believes it is connected and publishing.
            self.connections_half_open += 1
            try:
                while await reader.read(CHUNK):
                    pass
            except (OSError, asyncio.CancelledError):
                pass
            finally:
                writer.close()
            return
        # A connection attempted during a partition waits for the heal
        # (like TCP SYN retries riding out a short outage) instead of
        # failing fast — the stall semantics cover the handshake too.
        await self._gates[C2S].wait()
        await self._gates[S2C].wait()
        try:
            up_reader, up_writer = await asyncio.open_connection(*self.target)
        except OSError:
            writer.close()
            return
        self.connections_accepted += 1
        pipe = _Pipe(reader, writer, up_reader, up_writer)
        self._pipes.add(pipe)
        pipe.tasks.add(asyncio.create_task(
            self._pump(pipe, reader, up_writer, C2S)))
        pipe.tasks.add(asyncio.create_task(
            self._pump(pipe, up_reader, writer, S2C)))

    async def _pump(self, pipe: _Pipe, reader: asyncio.StreamReader,
                    writer: asyncio.StreamWriter, direction: str) -> None:
        gate = self._gates[direction]
        try:
            while True:
                try:
                    chunk = await reader.read(CHUNK)
                except (OSError, ValueError):
                    break
                if not chunk:
                    break
                # Stall (don't drop): hold the bytes until the heal.
                if not gate.is_set():
                    await gate.wait()
                if self.latency > 0 or self.jitter > 0:
                    delay = self.latency
                    if self.jitter > 0:
                        delay += self._rng.uniform(-self.jitter, self.jitter)
                    if delay > 0:
                        await asyncio.sleep(delay)
                if self.bandwidth is not None:
                    await asyncio.sleep(len(chunk) / self.bandwidth)
                cut = self._truncate[direction]
                if cut is not None:
                    self._truncate[direction] = None
                    torn = chunk[:cut]
                    try:
                        if torn:
                            writer.write(torn)
                            await writer.drain()
                        self.bytes_forwarded[direction] += len(torn)
                    except OSError:
                        pass
                    self.resets += 1
                    pipe.abort()
                    break
                try:
                    writer.write(chunk)
                    await writer.drain()
                except (OSError, ValueError):
                    break
                self.bytes_forwarded[direction] += len(chunk)
        except asyncio.CancelledError:
            raise
        finally:
            # One dead direction tears down the whole pipe: half-duplex
            # proxied connections would otherwise linger forever.
            pipe.abort()
            pipe.tasks.discard(asyncio.current_task())
            if not pipe.tasks:
                self._pipes.discard(pipe)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        return {
            "target": list(self.target),
            "address": [self.host, self.port],
            "live_connections": len(self._pipes),
            "connections_accepted": self.connections_accepted,
            "connections_rejected": self.connections_rejected,
            "connections_half_open": self.connections_half_open,
            "resets": self.resets,
            "bytes_forwarded": dict(self.bytes_forwarded),
            "faults": {
                "partitioned": [d for d in DIRECTIONS
                                if not self._gates[d].is_set()],
                "latency": self.latency,
                "jitter": self.jitter,
                "bandwidth": self.bandwidth,
                "half_open": self.half_open,
                "reject_connections": self.reject_connections,
            },
        }
