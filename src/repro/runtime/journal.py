"""Crash-safe journal records: CRC32 + length framing, scan and repair.

The first runtime journal was newline-delimited JSON appended with
``write``+``fsync``.  That format cannot tell a *torn tail* (the broker
died mid-``write``) from a complete record, and a corrupted byte anywhere
turns the rest of the file into garbage that replay either crashes on or
silently re-ingests.  This module gives every record its own integrity
envelope::

    record := length:u32 crc32:u32 payload-bytes
    payload := UTF-8 JSON object
        {"topic":..,"seq":..,"created_at":..,"payload":..}  (a message)
        {"epoch": N, "fenced": bool}                        (an epoch mark)

``scan_journal`` walks a journal byte-exactly and classifies every
record: intact records are returned for replay, a record whose CRC does
not match its bytes is *skipped and counted* (framing survives, so the
records after it are still recovered), and an incomplete final record is
reported as a torn tail with the offset replay-safe appends must resume
from.  ``prepare_journal`` additionally repairs the file in place —
truncating a torn tail so new appends cannot produce a mid-file framing
break, and migrating a legacy JSON-lines journal to the framed layout.

Epoch marks persist the fencing state machine (see
:mod:`repro.runtime.broker`): a promotion appends ``{"epoch": N}`` and a
fencing event appends ``{"epoch": N, "fenced": true}``, so a
crash-restarted broker resumes from the highest epoch it ever observed
instead of resurrecting a stale one.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Upper bound on one journal record; a length field beyond this is a
#: corrupted header (framing lost — the scan stops there).
MAX_RECORD_BYTES = 16 * 1024 * 1024

_RECORD_HEAD = struct.Struct(">II")     # length, crc32(payload)


def frame_record(payload: bytes) -> bytes:
    """Wrap ``payload`` in the length + CRC32 integrity envelope."""
    if len(payload) > MAX_RECORD_BYTES:
        raise ValueError(f"journal record of {len(payload)} bytes exceeds limit")
    return _RECORD_HEAD.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF) \
        + payload


def encode_record(obj: Dict[str, Any]) -> bytes:
    """One framed record holding ``obj`` as compact JSON."""
    return frame_record(json.dumps(obj, separators=(",", ":")).encode("utf-8"))


@dataclass
class JournalScan:
    """Everything a replay (or repair) needs to know about one journal."""

    #: Intact message records, in append order (dicts for
    #: :func:`repro.runtime.wire.decode_message`).
    records: List[Dict[str, Any]] = field(default_factory=list)
    #: Byte offset of the end of the last framing-intact record — the
    #: truncation point that makes the file safe to append to again.
    good_offset: int = 0
    #: Records whose envelope was intact but whose bytes were not
    #: (CRC mismatch or undecodable JSON).  Skipped, never replayed.
    corrupt_records: int = 0
    #: True when the file ends mid-record (header or payload cut short).
    torn_tail: bool = False
    #: True when the file was in the legacy JSON-lines layout.
    legacy: bool = False
    #: Highest epoch mark in the journal (0 = none recorded).
    max_epoch: int = 0
    #: Whether the record carrying ``max_epoch`` was a fencing mark.
    fenced: bool = False


def _note_record(scan: JournalScan, obj: Any) -> None:
    if not isinstance(obj, dict):
        scan.corrupt_records += 1
        return
    if "epoch" in obj:
        try:
            epoch = int(obj["epoch"])
        except (TypeError, ValueError):
            scan.corrupt_records += 1
            return
        if epoch >= scan.max_epoch:
            scan.max_epoch = epoch
            scan.fenced = bool(obj.get("fenced"))
        return
    if "topic" in obj:
        scan.records.append(obj)
    # Unknown-but-intact record kinds are ignored (forward compatibility).


def _scan_framed(data: bytes) -> JournalScan:
    scan = JournalScan()
    pos = 0
    size = len(data)
    while pos < size:
        if size - pos < _RECORD_HEAD.size:
            scan.torn_tail = True
            break
        length, crc = _RECORD_HEAD.unpack_from(data, pos)
        if length > MAX_RECORD_BYTES:
            # A corrupted header loses the framing; nothing after it can
            # be trusted to start on a record boundary.
            scan.corrupt_records += 1
            break
        end = pos + _RECORD_HEAD.size + length
        if end > size:
            scan.torn_tail = True
            break
        payload = data[pos + _RECORD_HEAD.size:end]
        pos = scan.good_offset = end
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            scan.corrupt_records += 1
            continue
        try:
            obj = json.loads(payload)
        except (UnicodeDecodeError, json.JSONDecodeError):
            scan.corrupt_records += 1
            continue
        _note_record(scan, obj)
    return scan


def _scan_legacy(data: bytes) -> JournalScan:
    scan = JournalScan(legacy=True)
    complete = data.endswith(b"\n")
    lines = data.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        last = index == len(lines) - 1
        try:
            obj = json.loads(line)
        except (UnicodeDecodeError, json.JSONDecodeError):
            if last and not complete:
                scan.torn_tail = True   # the write died mid-line
            else:
                scan.corrupt_records += 1
            continue
        _note_record(scan, obj)
    scan.good_offset = len(data)
    return scan


def scan_journal(path: str) -> JournalScan:
    """Classify every record in the journal at ``path`` (missing = empty)."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return JournalScan()
    if not data:
        return JournalScan()
    if data[0] == 0x7B:   # '{' — the legacy JSON-lines layout
        return _scan_legacy(data)
    return _scan_framed(data)


def prepare_journal(path: str) -> JournalScan:
    """Scan ``path`` and repair it for safe appends.

    * A torn tail is truncated to the last intact record boundary, so
      the next append starts on a clean frame instead of welding new
      records onto half of an old one.
    * A legacy JSON-lines journal is rewritten in the framed layout
      (atomically, via a temp file + ``os.replace``); its intact records
      and epoch marks survive, corrupt lines are dropped.

    Mid-file corrupt records are left in place — the framing around them
    is intact, replay skips them, and rewriting the whole file on every
    boot would turn one flipped bit into a full-journal copy.
    """
    scan = scan_journal(path)
    if scan.legacy:
        tmp = path + ".migrate"
        with open(tmp, "wb") as handle:
            for obj in scan.records:
                handle.write(encode_record(obj))
            if scan.max_epoch:
                handle.write(encode_record(
                    {"epoch": scan.max_epoch, "fenced": scan.fenced}))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    elif scan.torn_tail:
        with open(path, "rb+") as handle:
            handle.truncate(scan.good_offset)
            handle.flush()
            os.fsync(handle.fileno())
    return scan


def message_record(encoded_message: Dict[str, Any]) -> bytes:
    """Framed journal record for one wire-encoded message dict."""
    return encode_record(encoded_message)


def epoch_record(epoch: int, fenced: bool = False) -> bytes:
    """Framed journal record marking an epoch transition."""
    obj: Dict[str, Any] = {"epoch": int(epoch)}
    if fenced:
        obj["fenced"] = True
    return encode_record(obj)


def record_offsets(path: str) -> List[Optional[int]]:
    """Byte offsets of each framing-intact record (testing/tooling aid)."""
    offsets: List[int] = []
    with open(path, "rb") as handle:
        data = handle.read()
    pos = 0
    while pos + _RECORD_HEAD.size <= len(data):
        length, _ = _RECORD_HEAD.unpack_from(data, pos)
        if length > MAX_RECORD_BYTES or pos + _RECORD_HEAD.size + length > len(data):
            break
        offsets.append(pos)
        pos += _RECORD_HEAD.size + length
    return offsets
