"""A real (wall-clock) asyncio implementation of FRAME over TCP.

This runtime reuses the same core components as the simulator — the
timing bounds of :mod:`repro.core.timing`, the buffers, the coordination
flags, the policies — but drives them with ``asyncio`` on real sockets,
so a downstream user can actually deploy a Primary/Backup broker pair,
publishers, and subscribers.

**Scope note (honesty about Python real-time):** CPython's GIL and
scheduling jitter mean this runtime provides *best-effort* timing only;
the paper's millisecond-level guarantees are evaluated with the
deterministic simulator (:mod:`repro.sim`), not this runtime.  The
runtime's value is functional: EDF-ordered dispatch, selective
replication, coordination, fail-over, and recovery all work end-to-end
on real sockets.
"""

from repro.runtime.broker import BrokerServer, RuntimeBrokerConfig
from repro.runtime.chaosproxy import ChaosProxy
from repro.runtime.client import Publisher, Subscriber, fetch_stats
from repro.runtime.deployment import LocalDeployment
from repro.runtime.invariants import InvariantChecker, InvariantReport, Violation
from repro.runtime.peerlink import PeerLink
from repro.runtime.wire import (
    MAX_FRAME_BYTES,
    decode_message,
    encode_frames,
    encode_message,
    read_frame,
    write_encoded,
    write_frame,
    write_frames,
)

__all__ = [
    "BrokerServer",
    "ChaosProxy",
    "InvariantChecker",
    "InvariantReport",
    "LocalDeployment",
    "MAX_FRAME_BYTES",
    "PeerLink",
    "Publisher",
    "RuntimeBrokerConfig",
    "Subscriber",
    "Violation",
    "decode_message",
    "encode_frames",
    "encode_message",
    "fetch_stats",
    "read_frame",
    "write_encoded",
    "write_frame",
    "write_frames",
]
