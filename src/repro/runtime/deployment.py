"""One-call local deployments of the runtime stack.

:class:`LocalDeployment` wires a full FRAME installation on loopback
sockets — Backup, Primary (peered), the promotion watcher, any number of
publishers and subscribers — and tears it all down cleanly.  It is the
runtime analogue of the simulator's experiment runner, intended for
integration tests, demos, and small real deployments.

Usage::

    async with LocalDeployment(topics) as deployment:
        publisher = await deployment.add_publisher(topics)
        subscriber = await deployment.add_subscriber([t.topic_id for t in topics])
        await publisher.publish({0: b"reading"})
        ...
        await deployment.crash_primary()   # drill fail-over

With ``chaos=True`` both inter-broker links (Primary→Backup replication
and the Backup's promotion watcher) are routed through
:class:`~repro.runtime.chaosproxy.ChaosProxy` instances, so network
faults can be scripted at runtime::

    async with LocalDeployment(topics, chaos=True) as deployment:
        deployment.partition()          # Primary <-/-> Backup
        ...                             # Backup promotes, split-brain forms
        deployment.heal()               # stale Primary gets fenced
"""

from __future__ import annotations

import asyncio
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.model import TopicSpec
from repro.core.policy import FRAME, ConfigPolicy
from repro.core.timing import DeadlineParameters
from repro.runtime.broker import BACKUP, PRIMARY, BrokerServer, RuntimeBrokerConfig
from repro.runtime.chaosproxy import ChaosProxy
from repro.runtime.client import Publisher, Subscriber


class LocalDeployment:
    """A Primary/Backup pair plus clients on 127.0.0.1, fully managed."""

    def __init__(self, specs: Sequence[TopicSpec],
                 policy: ConfigPolicy = FRAME,
                 params: Optional[DeadlineParameters] = None,
                 host: str = "127.0.0.1",
                 poll_interval: float = 0.1,
                 reply_timeout: float = 0.3,
                 miss_threshold: int = 3,
                 broker_overrides: Optional[Dict[str, object]] = None,
                 chaos: bool = False):
        if not specs:
            raise ValueError("a deployment needs at least one topic")
        self.specs = list(specs)
        self.topics: Dict[int, TopicSpec] = {spec.topic_id: spec
                                             for spec in self.specs}
        self.policy = policy
        self.params = params if params is not None else DeadlineParameters(
            delta_pb=0.01, delta_bb=0.01, delta_bs_edge=0.02,
            delta_bs_cloud=0.1, failover_time=2.0)
        self.host = host
        self.poll_interval = poll_interval
        self.reply_timeout = reply_timeout
        self.miss_threshold = miss_threshold
        #: Extra :class:`RuntimeBrokerConfig` fields applied to every broker
        #: this deployment creates (e.g. ``enable_binary_codec``,
        #: ``batch_dispatch``, ``journal_group_commit`` for benchmarking).
        self.broker_overrides = dict(broker_overrides or {})
        #: Route both inter-broker links through chaos proxies so
        #: partitions/blackholes/latency can be injected at runtime.
        self.chaos = chaos
        self.primary: Optional[BrokerServer] = None
        self.backup: Optional[BrokerServer] = None
        #: Primary→Backup replication link proxy (``chaos=True`` only).
        self.proxy_to_backup: Optional[ChaosProxy] = None
        #: Backup→Primary watcher link proxy (``chaos=True`` only).
        self.proxy_to_primary: Optional[ChaosProxy] = None
        self._publishers: List[Publisher] = []
        self._subscribers: List[Subscriber] = []
        self._retired: List[BrokerServer] = []
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    async def start(self) -> "LocalDeployment":
        if self._started:
            raise RuntimeError("deployment already started")
        self._closed = False
        self.backup = BrokerServer(self.host, 0, self._broker_config(),
                                   role=BACKUP, name="backup")
        await self.backup.start()
        peer_address = self.backup.address
        if self.chaos:
            self.proxy_to_backup = ChaosProxy(self.backup.address,
                                              host=self.host,
                                              name="proxy-to-backup")
            await self.proxy_to_backup.start()
            peer_address = self.proxy_to_backup.address
        self.primary = BrokerServer(self.host, 0, self._broker_config(
            peer_address=peer_address), role=PRIMARY, name="primary")
        await self.primary.start()
        watch_address = self.primary.address
        if self.chaos:
            self.proxy_to_primary = ChaosProxy(self.primary.address,
                                               host=self.host,
                                               name="proxy-to-primary")
            await self.proxy_to_primary.start()
            watch_address = self.proxy_to_primary.address
        self.backup.config.watch_address = watch_address
        self.backup._tasks.append(
            asyncio.create_task(self.backup._watch_primary()))
        await asyncio.sleep(0.05)   # let the peer link establish
        self._started = True
        return self

    async def close(self) -> None:
        if self._closed:
            return   # idempotent: chaos teardown paths may close twice
        self._closed = True
        for publisher in self._publishers:
            await publisher.close()
        for subscriber in self._subscribers:
            await subscriber.close()
        for broker in [self.primary, self.backup] + self._retired:
            if broker is not None and not broker._closed:
                await broker.close()
        for proxy in (self.proxy_to_backup, self.proxy_to_primary):
            if proxy is not None:
                await proxy.close()
        self._started = False

    async def __aenter__(self) -> "LocalDeployment":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # ------------------------------------------------------------------
    def _require_started(self) -> None:
        if not self._started:
            raise RuntimeError("deployment not started")

    async def add_publisher(self, specs: Optional[Sequence[TopicSpec]] = None,
                            publisher_id: Optional[str] = None,
                            **client_kwargs) -> Publisher:
        """Attach a publisher proxy for ``specs`` (default: all topics).

        ``client_kwargs`` are forwarded to :class:`Publisher` (e.g.
        ``binary=False``, ``cork=False`` for benchmarking baselines).
        """
        self._require_started()
        publisher = Publisher(
            list(specs) if specs is not None else self.specs,
            self.primary.address, self.backup.address,
            publisher_id=publisher_id or f"publisher-{len(self._publishers)}",
            poll_interval=self.poll_interval,
            reply_timeout=self.reply_timeout,
            miss_threshold=self.miss_threshold,
            **client_kwargs,
        )
        await publisher.start()
        self._publishers.append(publisher)
        return publisher

    async def add_subscriber(self, topic_ids: Optional[Iterable[int]] = None,
                             on_message=None,
                             name: Optional[str] = None,
                             **client_kwargs) -> Subscriber:
        """Attach a subscriber for ``topic_ids`` (default: all topics).

        ``client_kwargs`` are forwarded to :class:`Subscriber`.
        """
        self._require_started()
        subscriber = Subscriber(
            list(topic_ids) if topic_ids is not None else list(self.topics),
            self.primary.address, self.backup.address,
            on_message=on_message,
            name=name or f"subscriber-{len(self._subscribers)}",
            **client_kwargs,
        )
        await subscriber.start()
        self._subscribers.append(subscriber)
        # Give the subscription frames a moment to land on both brokers.
        await asyncio.sleep(0.05)
        return subscriber

    # ------------------------------------------------------------------
    # Network chaos (requires ``chaos=True``)
    # ------------------------------------------------------------------
    def _require_chaos(self) -> None:
        self._require_started()
        if not self.chaos:
            raise RuntimeError(
                "network faults need LocalDeployment(chaos=True)")

    def partition(self) -> None:
        """Partition Primary↔Backup: replication and the promotion
        watcher both stall (held, not dropped — a heal resumes them)."""
        self._require_chaos()
        self.proxy_to_backup.partition()
        self.proxy_to_primary.partition()

    def heal(self) -> None:
        """Clear every injected network fault on both inter-broker links."""
        self._require_chaos()
        self.proxy_to_backup.heal()
        self.proxy_to_primary.heal()

    # ------------------------------------------------------------------
    # Chaos drills: crash/restart either broker, re-protect the survivor
    # ------------------------------------------------------------------
    def _broker_config(self, **overrides) -> RuntimeBrokerConfig:
        base = dict(topics=self.topics, policy=self.policy, params=self.params,
                    poll_interval=self.poll_interval,
                    reply_timeout=self.reply_timeout,
                    miss_threshold=self.miss_threshold)
        base.update(self.broker_overrides)
        base.update(overrides)
        return RuntimeBrokerConfig(**base)

    async def crash_backup(self) -> None:
        """Fail-stop the Backup (the Primary's peer link starts retrying)."""
        self._require_started()
        await self.backup.close()

    async def restart_backup(self, wait_for_reconnect: bool = True,
                             timeout: float = 10.0) -> BrokerServer:
        """Bring a fresh Backup up on the *same* address and wait for the
        Primary's peer link to re-adopt it (runtime re-protection)."""
        self._require_started()
        old = self.backup
        if not old._closed:
            await old.close()
        link = self.primary.peer_link if self.primary is not None else None
        connects_before = link.connects if link is not None else 0
        watch = (self.primary.address
                 if self.primary is not None and not self.primary._closed
                 else None)
        if watch is not None and self.proxy_to_primary is not None:
            watch = self.proxy_to_primary.address
        self.backup = BrokerServer(self.host, old.port, self._broker_config(
            watch_address=watch), role=BACKUP, name=old.name)
        self._retired.append(old)
        await self.backup.start()
        if wait_for_reconnect and link is not None:
            await self._wait_until(lambda: link.connects > connects_before,
                                   timeout, "peer link did not reconnect")
        return self.backup

    async def attach_fresh_backup(self, wait_for_connect: bool = True,
                                  timeout: float = 10.0) -> BrokerServer:
        """Provision a brand-new Backup and attach it to the current
        Primary — restores one-failure tolerance after a fail-over."""
        self._require_started()
        survivor = self.current_primary()
        new_backup = BrokerServer(self.host, 0, self._broker_config(
            watch_address=survivor.address), role=BACKUP,
            name=f"backup-{len(self._retired) + 2}")
        await new_backup.start()
        await survivor.attach_peer(new_backup.address)
        if wait_for_connect:
            link = survivor.peer_link
            await self._wait_until(lambda: link.connects > 0, timeout,
                                   "peer link did not connect to new backup")
        if survivor is self.backup:   # the survivor was the promoted Backup
            self._retired.append(self.primary)
            self.primary = survivor
        else:
            self._retired.append(self.backup)
        self.backup = new_backup
        return new_backup

    @staticmethod
    async def _wait_until(predicate, timeout: float, what: str,
                          interval: float = 0.02) -> None:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while not predicate():
            if loop.time() >= deadline:
                raise asyncio.TimeoutError(what)
            await asyncio.sleep(interval)

    async def crash_primary(self, wait_for_failover: bool = True,
                            timeout: float = 10.0) -> None:
        """Fail-stop the Primary; optionally wait until the Backup has
        promoted and every publisher has redirected."""
        self._require_started()
        await self.primary.close()
        if not wait_for_failover:
            return
        await asyncio.wait_for(self.backup.promoted.wait(), timeout=timeout)
        for publisher in self._publishers:
            await asyncio.wait_for(publisher.failed_over.wait(), timeout=timeout)

    def current_primary(self) -> BrokerServer:
        """The broker currently acting as Primary."""
        self._require_started()
        if self.primary is not None and self.primary.role == PRIMARY \
                and not self.primary._closed:
            return self.primary
        return self.backup
