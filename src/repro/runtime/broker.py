"""The asyncio FRAME broker: EDF dispatch, replication, coordination.

One :class:`BrokerServer` plays Primary or Backup.  It accepts three kinds
of peers on one listening socket, distinguished by their ``hello`` frame:
publishers (send ``publish`` frames), subscribers (send ``subscribe``,
receive ``deliver``), and the peer broker (receives ``replica``/``prune``,
answers pings on the same connection).

The scheduling core mirrors :mod:`repro.core.broker`: per-topic pseudo
deadlines are precomputed from the same Lemma 1/2 functions, each arrival
spawns dispatch/replication jobs with absolute deadlines, and a worker
pool pops an EDF heap.  Deadlines here are wall-clock (``time.time()``).

Hardening (beyond the first runtime cut):

* The Primary→Backup connection is owned by a supervised
  :class:`~repro.runtime.peerlink.PeerLink` — automatic reconnection with
  exponential backoff + jitter, a bounded queued-or-dropped frame queue
  during outages, and re-protection on reconnect (in-flight non-dispatched
  entries are resynchronized with the possibly-fresh Backup, the runtime
  counterpart of the simulator's ``Broker.attach_peer``).
* Delivery workers are crash-contained: any per-job exception is logged
  and counted instead of killing the worker, and a supervisor respawns a
  worker task that dies anyway.
* The journal is serialized behind an ``asyncio.Lock`` so concurrent
  workers cannot interleave records.
* ``snapshot()`` exposes per-topic counters, deadline-miss and latency
  accounting, peer-link state, and worker health.

Partition tolerance (beyond the paper's fail-stop fault model):

* **Epoch fencing.**  Every broker carries a monotonically increasing
  ``epoch`` (Primary boots at 1, a Backup adopts the Primary's epoch
  from its pongs and bumps it on promotion).  The epoch rides in
  ``hello``/``hello_ack``/``pong`` frames and stamps every broker-
  originated ``deliver``/``replica``/``prune``.  A broker that sees a
  *higher* epoch while acting as Primary demotes to the ``FENCED`` role:
  it rejects new publishes (publishers discover this via ``fenced``
  pongs and fail over), and its stale replicas/prunes are rejected by
  the promoted peer with an explicit ``fence`` frame.  Dedup was the
  only thing masking split-brain before; fencing removes the second
  unfenced Primary entirely.
* **Journal integrity.**  Records are CRC32 + length framed (see
  :mod:`repro.runtime.journal`); boot-time ``prepare_journal`` truncates
  torn tails and counts corrupt records instead of crashing or silently
  re-ingesting garbage, and epoch transitions are journaled so a
  crash-restart cannot resurrect a stale epoch.
"""

from __future__ import annotations

import asyncio
import heapq
import logging
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.core.buffers import BackupBuffer
from repro.core.model import Message, TopicSpec
from repro.core.policy import ARRIVAL_ORDER, FRAME, ConfigPolicy
from repro.core.timing import (
    DeadlineParameters,
    needs_replication,
    pseudo_dispatch_deadline,
    pseudo_replication_deadline,
)
from repro.runtime import journal
from repro.runtime.peerlink import PeerLink
from repro.runtime.wire import (
    BINARY_CODEC,
    FrameReader,
    ProtocolError,
    decode_message,
    encode_frames,
    encode_message,
    read_frame,
    write_encoded,
    write_frame,
)

logger = logging.getLogger(__name__)

PRIMARY = "primary"
BACKUP = "backup"
#: A demoted stale Primary: superseded by a higher epoch, refuses new
#: publishes, kept only so already-connected clients get clean signals.
FENCED = "fenced"

_DISPATCH = 0
_REPLICATE = 1


@dataclass
class RuntimeBrokerConfig:
    """Configuration of one runtime broker."""

    topics: Dict[int, TopicSpec]
    policy: ConfigPolicy = FRAME
    params: DeadlineParameters = field(default_factory=DeadlineParameters)
    backup_buffer_capacity: int = 32
    dispatch_workers: int = 4
    peer_address: Optional[Tuple[str, int]] = None   # the Backup (on the Primary)
    watch_address: Optional[Tuple[str, int]] = None  # the Primary (on the Backup)
    poll_interval: float = 0.2
    reply_timeout: float = 0.2
    miss_threshold: int = 3
    #: A freshly started Backup must either see one successful pong or
    #: outlive this grace window before missed pings count toward
    #: promotion — otherwise a Backup (re)started while the Primary is
    #: briefly unreachable spuriously promotes at boot.
    watch_grace: float = 1.0
    #: Keepalive ping cadence on the Primary→Backup link (0 disables).
    #: The pongs carry the peer's epoch, so a healed stale Primary
    #: learns it was superseded even with no replica traffic flowing.
    peer_ping_interval: float = 0.5
    #: For the disk-logging strategy (``policy.disk_logging``): where the
    #: synchronous journal lives.  ``None`` disables journaling even if
    #: the policy requests it (with a warning).
    journal_path: Optional[str] = None
    #: Replay the existing journal on start (crash-restart recovery, the
    #: Kafka/Flink-style use of the Table 1 local-disk strategy).
    recover_journal: bool = False
    #: Grace before replay begins, letting subscribers reconnect first.
    journal_recovery_delay: float = 0.5
    #: Peer-link supervision knobs (see :mod:`repro.runtime.peerlink`).
    peer_backoff_initial: float = 0.05
    peer_backoff_max: float = 2.0
    peer_backoff_factor: float = 2.0
    peer_backoff_jitter: float = 0.1
    #: Bound on replica/prune frames queued while the Backup is away;
    #: beyond it the oldest queued frame is dropped (and counted).
    peer_queue_limit: int = 256
    #: Resynchronize in-flight non-dispatched entries whenever the peer
    #: link (re)connects — runtime re-protection.
    peer_resync_on_reconnect: bool = True
    #: Data-plane knobs (binary codec + adaptive micro-batching).
    #: Answer ``hello`` codec advertisements with a ``hello_ack`` and
    #: accept/emit struct-packed frames on negotiated connections.
    enable_binary_codec: bool = True
    #: Route deliveries through per-subscriber outbound queues flushed by
    #: a writer task that corks everything pending into one write+drain.
    #: ``False`` restores the original direct write-per-subscriber path.
    batch_dispatch: bool = True
    #: Budget of one corked flush: once this many bytes are pending the
    #: writer flushes immediately instead of waiting for more.
    flush_max_bytes: int = 256 * 1024
    #: Extra seconds a flush may wait to accumulate frames below the byte
    #: budget.  0.0 = opportunistic corking only (flush whatever piled up
    #: while the previous drain was in flight) — no added latency, so
    #: dispatch-deadline semantics are unaffected by default.
    flush_delay: float = 0.0
    #: Bound on frames queued per slow subscriber (0 = unbounded).
    sub_queue_limit: int = 1024
    #: What to do when a subscriber's queue is full: ``"drop"`` evicts
    #: the oldest queued frame (freshest data wins, the real-time
    #: choice), ``"block"`` applies backpressure to the dispatching
    #: worker until the subscriber drains.
    sub_queue_policy: str = "drop"
    #: Group-commit the journal: one write+fsync per batch of concurrent
    #: dispatches instead of per message.  ``False`` restores the
    #: fsync-per-record path.  The on-disk format is identical either
    #: way, so replay reads old and new journals alike.
    journal_group_commit: bool = True

    def __post_init__(self):
        if self.sub_queue_policy not in ("drop", "block"):
            raise ValueError(
                f"sub_queue_policy must be 'drop' or 'block', "
                f"not {self.sub_queue_policy!r}")
        if self.flush_max_bytes <= 0:
            raise ValueError("flush_max_bytes must be positive")
        if self.flush_delay < 0:
            raise ValueError("flush_delay must be >= 0")
        if self.sub_queue_limit < 0:
            raise ValueError("sub_queue_limit must be >= 0")
        if self.watch_grace < 0:
            raise ValueError("watch_grace must be >= 0")
        if self.peer_ping_interval < 0:
            raise ValueError("peer_ping_interval must be >= 0")


class _Entry:
    """Coordination record of one in-flight message (Table 3 flags)."""

    __slots__ = ("message", "arrived_at", "dispatched", "replicated",
                 "wants_replication", "cancelled_replication", "recovered")

    def __init__(self, message: Message, arrived_at: float, wants_replication: bool,
                 recovered: bool = False):
        self.message = message
        self.arrived_at = arrived_at
        self.dispatched = False
        self.replicated = False
        self.wants_replication = wants_replication
        self.cancelled_replication = False
        self.recovered = recovered


class _Subscription:
    """One subscriber connection's outbound side.

    Pre-encoded deliver blobs are enqueued here by dispatch workers and
    flushed by a dedicated writer task that corks everything pending
    into a single ``write`` + ``drain`` (see ``BrokerServer
    ._subscription_writer``).  The queue is bounded so a subscriber that
    stops reading can never hold broker memory hostage.
    """

    __slots__ = ("writer", "binary", "pending", "pending_bytes",
                 "wakeup", "space", "task", "closed")

    def __init__(self, writer: asyncio.StreamWriter, binary: bool):
        self.writer = writer
        self.binary = binary
        self.pending: Deque[bytes] = deque()
        self.pending_bytes = 0
        self.wakeup = asyncio.Event()   # frames pending → writer runs
        self.space = asyncio.Event()    # queue below bound → producers run
        self.space.set()
        self.task: Optional[asyncio.Task] = None
        self.closed = False


class _Connection:
    """Per-connection state: negotiated codec + subscription handle."""

    __slots__ = ("writer", "binary", "subscription", "subscribed")

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.binary = False
        self.subscription: Optional[_Subscription] = None
        self.subscribed: Set[int] = set()


class BrokerServer:
    """A FRAME broker on real sockets."""

    def __init__(self, host: str, port: int, config: RuntimeBrokerConfig,
                 role: str = PRIMARY, name: str = "broker"):
        if role not in (PRIMARY, BACKUP):
            raise ValueError(f"unknown role {role!r}")
        self.host = host
        self.port = port
        self.config = config
        self.role = role
        self.name = name
        self._plan = self._build_plan()
        self._heap: List[Tuple[float, int, int, _Entry]] = []
        self._heap_seq = 0
        self._heap_event = asyncio.Event()
        self._subscribers: Dict[int, Set[_Subscription]] = {}
        self._subscriptions: Set[_Subscription] = set()
        self._entries: Dict[Tuple[int, int], _Entry] = {}
        self.backup_buffer = BackupBuffer(config.backup_buffer_capacity)
        self._peer_link: Optional[PeerLink] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._tasks: List[asyncio.Task] = []
        self._worker_tasks: Set[asyncio.Task] = set()
        self._connections: Set[asyncio.StreamWriter] = set()
        self._journal = None
        self._journal_lock = asyncio.Lock()
        self._journal_pending: List[bytes] = []
        self._journal_appended = 0
        self._journal_durable = 0
        self._journal_scan: Optional[journal.JournalScan] = None
        # Fencing state: a Primary boots into epoch 1, a Backup into 0
        # (it adopts the Primary's epoch from the first pong).
        self.epoch = 1 if role == PRIMARY else 0
        self.fenced_by = 0
        self.fenced_at: Optional[float] = None
        self.fencing_events = 0
        self.publishes_rejected_fenced = 0
        self.stale_frames_rejected = 0
        self.journal_corrupt_records = 0
        self.journal_torn_tail = 0
        if config.journal_path is not None and (
                config.policy.disk_logging or config.recover_journal):
            # Repair before the first append: truncate a torn tail,
            # migrate a legacy JSON-lines file, surface corruption, and
            # restore the persisted epoch so a crash-restart cannot
            # resurrect a stale one.
            scan = journal.prepare_journal(config.journal_path)
            self._journal_scan = scan
            self.journal_corrupt_records += scan.corrupt_records
            if scan.torn_tail:
                self.journal_torn_tail += 1
            if scan.max_epoch > self.epoch:
                self.epoch = scan.max_epoch
            if scan.fenced and scan.max_epoch and self.role == PRIMARY:
                self.role = FENCED
                self.fenced_by = scan.max_epoch
        if config.policy.disk_logging:
            if config.journal_path is None:
                logger.warning("%s: disk_logging policy without journal_path; "
                               "journaling disabled", name)
            else:
                self._journal = open(config.journal_path, "ab")
        self._closed = False
        self._started_at = time.time()
        self.promoted = asyncio.Event()
        # Counters (mirroring the simulator's BrokerStats).
        self.dispatched = 0
        self.replicated = 0
        self.prunes_sent = 0
        self.prunes_applied = 0
        self.replications_aborted = 0
        self.recovery_dispatched = 0
        self.recovery_skipped = 0
        # Hardening / observability counters.
        self.deadline_misses = 0
        self.worker_errors = 0
        self.workers_respawned = 0
        self.peer_resyncs = 0
        # Data-plane counters (micro-batching + slow-subscriber handling).
        self.sub_frames_dropped = 0     # evicted by a full bounded queue
        self.sub_dispatch_blocks = 0    # times a worker waited for space
        self.sub_flushes = 0            # corked write+drain batches
        self.sub_frames_flushed = 0     # frames those batches carried
        self.journal_flushes = 0        # group commits (write+fsync)
        self.journal_records = 0        # records those commits carried
        self._latency_count = 0
        self._latency_sum = 0.0
        self._latency_max = 0.0
        self._topic_counters: Dict[int, Dict[str, int]] = {
            topic_id: {"dispatched": 0, "replicated": 0, "deadline_misses": 0}
            for topic_id in config.topics
        }

    # ------------------------------------------------------------------
    def _build_plan(self) -> Dict[int, Tuple[float, Optional[float]]]:
        plan: Dict[int, Tuple[float, Optional[float]]] = {}
        policy = self.config.policy
        adjusted = policy.adjust_specs(list(self.config.topics.values()))
        for spec in adjusted:
            pseudo_dd = pseudo_dispatch_deadline(spec, self.config.params)
            if not policy.replication_enabled:
                wants = False
            elif policy.selective_replication:
                wants = needs_replication(spec, self.config.params)
            else:
                wants = True
            pseudo_dr = (pseudo_replication_deadline(spec, self.config.params)
                         if wants else None)
            plan[spec.topic_id] = (pseudo_dd, pseudo_dr)
        return plan

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(self._on_connection,
                                                  self.host, self.port)
        if self._server.sockets:
            self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.time()
        for _ in range(self.config.dispatch_workers):
            self._spawn_worker()
        if self.role == PRIMARY and self.config.peer_address:
            await self._start_peer_link(self.config.peer_address)
        if self.role == BACKUP and self.config.watch_address:
            self._tasks.append(asyncio.create_task(self._watch_primary()))
        if self.config.recover_journal and self.config.journal_path:
            self._tasks.append(asyncio.create_task(self._replay_journal()))
        logger.info("%s listening on %s:%d as %s", self.name, self.host,
                    self.port, self.role)

    async def close(self) -> None:
        """Stop serving and sever every connection (fail-stop semantics:
        a crashed broker must stop answering liveness pings immediately)."""
        self._closed = True
        if self._peer_link is not None:
            await self._peer_link.stop()
        for sub in list(self._subscriptions):
            self._close_subscription(sub)
        tasks = self._tasks + list(self._worker_tasks)
        for task in tasks:
            task.cancel()
        for task in tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._connections):
            writer.close()
        self._connections.clear()
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    @property
    def peer_link(self) -> Optional[PeerLink]:
        """The supervised Primary→Backup link (``None`` on a Backup)."""
        return self._peer_link

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        conn = _Connection(writer)
        frames = FrameReader(reader)
        self._connections.add(writer)
        try:
            while not self._closed:
                frame = await frames.read_frame()
                if frame is None:
                    break
                await self._handle_frame(frame, conn)
        except (ProtocolError, ConnectionResetError) as exc:
            logger.warning("%s: dropping connection: %s", self.name, exc)
        finally:
            self._connections.discard(writer)
            self._detach_subscription(conn)
            writer.close()

    def _detach_subscription(self, conn: _Connection) -> None:
        for topic_id in conn.subscribed:
            self._subscribers.get(topic_id, set()).discard(conn.subscription)
        conn.subscribed.clear()
        sub = conn.subscription
        if sub is not None:
            conn.subscription = None
            self._close_subscription(sub)

    def _close_subscription(self, sub: _Subscription) -> None:
        sub.closed = True
        sub.pending.clear()
        sub.pending_bytes = 0
        sub.wakeup.set()    # unblock the writer task so it can exit
        sub.space.set()     # unblock any worker waiting under "block"
        self._subscriptions.discard(sub)
        for members in self._subscribers.values():
            members.discard(sub)
        if sub.task is not None and not sub.task.done():
            sub.task.cancel()

    async def _handle_frame(self, frame, conn: _Connection) -> None:
        kind = frame["type"]
        writer = conn.writer
        if kind == "publish":
            if self.role == FENCED:
                # A fenced (superseded) broker must not admit anything
                # new; the publisher discovers the fencing via pongs and
                # fails over, then its retention buffer re-sends.
                self.publishes_rejected_fenced += len(frame.get("messages", ()))
                return
            arrived_at = time.time()
            for obj in frame.get("messages", ()):
                self._ingest(decode_message(obj), arrived_at,
                             resend=bool(frame.get("resend")))
        elif kind == "hello":
            # Connection-role announcement.  A peer that advertises the
            # binary codec gets an acknowledgement (JSON, so old readers
            # cannot choke on it) and binary deliveries from now on;
            # anything else keeps the JSON-only contract.
            peer_epoch = frame.get("epoch")
            if peer_epoch is not None:
                self._observe_epoch(int(peer_epoch))
            codecs = frame.get("codecs") or ()
            ack = None
            if self.config.enable_binary_codec and BINARY_CODEC in codecs:
                conn.binary = True
                if conn.subscription is not None:
                    conn.subscription.binary = True
                ack = {"type": "hello_ack", "codec": BINARY_CODEC,
                       "epoch": self.epoch}
            elif frame.get("role") == "peer":
                # A peer link must learn our epoch even without codec
                # negotiation: a healed stale Primary has to fence on
                # reconnect, not on its first rejected replica.
                ack = {"type": "hello_ack", "epoch": self.epoch}
            if ack is not None:
                await write_frame(writer, ack)
        elif kind == "subscribe":
            sub = conn.subscription
            if sub is None or sub.closed:
                # A transient write error closes the subscription (dead
                # writer task, cleared queue); a later subscribe on the
                # same connection must get a fresh one, not silently
                # enqueue into a never-flushed queue.
                sub = conn.subscription = _Subscription(writer, conn.binary)
                self._subscriptions.add(sub)
                if self.config.batch_dispatch:
                    sub.task = asyncio.create_task(
                        self._subscription_writer(sub))
                for topic_id in conn.subscribed:   # re-attach earlier topics
                    self._subscribers.setdefault(topic_id, set()).add(sub)
            for topic_id in frame.get("topics", ()):
                self._subscribers.setdefault(int(topic_id), set()).add(sub)
                conn.subscribed.add(int(topic_id))
            await write_frame(writer, {"type": "subscribed"})
        elif kind == "replica":
            if not await self._gate_peer_frame(frame, writer):
                return
            message = decode_message(frame["message"])
            # Honor the Primary's arrival stamp so recovery ordering and
            # latency accounting stay consistent across hosts; fall back
            # to local time only when the frame omits it.
            arrived_at = frame.get("arrived_at")
            self.backup_buffer.store(
                message,
                arrived_at=(float(arrived_at) if arrived_at is not None
                            else time.time()))
        elif kind == "prune":
            if not await self._gate_peer_frame(frame, writer):
                return
            if self.backup_buffer.prune(int(frame["topic"]), int(frame["seq"])):
                self.prunes_applied += 1
        elif kind == "ping":
            pong = {"type": "pong", "nonce": frame.get("nonce"),
                    "epoch": self.epoch}
            if self.role == FENCED:
                pong["fenced"] = True
            await write_frame(writer, pong)
        elif kind == "fence":
            self._fence(int(frame.get("epoch") or 0))
        elif kind == "stats":
            await write_frame(writer, {"type": "stats_reply", **self.snapshot()})
        else:
            raise ProtocolError(f"unknown frame type {kind!r}")

    # ------------------------------------------------------------------
    # Epoch fencing
    # ------------------------------------------------------------------
    def _observe_epoch(self, epoch: int) -> None:
        """Adopt a higher peer epoch; a Primary seeing one must fence."""
        epoch = int(epoch or 0)
        if epoch <= self.epoch:
            return
        if self.role == PRIMARY:
            self._fence(epoch)
        else:
            self.epoch = epoch

    def _fence(self, peer_epoch: int) -> None:
        """Demote this Primary: a peer with a higher epoch has taken over.

        The fenced broker stays up — already-connected subscribers keep
        their deliveries, pings get answered with ``fenced: true`` so
        publishers fail over — but it admits nothing new and journals the
        fencing so a crash-restart cannot resurrect it as Primary.
        """
        peer_epoch = int(peer_epoch or 0)
        if self.role != PRIMARY or peer_epoch <= self.epoch:
            return
        self.role = FENCED
        self.epoch = peer_epoch
        self.fenced_by = peer_epoch
        self.fenced_at = time.time()
        self.fencing_events += 1
        logger.warning("%s: fenced by epoch %d; demoting from primary",
                       self.name, peer_epoch)
        self._journal_note_epoch(fenced=True)

    async def _gate_peer_frame(self, frame, writer) -> bool:
        """Admit a ``replica``/``prune`` only from a current-or-newer epoch.

        A stale frame (lower epoch than ours) is rejected and answered
        with an explicit ``fence`` frame, so the stale sender demotes
        instead of believing its replicas landed.  Unstamped frames pass:
        pre-epoch peers stay interoperable.
        """
        epoch = frame.get("epoch")
        if epoch is None:
            return True
        epoch = int(epoch)
        if epoch < self.epoch:
            self.stale_frames_rejected += 1
            try:
                await write_frame(writer, {"type": "fence",
                                           "epoch": self.epoch})
            except (ConnectionResetError, OSError):
                pass
            return False
        if epoch > self.epoch:
            self._observe_epoch(epoch)
        return True

    def _on_peer_frame(self, frame: Dict[str, object]) -> None:
        """Inbound frames on the Primary→Backup link (acks, pongs, fences)."""
        if frame.get("type") == "fence":
            self._fence(int(frame.get("epoch") or 0))
            return
        epoch = frame.get("epoch")
        if epoch is not None:
            self._observe_epoch(int(epoch))

    def _journal_note_epoch(self, fenced: bool = False) -> None:
        """Persist the current epoch (rare: promotion or fencing).

        Written synchronously — an epoch transition must hit the disk
        before anything else the broker does at the new epoch, and the
        events are rare enough that one inline fsync is irrelevant.

        Brokers that journal messages reuse the open handle; a broker
        configured only for recovery (``recover_journal`` without the
        disk-logging policy) appends the mark with a one-shot open, so
        its epoch still survives a crash-restart.
        """
        if self._journal is None and self._journal_scan is None:
            return   # no journal configured at all
        blob = journal.epoch_record(self.epoch, fenced)
        try:
            if self._journal is not None:
                self._journal_write_blob(blob)
            else:
                import os
                with open(self.config.journal_path, "ab") as handle:
                    handle.write(blob)
                    handle.flush()
                    os.fsync(handle.fileno())
        except (OSError, ValueError):
            logger.exception("%s: failed to journal epoch %d",
                             self.name, self.epoch)

    def snapshot(self) -> Dict[str, object]:
        """Observability counters (served on the wire via a ``stats`` frame)."""
        return {
            "name": self.name,
            "role": self.role,
            "epoch": self.epoch,
            "uptime": round(time.time() - self._started_at, 6),
            "dispatched": self.dispatched,
            "replicated": self.replicated,
            "prunes_sent": self.prunes_sent,
            "prunes_applied": self.prunes_applied,
            "replications_aborted": self.replications_aborted,
            "recovery_dispatched": self.recovery_dispatched,
            "recovery_skipped": self.recovery_skipped,
            "deadline_misses": self.deadline_misses,
            "dispatch_latency": {
                "count": self._latency_count,
                "mean": (self._latency_sum / self._latency_count
                         if self._latency_count else None),
                "max": self._latency_max if self._latency_count else None,
            },
            "per_topic": {str(topic_id): dict(counters)
                          for topic_id, counters in self._topic_counters.items()},
            "peer_link": (self._peer_link.stats()
                          if self._peer_link is not None else None),
            "peer_resyncs": self.peer_resyncs,
            "workers": {
                "configured": self.config.dispatch_workers,
                "alive": len(self._worker_tasks),
                "errors": self.worker_errors,
                "respawned": self.workers_respawned,
            },
            "fencing": {
                "fenced": self.role == FENCED,
                "events": self.fencing_events,
                "fenced_by": self.fenced_by,
                "fenced_at": self.fenced_at,
                "stale_frames_rejected": self.stale_frames_rejected,
                "publishes_rejected": self.publishes_rejected_fenced,
            },
            "journal": {
                "corrupt_records": self.journal_corrupt_records,
                "torn_tail": self.journal_torn_tail,
                "flushes": self.journal_flushes,
                "records": self.journal_records,
            },
            "queued_jobs": len(self._heap),
            "backup_copies": self.backup_buffer.total_count(),
            "backup_copies_live": self.backup_buffer.live_count(),
            "topics": len(self.config.topics),
            "data_plane": {
                "binary_codec": self.config.enable_binary_codec,
                "batch_dispatch": self.config.batch_dispatch,
                "subscriptions": len(self._subscriptions),
                "queue_limit": self.config.sub_queue_limit,
                "queue_policy": self.config.sub_queue_policy,
                "frames_dropped": self.sub_frames_dropped,
                "dispatch_blocks": self.sub_dispatch_blocks,
                "flushes": self.sub_flushes,
                "frames_flushed": self.sub_frames_flushed,
                "journal_flushes": self.journal_flushes,
                "journal_records": self.journal_records,
            },
        }

    # ------------------------------------------------------------------
    # Job generation (Sec. IV-A, wall-clock deadlines)
    # ------------------------------------------------------------------
    def _ingest(self, message: Message, arrived_at: float, resend: bool = False) -> None:
        plan = self._plan.get(message.topic_id)
        if plan is None:
            return
        if resend:
            backup_entry = self.backup_buffer.get(message.topic_id, message.seq)
            if backup_entry is not None and backup_entry.discard:
                return
        key = message.key()
        if key in self._entries:
            return
        pseudo_dd, pseudo_dr = plan
        # The supervised link makes replication capability a property of
        # having a peer at all, not of the socket being up right now:
        # frames sent during an outage are queued and the reconnect
        # resync covers the rest.
        can_replicate = self._peer_link is not None and self.role == PRIMARY
        entry = _Entry(message, arrived_at,
                       wants_replication=pseudo_dr is not None and can_replicate,
                       recovered=resend)
        self._entries[key] = entry
        if self.config.policy.scheduling == ARRIVAL_ORDER:
            dispatch_deadline = replicate_deadline = arrived_at
        else:
            delta_pb = max(0.0, arrived_at - message.created_at)
            dispatch_deadline = arrived_at + pseudo_dd - delta_pb
            replicate_deadline = (arrived_at + pseudo_dr - delta_pb
                                  if pseudo_dr is not None else 0.0)
        if entry.wants_replication and (
                self.config.policy.replicate_before_dispatch
                or replicate_deadline <= dispatch_deadline):
            self._push(replicate_deadline, _REPLICATE, entry)
            self._push(dispatch_deadline, _DISPATCH, entry)
        else:
            self._push(dispatch_deadline, _DISPATCH, entry)
            if entry.wants_replication:
                self._push(replicate_deadline, _REPLICATE, entry)

    def _push(self, deadline: float, kind: int, entry: _Entry) -> None:
        self._heap_seq += 1
        heapq.heappush(self._heap, (deadline, self._heap_seq, kind, entry))
        self._heap_event.set()

    # ------------------------------------------------------------------
    # Message Delivery workers (crash-contained, supervised)
    # ------------------------------------------------------------------
    def _spawn_worker(self) -> None:
        task = asyncio.create_task(self._worker())
        self._worker_tasks.add(task)
        task.add_done_callback(self._on_worker_exit)

    def _on_worker_exit(self, task: asyncio.Task) -> None:
        """Supervision: a delivery worker must never silently die."""
        self._worker_tasks.discard(task)
        if self._closed or task.cancelled():
            return
        try:
            exc = task.exception()
        except asyncio.CancelledError:   # pragma: no cover - defensive
            return
        if exc is not None:
            logger.error("%s: delivery worker died (%r); respawning",
                         self.name, exc)
        else:
            logger.error("%s: delivery worker exited early; respawning",
                         self.name)
        self.workers_respawned += 1
        self._spawn_worker()

    async def _worker(self) -> None:
        coordination = self.config.policy.coordination
        while not self._closed:
            while not self._heap:
                self._heap_event.clear()
                await self._heap_event.wait()
            deadline, _, kind, entry = heapq.heappop(self._heap)
            try:
                if kind == _DISPATCH:
                    await self._do_dispatch(entry, coordination, deadline)
                else:
                    await self._do_replicate(entry, coordination)
            except asyncio.CancelledError:
                raise
            except (OSError, ProtocolError) as exc:
                # Expected churn: a dead subscriber or peer raises
                # BrokenPipeError/ConnectionResetError/... — contain it.
                self.worker_errors += 1
                logger.warning("%s: delivery error: %s", self.name, exc)
            except Exception:
                self.worker_errors += 1
                logger.exception("%s: delivery worker error contained",
                                 self.name)
            finally:
                self._maybe_release(entry)

    # ------------------------------------------------------------------
    # Outbound micro-batching (per-subscriber queues + writer tasks)
    # ------------------------------------------------------------------
    async def _subscription_writer(self, sub: _Subscription) -> None:
        """Flush one subscriber's queue: cork all pending frames into a
        single ``write`` + ``drain``, bounded by the flush-bytes budget.

        The batching is *adaptive* with zero added latency by default: a
        lone frame is written immediately, but every frame that arrives
        while the previous ``drain`` is in flight joins the next corked
        batch — so batch size grows exactly when the connection (or the
        event loop) is the bottleneck.  ``flush_delay > 0`` additionally
        lets a below-budget batch wait for stragglers.
        """
        config = self.config
        pending = sub.pending
        writer = sub.writer
        try:
            while not self._closed and not sub.closed:
                if not pending:
                    sub.wakeup.clear()
                    await sub.wakeup.wait()
                    continue
                if config.flush_delay > 0.0 \
                        and sub.pending_bytes < config.flush_max_bytes:
                    await asyncio.sleep(config.flush_delay)
                budget = config.flush_max_bytes
                chunks = []
                size = 0
                while pending and size < budget:
                    blob = pending.popleft()
                    chunks.append(blob)
                    size += len(blob)
                sub.pending_bytes -= size
                sub.space.set()
                try:
                    writer.write(chunks[0] if len(chunks) == 1
                                 else b"".join(chunks))
                    await writer.drain()
                except (ConnectionResetError, OSError):
                    self._close_subscription(sub)
                    return
                self.sub_flushes += 1
                self.sub_frames_flushed += len(chunks)
        except asyncio.CancelledError:
            raise

    async def _offer(self, sub: _Subscription, blob: bytes) -> None:
        """Enqueue one encoded frame, honoring the bounded-queue policy."""
        limit = self.config.sub_queue_limit
        if limit and len(sub.pending) >= limit:
            if self.config.sub_queue_policy == "block":
                self.sub_dispatch_blocks += 1
                while len(sub.pending) >= limit and not sub.closed:
                    sub.space.clear()
                    await sub.space.wait()
                if sub.closed:
                    return
            else:
                while len(sub.pending) >= limit:
                    dropped = sub.pending.popleft()
                    sub.pending_bytes -= len(dropped)
                    self.sub_frames_dropped += 1
        sub.pending.append(blob)
        sub.pending_bytes += len(blob)
        sub.wakeup.set()

    async def _do_dispatch(self, entry: _Entry, coordination: bool,
                           deadline: float) -> None:
        if entry.dispatched:
            return
        message = entry.message
        if self._journal is not None and not entry.recovered:
            # The Table 1 "local disk" strategy: journal synchronously
            # (write + fsync) before the message leaves the broker.
            # Replayed/resent messages are already on disk.
            if self.config.journal_group_commit:
                await self._journal_commit(message)
            else:
                # The lock serializes workers onto the shared handle so
                # records can never interleave.
                async with self._journal_lock:
                    if self._journal is not None:
                        await asyncio.to_thread(self._journal_write, message)
        subscribers = self._subscribers.get(message.topic_id)
        if subscribers:
            # Encode at most once per codec for the whole fan-out, then
            # hand the same bytes to every subscriber's outbound queue
            # (batched) or socket (direct).
            frame = {"type": "deliver", "message": message}
            if self.epoch:
                frame["epoch"] = self.epoch
            json_blob = binary_blob = None
            batched = self.config.batch_dispatch
            for sub in list(subscribers):
                if sub.binary:
                    if binary_blob is None:
                        binary_blob = encode_frames((frame,), binary=True)
                    blob = binary_blob
                else:
                    if json_blob is None:
                        json_blob = encode_frames((frame,))
                    blob = json_blob
                if batched:
                    await self._offer(sub, blob)
                else:
                    try:
                        await write_encoded(sub.writer, blob)
                    except (ConnectionResetError, OSError):
                        self._close_subscription(sub)
        entry.dispatched = True
        self.dispatched += 1
        now = time.time()
        counters = self._topic_counters.get(message.topic_id)
        if counters is not None:
            counters["dispatched"] += 1
        if self.config.policy.scheduling != ARRIVAL_ORDER and now > deadline:
            self.deadline_misses += 1
            if counters is not None:
                counters["deadline_misses"] += 1
        if not entry.recovered:
            latency = max(0.0, now - message.created_at)
            self._latency_count += 1
            self._latency_sum += latency
            if latency > self._latency_max:
                self._latency_max = latency
        if coordination and not entry.replicated and entry.wants_replication:
            entry.cancelled_replication = True   # Table 3: abort at pop
        if coordination and entry.replicated and self._peer_link is not None:
            await self._peer_link.send({
                "type": "prune", "topic": message.topic_id,
                "seq": message.seq, "epoch": self.epoch})
            self.prunes_sent += 1

    async def _do_replicate(self, entry: _Entry, coordination: bool) -> None:
        if entry.replicated:
            return   # resync can double-queue a job; replicate once
        if coordination and (entry.dispatched or entry.cancelled_replication):
            self.replications_aborted += 1
            return
        link = self._peer_link
        if link is None:
            return
        message = entry.message
        sent = await link.send({
            "type": "replica",
            "message": encode_message(message),
            "arrived_at": entry.arrived_at,
            "epoch": self.epoch,
        })
        if not sent:
            # Queued (or dropped) while the Backup is away.  The entry
            # stays un-replicated; the reconnect resync re-queues it.
            return
        entry.replicated = True
        self.replicated += 1
        counters = self._topic_counters.get(message.topic_id)
        if counters is not None:
            counters["replicated"] += 1
        if coordination and entry.dispatched:
            await link.send({
                "type": "prune", "topic": message.topic_id,
                "seq": message.seq, "epoch": self.epoch})
            self.prunes_sent += 1

    async def _replay_journal(self) -> None:
        """Crash-restart recovery: re-dispatch every journaled message.

        Runs after a grace period so subscribers have reconnected; each
        journaled record is re-ingested like a resent message (dedup at
        ingest and at the subscribers absorbs anything already seen).
        The CRC-framed scan from ``__init__`` already separated intact
        records from corruption, so only verified records are replayed.
        """
        await asyncio.sleep(self.config.journal_recovery_delay)
        scan = self._journal_scan
        if scan is None:   # pragma: no cover - __init__ always scans first
            scan = journal.scan_journal(self.config.journal_path)
            self.journal_corrupt_records += scan.corrupt_records
            if scan.torn_tail:
                self.journal_torn_tail += 1
        recovered = 0
        now = time.time()
        for obj in scan.records:
            try:
                message = decode_message(obj)
            except ProtocolError:
                self.journal_corrupt_records += 1
                logger.warning("%s: skipping corrupt journal record", self.name)
                continue
            self._ingest(message, now, resend=True)
            recovered += 1
        self.recovery_dispatched += recovered
        logger.info("%s: replayed %d journaled messages", self.name, recovered)

    async def _journal_commit(self, message: Message) -> None:
        """Group commit: one write+fsync per batch of concurrent dispatches.

        Every worker appends its record to the shared pending list and
        then queues on the journal lock.  Whoever holds the lock flushes
        *everything* pending in a single write+fsync, so workers that
        piled up behind a flush find their record already durable and
        return without touching the disk — the classic group-commit
        pattern.  Records hit the file in append order, each in its own
        CRC32 + length envelope, exactly like the per-record path, so
        ``_replay_journal`` reads both paths' output unchanged.
        """
        record = journal.message_record(encode_message(message))
        self._journal_pending.append(record)
        self._journal_appended += 1
        ticket = self._journal_appended
        async with self._journal_lock:
            if self._journal_durable >= ticket or self._journal is None:
                return   # a concurrent flush already covered this record
            batch = b"".join(self._journal_pending)
            count = len(self._journal_pending)
            self._journal_pending.clear()
            await asyncio.to_thread(self._journal_write_blob, batch)
            self._journal_durable += count
            self.journal_flushes += 1
            self.journal_records += count

    def _journal_write_blob(self, blob: bytes) -> None:
        import os

        self._journal.write(blob)
        self._journal.flush()
        os.fsync(self._journal.fileno())

    def _journal_write(self, message: Message) -> None:
        self._journal_write_blob(journal.message_record(encode_message(message)))
        self.journal_flushes += 1
        self.journal_records += 1

    def _maybe_release(self, entry: _Entry) -> None:
        done_replication = (not entry.wants_replication or entry.replicated
                            or entry.cancelled_replication)
        if entry.dispatched and done_replication:
            self._entries.pop(entry.message.key(), None)

    # ------------------------------------------------------------------
    # Peer link, re-protection, and promotion
    # ------------------------------------------------------------------
    async def _start_peer_link(self, address: Tuple[str, int]) -> None:
        config = self.config
        self._peer_link = PeerLink(
            address, name=f"{self.name}/peer-link",
            backoff_initial=config.peer_backoff_initial,
            backoff_max=config.peer_backoff_max,
            backoff_factor=config.peer_backoff_factor,
            backoff_jitter=config.peer_backoff_jitter,
            queue_limit=config.peer_queue_limit,
            on_connected=self._on_peer_connected,
            binary=config.enable_binary_codec,
            hello_extra=lambda: {"epoch": self.epoch},
            on_frame=self._on_peer_frame,
            ping_interval=config.peer_ping_interval,
        )
        await self._peer_link.start()

    async def _on_peer_connected(self, first: bool) -> None:
        if self.config.peer_resync_on_reconnect:
            self._resync_with_peer(initial=first)

    def _resync_with_peer(self, initial: bool = False) -> int:
        """Re-queue replication for in-flight entries after a (re)connect.

        Mirrors the simulator's ``Broker.attach_peer`` resync: every
        non-dispatched, non-discarded entry of a replication-needing topic
        gets a fresh replication job — a restarted Backup starts with an
        empty buffer, so previously-queued copies may be gone.  Dispatched
        entries need no replica (Table 3's own argument).
        """
        resynced = 0
        for entry in list(self._entries.values()):
            if entry.dispatched or entry.replicated or entry.cancelled_replication:
                continue
            pseudo_dr = self._plan.get(entry.message.topic_id, (None, None))[1]
            if pseudo_dr is None:
                continue
            entry.wants_replication = True
            if self.config.policy.scheduling == ARRIVAL_ORDER:
                deadline = entry.arrived_at
            else:
                delta_pb = max(0.0, entry.arrived_at - entry.message.created_at)
                deadline = entry.arrived_at + pseudo_dr - delta_pb
            self._push(deadline, _REPLICATE, entry)
            resynced += 1
        if resynced:
            self.peer_resyncs += resynced
            logger.info("%s: resynchronized %d in-flight entries with peer%s",
                        self.name, resynced,
                        " (initial connect)" if initial else "")
        return resynced

    async def attach_peer(self, address: Tuple[str, int]) -> None:
        """Runtime re-protection: adopt a (new) Backup at ``address``.

        The paper's model tolerates exactly one broker failure; after
        promotion the survivor runs unreplicated.  Attaching a freshly
        provisioned Backup restores protection: the supervised link
        connects (and keeps reconnecting), and on connect the in-flight
        non-dispatched entries are resynchronized.
        """
        if self.role != PRIMARY:
            raise RuntimeError("only a Primary can attach a Backup")
        self.config.peer_address = (address[0], int(address[1]))
        if self._peer_link is not None:
            await self._peer_link.stop()
            self._peer_link = None
        await self._start_peer_link(self.config.peer_address)

    async def _watch_primary(self) -> None:
        host, port = self.config.watch_address
        loop = asyncio.get_running_loop()
        misses = 0
        nonce = 0
        had_pong = False
        # A Backup (re)started while the Primary is briefly unreachable
        # must not promote off its very first polls: misses only count
        # after one successful pong, or once the grace window has passed
        # (so a Backup booted against a truly dead Primary still takes
        # over, just not instantly).
        grace_until = loop.time() + self.config.watch_grace
        reader = writer = None
        while not self._closed:
            try:
                if writer is None:
                    reader, writer = await asyncio.open_connection(host, port)
                nonce += 1
                await write_frame(writer, {"type": "ping", "nonce": nonce})
                frame = await asyncio.wait_for(read_frame(reader),
                                               timeout=self.config.reply_timeout)
                if frame is None or frame.get("type") != "pong":
                    raise ConnectionResetError("bad pong")
                had_pong = True
                misses = 0
                epoch = frame.get("epoch")
                if epoch is not None:
                    self._observe_epoch(int(epoch))
                if frame.get("fenced"):
                    # The watched broker was superseded and can never
                    # un-fence; someone must serve, so take over now.
                    self._promote()
                    return
            except (OSError, asyncio.TimeoutError, ConnectionResetError,
                    ProtocolError):
                if writer is not None:
                    writer.close()
                reader = writer = None
                if had_pong or loop.time() >= grace_until:
                    misses += 1
                if misses >= self.config.miss_threshold:
                    self._promote()
                    return
            await asyncio.sleep(self.config.poll_interval)

    def _promote(self) -> None:
        """Become the Primary: re-dispatch non-discarded Backup copies."""
        if self.role != BACKUP:
            return
        self.role = PRIMARY
        # Supersede the old Primary's epoch.  The watcher normally saw at
        # least one pong, so self.epoch holds the old Primary's epoch; a
        # Backup that never reached it still promotes past the boot epoch
        # (1), the common case for a Primary that died before first
        # contact.
        self.epoch = max(self.epoch + 1, 2)
        self._journal_note_epoch(fenced=False)
        logger.info("%s: promoting to primary (epoch %d)",
                    self.name, self.epoch)
        now = time.time()
        for backup_entry in self.backup_buffer.all_entries():
            if backup_entry.discard:
                self.recovery_skipped += 1
                continue
            message = backup_entry.message
            pseudo_dd, _ = self._plan.get(message.topic_id, (None, None))
            if pseudo_dd is None:
                continue
            entry = _Entry(message, backup_entry.arrived_at,
                           wants_replication=False)
            self._entries.setdefault(message.key(), entry)
            deadline = (message.created_at + pseudo_dd
                        if self.config.policy.scheduling != ARRIVAL_ORDER
                        else now)
            self._push(deadline, _DISPATCH, entry)
            self.recovery_dispatched += 1
        self.promoted.set()
