"""Supervised Primary→Backup connection: the peer link.

The original runtime opened the peer connection once at startup and kept
a bare ``StreamWriter``: a Backup blip lost the replication capability
forever.  :class:`PeerLink` owns that connection as a supervised
component instead:

* **Automatic reconnection** with exponential backoff and jitter
  (production edge brokers treat reconnection as a correctness feature,
  not polish — see MigratoryData / Mez in PAPERS.md).
* **Queued-or-dropped send policy while disconnected**: frames written
  during an outage land in a bounded queue and are flushed on
  reconnect; beyond the bound the *oldest* queued frame is dropped and
  counted (replicas are soft state — the freshest copies matter most).
* **Re-protection hook**: every (re)connection fires ``on_connected``
  so the owning broker can resynchronize in-flight entries with the
  (possibly freshly restarted, hence empty) Backup — the runtime
  counterpart of the simulator's ``Broker.attach_peer``.
* **Liveness**: a reader task watches the connection for EOF so a dead
  Backup is detected immediately, not on the next replication write.

All counters are exported through :meth:`stats` and surface in the
broker's ``stats`` wire frame.
"""

from __future__ import annotations

import asyncio
import logging
import random
import time
from collections import deque
from typing import Any, Awaitable, Callable, Deque, Dict, Optional, Tuple

from repro.runtime.wire import ProtocolError, read_frame, write_frame, write_frames

logger = logging.getLogger(__name__)

DISCONNECTED = "disconnected"
CONNECTING = "connecting"
CONNECTED = "connected"


class PeerLink:
    """One supervised outbound connection to the peer (Backup) broker."""

    def __init__(self, address: Tuple[str, int], name: str = "peer-link",
                 backoff_initial: float = 0.05, backoff_max: float = 2.0,
                 backoff_factor: float = 2.0, backoff_jitter: float = 0.1,
                 queue_limit: int = 256,
                 on_connected: Optional[Callable[[bool], Awaitable[None]]] = None):
        if backoff_initial <= 0 or backoff_max < backoff_initial:
            raise ValueError("backoff bounds must satisfy 0 < initial <= max")
        if backoff_factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if queue_limit < 0:
            raise ValueError("queue limit must be >= 0")
        self.address = (address[0], int(address[1]))
        self.name = name
        self.backoff_initial = backoff_initial
        self.backoff_max = backoff_max
        self.backoff_factor = backoff_factor
        self.backoff_jitter = backoff_jitter
        self.queue_limit = queue_limit
        self.on_connected = on_connected
        self.state = DISCONNECTED
        self.connects = 0            # successful connection establishments
        self.disconnects = 0         # established connections that dropped
        self.connect_failures = 0    # failed connection attempts
        self.frames_sent = 0
        self.frames_queued = 0       # frames that entered the outage queue
        self.frames_dropped = 0      # queued frames evicted by the bound
        self.last_error: Optional[str] = None
        self.last_connected_at: Optional[float] = None
        self.last_disconnected_at: Optional[float] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._queue: Deque[Dict[str, Any]] = deque()
        self._task: Optional[asyncio.Task] = None
        self._connected_event = asyncio.Event()
        self._retry_now = asyncio.Event()
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def connected(self) -> bool:
        return self._writer is not None

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    async def start(self) -> None:
        if self._task is not None:
            raise RuntimeError("peer link already started")
        self._task = asyncio.create_task(self._run())

    async def stop(self) -> None:
        self._closed = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, Exception):
                pass
            self._task = None
        self._drop_writer()
        self.state = DISCONNECTED

    def retarget(self, address: Tuple[str, int]) -> None:
        """Point the link at a new peer address; reconnects on next cycle."""
        self.address = (address[0], int(address[1]))
        self._drop_writer()
        self._retry_now.set()

    async def wait_connected(self, timeout: float = 10.0) -> None:
        await asyncio.wait_for(self._connected_event.wait(), timeout=timeout)

    # ------------------------------------------------------------------
    async def send(self, frame: Dict[str, Any]) -> bool:
        """Write ``frame`` to the peer; queue it when disconnected.

        Returns ``True`` only when the frame actually reached the socket
        buffer — a queued or dropped frame returns ``False``, so callers
        can keep honest "replicated" bookkeeping.
        """
        writer = self._writer
        if writer is None:
            self._enqueue(frame)
            return False
        try:
            await write_frame(writer, frame)
        except (OSError, ProtocolError) as exc:
            self.last_error = str(exc) or type(exc).__name__
            logger.warning("%s: peer write failed: %s", self.name, exc)
            self._drop_writer()
            self._retry_now.set()
            self._enqueue(frame)
            return False
        self.frames_sent += 1
        return True

    def _enqueue(self, frame: Dict[str, Any]) -> None:
        if self.queue_limit == 0:
            self.frames_dropped += 1
            return
        while len(self._queue) >= self.queue_limit:
            self._queue.popleft()
            self.frames_dropped += 1
        self._queue.append(frame)
        self.frames_queued += 1

    #: Frames corked into one write while flushing the outage queue.
    FLUSH_BATCH = 64

    async def _flush_queue(self) -> int:
        """Send everything queued during the outage, oldest first.

        Frames are corked into batches of :attr:`FLUSH_BATCH` and written
        with a single drain each (:func:`~repro.runtime.wire.write_frames`)
        — a resync after a long outage can hold thousands of frames, and a
        per-frame drain would cost an event-loop round trip for each.  On a
        write error the in-flight batch is pushed back intact, so ordering
        is preserved for the next reconnect.
        """
        flushed = 0
        queue = self._queue
        while queue:
            writer = self._writer
            if writer is None:
                break
            batch = [queue.popleft()
                     for _ in range(min(len(queue), self.FLUSH_BATCH))]
            try:
                await write_frames(writer, batch)
            except (OSError, ProtocolError) as exc:
                queue.extendleft(reversed(batch))   # went down again; keep order
                self.last_error = str(exc) or type(exc).__name__
                self._drop_writer()
                break
            self.frames_sent += len(batch)
            flushed += len(batch)
        return flushed

    # ------------------------------------------------------------------
    async def _run(self) -> None:
        backoff = self.backoff_initial
        first = True
        while not self._closed:
            self.state = CONNECTING
            try:
                reader, writer = await asyncio.open_connection(*self.address)
                await write_frame(writer, {"type": "hello", "role": "peer"})
            except OSError as exc:
                self.connect_failures += 1
                self.last_error = str(exc) or type(exc).__name__
                await self._sleep_backoff(backoff)
                backoff = min(backoff * self.backoff_factor, self.backoff_max)
                continue
            self._writer = writer
            self.state = CONNECTED
            self.connects += 1
            self.last_connected_at = time.time()
            self._connected_event.set()
            backoff = self.backoff_initial
            logger.info("%s: connected to peer %s:%d%s", self.name,
                        self.address[0], self.address[1],
                        "" if first else " (reconnect)")
            flushed = await self._flush_queue()
            if flushed:
                logger.info("%s: flushed %d queued frames", self.name, flushed)
            if self.on_connected is not None and self._writer is not None:
                try:
                    await self.on_connected(first)
                except Exception:
                    logger.exception("%s: on_connected hook failed", self.name)
            first = False
            # Watch the connection for EOF / errors (liveness). Inbound
            # frames (e.g. pongs) are drained and ignored.
            try:
                while self._writer is writer:
                    frame = await read_frame(reader)
                    if frame is None:
                        break
            except (OSError, ProtocolError):
                pass
            if not self._closed:
                self.disconnects += 1
                self.last_disconnected_at = time.time()
                logger.warning("%s: peer connection lost", self.name)
            self._drop_writer()

    async def _sleep_backoff(self, backoff: float) -> None:
        jitter = 1.0 + random.uniform(-self.backoff_jitter, self.backoff_jitter)
        self._retry_now.clear()
        try:
            await asyncio.wait_for(self._retry_now.wait(),
                                   timeout=max(0.0, backoff * jitter))
        except asyncio.TimeoutError:
            pass

    def _drop_writer(self) -> None:
        writer, self._writer = self._writer, None
        self.state = DISCONNECTED
        self._connected_event.clear()
        if writer is not None:
            try:
                writer.close()
            except Exception:   # pragma: no cover - defensive
                pass

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Counters for the broker's ``stats`` frame."""
        return {
            "address": list(self.address),
            "state": self.state,
            "connects": self.connects,
            "reconnects": max(0, self.connects - 1),
            "disconnects": self.disconnects,
            "connect_failures": self.connect_failures,
            "frames_sent": self.frames_sent,
            "frames_queued": self.frames_queued,
            "frames_dropped": self.frames_dropped,
            "queue_depth": self.queue_depth,
            "last_error": self.last_error,
        }
