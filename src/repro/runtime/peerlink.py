"""Supervised Primary→Backup connection: the peer link.

The original runtime opened the peer connection once at startup and kept
a bare ``StreamWriter``: a Backup blip lost the replication capability
forever.  :class:`PeerLink` owns that connection as a supervised
component instead:

* **Automatic reconnection** with exponential backoff and jitter
  (production edge brokers treat reconnection as a correctness feature,
  not polish — see MigratoryData / Mez in PAPERS.md).
* **Queued-or-dropped send policy while disconnected**: frames written
  during an outage land in a bounded queue and are flushed on
  reconnect; beyond the bound the *oldest* queued frame is dropped and
  counted (replicas are soft state — the freshest copies matter most).
* **Re-protection hook**: every (re)connection fires ``on_connected``
  so the owning broker can resynchronize in-flight entries with the
  (possibly freshly restarted, hence empty) Backup — the runtime
  counterpart of the simulator's ``Broker.attach_peer``.
* **Liveness**: a reader task watches the connection for EOF so a dead
  Backup is detected immediately, not on the next replication write.
  With ``ping_interval`` set the link also sends periodic keepalive
  pings; the pongs (which carry the peer's fencing epoch) reach the
  owning broker through ``on_frame``, so a Primary learns it has been
  superseded even on a link that is connected but carrying no replicas.

All counters are exported through :meth:`stats` and surface in the
broker's ``stats`` wire frame.
"""

from __future__ import annotations

import asyncio
import logging
import random
import time
from collections import deque
from typing import Any, Awaitable, Callable, Deque, Dict, Optional, Tuple

from repro.runtime.wire import (
    BINARY_CODEC,
    FrameReader,
    ProtocolError,
    encode_frames,
    write_frame,
)

logger = logging.getLogger(__name__)

DISCONNECTED = "disconnected"
CONNECTING = "connecting"
CONNECTED = "connected"


class PeerLink:
    """One supervised outbound connection to the peer (Backup) broker."""

    def __init__(self, address: Tuple[str, int], name: str = "peer-link",
                 backoff_initial: float = 0.05, backoff_max: float = 2.0,
                 backoff_factor: float = 2.0, backoff_jitter: float = 0.1,
                 queue_limit: int = 256,
                 on_connected: Optional[Callable[[bool], Awaitable[None]]] = None,
                 binary: bool = True, hello_timeout: float = 0.25,
                 hello_extra: Optional[Callable[[], Dict[str, Any]]] = None,
                 on_frame: Optional[Callable[[Dict[str, Any]], None]] = None,
                 ping_interval: float = 0.0):
        if backoff_initial <= 0 or backoff_max < backoff_initial:
            raise ValueError("backoff bounds must satisfy 0 < initial <= max")
        if backoff_factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if queue_limit < 0:
            raise ValueError("queue limit must be >= 0")
        self.address = (address[0], int(address[1]))
        self.name = name
        self.backoff_initial = backoff_initial
        self.backoff_max = backoff_max
        self.backoff_factor = backoff_factor
        self.backoff_jitter = backoff_jitter
        self.queue_limit = queue_limit
        self.on_connected = on_connected
        self.binary = binary
        self.hello_timeout = hello_timeout
        self.hello_extra = hello_extra
        self.on_frame = on_frame
        self.ping_interval = ping_interval
        self.state = DISCONNECTED
        self.connects = 0            # successful connection establishments
        self.disconnects = 0         # established connections that dropped
        self.connect_failures = 0    # failed connection attempts
        self.frames_sent = 0
        self.frames_queued = 0       # frames that entered the outage queue
        self.frames_dropped = 0      # queued frames evicted by the bound
        self.last_error: Optional[str] = None
        self.last_connected_at: Optional[float] = None
        self.last_disconnected_at: Optional[float] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._queue: Deque[Dict[str, Any]] = deque()
        self._task: Optional[asyncio.Task] = None
        self._connected_event = asyncio.Event()
        self._retry_now = asyncio.Event()
        self._closed = False
        self._binary_active = False
        # Steady-state cork: frames accepted while connected accumulate
        # here and a dedicated flusher task writes everything pending in
        # one write+drain — one event-loop round trip amortized over the
        # whole batch instead of paid per frame.  Each item is a
        # ``(frame, future)`` pair; the future resolves True only once
        # the frame has been written *and drained*, so ``send()`` keeps
        # the at-the-socket contract callers rely on for replication
        # bookkeeping.
        self._cork: Deque[Tuple[Dict[str, Any], Optional[asyncio.Future]]] = deque()
        self._cork_limit = queue_limit if queue_limit > 0 else self.FLUSH_BATCH
        self._cork_event = asyncio.Event()
        self._cork_space = asyncio.Event()
        self._cork_space.set()
        self._flush_task: Optional[asyncio.Task] = None
        self._ping_task: Optional[asyncio.Task] = None
        self._ping_nonce = 0

    # ------------------------------------------------------------------
    @property
    def connected(self) -> bool:
        return self._writer is not None

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    async def start(self) -> None:
        if self._task is not None:
            raise RuntimeError("peer link already started")
        self._task = asyncio.create_task(self._run())
        self._flush_task = asyncio.create_task(self._flush_loop())
        if self.ping_interval > 0:
            self._ping_task = asyncio.create_task(self._ping_loop())

    async def stop(self) -> None:
        self._closed = True
        for task_name in ("_task", "_flush_task", "_ping_task"):
            task = getattr(self, task_name)
            if task is not None:
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
                setattr(self, task_name, None)
        self._drop_writer()
        self.state = DISCONNECTED

    def retarget(self, address: Tuple[str, int]) -> None:
        """Point the link at a new peer address; reconnects on next cycle."""
        self.address = (address[0], int(address[1]))
        self._drop_writer()
        self._retry_now.set()

    async def wait_connected(self, timeout: float = 10.0) -> None:
        await asyncio.wait_for(self._connected_event.wait(), timeout=timeout)

    # ------------------------------------------------------------------
    async def send(self, frame: Dict[str, Any]) -> bool:
        """Hand ``frame`` to the connected link; queue it when disconnected.

        While connected the frame joins the steady-state cork and the
        flusher task writes everything pending in one ``write``+``drain``.
        ``True`` is returned only after the frame has actually been
        written *and drained* to the peer socket — never merely corked —
        so a caller marking a message "replicated" on ``True`` can trust
        the bytes left this host.  ``False`` means the frame was queued
        for the next reconnect (or dropped: outage-queue eviction, or
        unsendable because it is oversized) and the caller must keep the
        entry un-replicated; the reconnect resync covers it.  Concurrent
        senders share one corked write, so the per-frame drain cost is
        still amortized across them.
        """
        if self._writer is None:
            self._enqueue(frame)
            return False
        while len(self._cork) >= self._cork_limit and self._writer is not None:
            self._cork_space.clear()
            await self._cork_space.wait()
        if self._writer is None:
            self._enqueue(frame)
            return False
        future = asyncio.get_running_loop().create_future()
        self._cork.append((frame, future))
        self._cork_event.set()
        return await future

    def _enqueue(self, frame: Dict[str, Any]) -> None:
        if self.queue_limit == 0:
            self.frames_dropped += 1
            return
        while len(self._queue) >= self.queue_limit:
            self._queue.popleft()
            self.frames_dropped += 1
        self._queue.append(frame)
        self.frames_queued += 1

    #: Frames corked into one write while flushing the outage queue.
    FLUSH_BATCH = 64

    def _encode_one(self, frame: Dict[str, Any]) -> Optional[bytes]:
        """Encode one frame, or ``None`` (counted + logged) if unsendable.

        Encoding per frame means an oversized frame drops *itself* only —
        a whole-batch encode would discard up to :attr:`FLUSH_BATCH`
        innocent frames alongside the one offender.
        """
        try:
            return encode_frames((frame,), binary=self._binary_active)
        except ProtocolError as exc:   # oversized frame: unsendable anywhere
            self.last_error = str(exc) or type(exc).__name__
            self.frames_dropped += 1
            logger.warning("%s: dropping unencodable frame: %s",
                           self.name, exc)
            return None

    @staticmethod
    def _resolve(item: Tuple[Dict[str, Any], Optional[asyncio.Future]],
                 sent: bool) -> None:
        future = item[1]
        if future is not None and not future.done():
            future.set_result(sent)

    def _migrate(self, item: Tuple[Dict[str, Any], Optional[asyncio.Future]]) -> None:
        """Move a corked frame into the outage queue, waking its sender.

        The sender gets ``False`` — the frame has *not* reached the peer —
        so the owning broker keeps the entry un-replicated and the
        reconnect resync protects it even if the bounded outage queue
        later evicts the frame.
        """
        self._resolve(item, False)
        self._enqueue(item[0])

    async def _flush_queue(self) -> int:
        """Send everything queued during the outage, oldest first.

        Frames are corked into batches of :attr:`FLUSH_BATCH` and written
        with a single drain each — a resync after a long outage can hold
        thousands of frames, and a per-frame drain would cost an
        event-loop round trip for each.  On a write error the in-flight
        batch is pushed back intact, so ordering is preserved for the
        next reconnect; an unsendable (oversized) frame is dropped alone.
        """
        flushed = 0
        queue = self._queue
        while queue:
            writer = self._writer
            if writer is None:
                break
            batch = [queue.popleft()
                     for _ in range(min(len(queue), self.FLUSH_BATCH))]
            parts = []
            sendable = []
            for frame in batch:
                blob = self._encode_one(frame)
                if blob is not None:
                    parts.append(blob)
                    sendable.append(frame)
            if not parts:
                continue
            try:
                writer.write(b"".join(parts))
                await writer.drain()
            except OSError as exc:
                queue.extendleft(reversed(sendable))  # went down again; keep order
                self.last_error = str(exc) or type(exc).__name__
                self._drop_writer()
                break
            self.frames_sent += len(sendable)
            flushed += len(sendable)
        return flushed

    async def _flush_loop(self) -> None:
        """Drain the steady-state cork: one write+drain per pending batch.

        Runs for the lifetime of the link.  Each corked frame's future is
        resolved True only after the batch carrying it has been written
        and drained; when the connection drops, anything still corked
        migrates into the outage queue (preserving order, resolving the
        waiting senders False) so it is flushed on the next reconnect.
        """
        cork = self._cork
        while True:
            await self._cork_event.wait()
            self._cork_event.clear()
            while cork:
                writer = self._writer
                if writer is None:
                    while cork:
                        self._migrate(cork.popleft())
                    self._cork_space.set()
                    break
                batch = [cork.popleft()
                         for _ in range(min(len(cork), self.FLUSH_BATCH))]
                self._cork_space.set()
                parts = []
                sendable = []
                for item in batch:
                    blob = self._encode_one(item[0])
                    if blob is None:
                        self._resolve(item, False)
                    else:
                        parts.append(blob)
                        sendable.append(item)
                if not parts:
                    continue
                try:
                    writer.write(b"".join(parts))
                    await writer.drain()
                except OSError as exc:
                    self.last_error = str(exc) or type(exc).__name__
                    logger.warning("%s: peer write failed: %s", self.name, exc)
                    cork.extendleft(reversed(sendable))  # migrate via outage path
                    self._drop_writer()
                    self._retry_now.set()
                    continue
                self.frames_sent += len(sendable)
                for item in sendable:
                    self._resolve(item, True)

    def _deliver_frame(self, frame: Dict[str, Any]) -> None:
        """Hand an inbound frame to the owning broker's ``on_frame`` hook."""
        if self.on_frame is None:
            return
        try:
            self.on_frame(frame)
        except Exception:
            logger.exception("%s: on_frame hook failed", self.name)

    async def _ping_loop(self) -> None:
        """Keepalive pings while connected (epoch probing, not liveness).

        EOF detection already covers dead peers; these pings exist so the
        peer's *pong* — which carries its fencing epoch — flows back over
        an otherwise idle link.  A partition-healed stale Primary with no
        replica traffic would otherwise never learn it was superseded.
        """
        while not self._closed:
            await asyncio.sleep(self.ping_interval)
            if self._writer is None:
                continue
            self._ping_nonce += 1
            try:
                await self.send({"type": "ping", "nonce": self._ping_nonce,
                                 "from": self.name})
            except Exception:   # pragma: no cover - send never raises today
                logger.exception("%s: keepalive ping failed", self.name)

    # ------------------------------------------------------------------
    async def _run(self) -> None:
        backoff = self.backoff_initial
        first = True
        while not self._closed:
            self.state = CONNECTING
            try:
                reader, writer = await asyncio.open_connection(*self.address)
                hello: Dict[str, Any] = {"type": "hello", "role": "peer"}
                if self.binary:
                    hello["codecs"] = [BINARY_CODEC]
                if self.hello_extra is not None:
                    hello.update(self.hello_extra())
                await write_frame(writer, hello)
            except OSError as exc:
                self.connect_failures += 1
                self.last_error = str(exc) or type(exc).__name__
                await self._sleep_backoff(backoff)
                backoff = min(backoff * self.backoff_factor, self.backoff_max)
                continue
            frames = FrameReader(reader)
            self._binary_active = False
            if self.binary:
                # Give the peer one beat to ack the codec so the resync
                # flush already goes out binary; a silent or legacy peer
                # just leaves the link on JSON.
                try:
                    ack = await asyncio.wait_for(frames.read_frame(),
                                                 timeout=self.hello_timeout)
                except (asyncio.TimeoutError, OSError, ProtocolError):
                    ack = None
                if isinstance(ack, dict):
                    if (ack.get("type") == "hello_ack"
                            and ack.get("codec") == BINARY_CODEC):
                        self._binary_active = True
                    self._deliver_frame(ack)
            self._writer = writer
            self.state = CONNECTED
            self.connects += 1
            self.last_connected_at = time.time()
            self._connected_event.set()
            backoff = self.backoff_initial
            logger.info("%s: connected to peer %s:%d%s", self.name,
                        self.address[0], self.address[1],
                        "" if first else " (reconnect)")
            flushed = await self._flush_queue()
            if flushed:
                logger.info("%s: flushed %d queued frames", self.name, flushed)
            if self.on_connected is not None and self._writer is not None:
                try:
                    await self.on_connected(first)
                except Exception:
                    logger.exception("%s: on_connected hook failed", self.name)
            first = False
            # Watch the connection for EOF / errors (liveness). Inbound
            # frames are drained; a late hello_ack upgrades the codec,
            # everything (pongs, fence frames, the ack itself) is handed
            # to the owning broker via on_frame.
            try:
                while self._writer is writer:
                    frame = await frames.read_frame()
                    if frame is None:
                        break
                    if not isinstance(frame, dict):
                        continue
                    if (frame.get("type") == "hello_ack"
                            and frame.get("codec") == BINARY_CODEC
                            and self.binary):
                        self._binary_active = True
                    self._deliver_frame(frame)
            except (OSError, ProtocolError):
                pass
            if not self._closed:
                self.disconnects += 1
                self.last_disconnected_at = time.time()
                logger.warning("%s: peer connection lost", self.name)
            self._drop_writer()

    async def _sleep_backoff(self, backoff: float) -> None:
        jitter = 1.0 + random.uniform(-self.backoff_jitter, self.backoff_jitter)
        self._retry_now.clear()
        try:
            await asyncio.wait_for(self._retry_now.wait(),
                                   timeout=max(0.0, backoff * jitter))
        except asyncio.TimeoutError:
            pass

    def _drop_writer(self) -> None:
        writer, self._writer = self._writer, None
        self.state = DISCONNECTED
        self._binary_active = False
        self._connected_event.clear()
        # Wake anyone blocked on a full cork (they re-check the writer and
        # fall back to the outage queue) and migrate corked frames into
        # the outage queue so the next reconnect flushes them in order;
        # their senders are resolved False so nothing still in flight is
        # ever accounted as replicated.
        self._cork_space.set()
        while self._cork:
            self._migrate(self._cork.popleft())
        if writer is not None:
            try:
                writer.close()
            except Exception:   # pragma: no cover - defensive
                pass

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Counters for the broker's ``stats`` frame."""
        return {
            "address": list(self.address),
            "state": self.state,
            "codec": BINARY_CODEC if self._binary_active else "json",
            "connects": self.connects,
            "reconnects": max(0, self.connects - 1),
            "disconnects": self.disconnects,
            "connect_failures": self.connect_failures,
            "frames_sent": self.frames_sent,
            "frames_queued": self.frames_queued,
            "frames_dropped": self.frames_dropped,
            "queue_depth": self.queue_depth,
            "last_error": self.last_error,
        }
