"""Runtime clients: the publisher proxy and the subscriber.

A :class:`Publisher` keeps a Retention Buffer per topic, watches the
Primary with ping/pong polling, and on suspicion redirects its traffic to
the Backup, re-sending all retained messages first (the fail-over path).

A :class:`Subscriber` connects to both brokers, subscribes its topics on
each, deduplicates deliveries by ``(topic, seq)``, and invokes a callback.
"""

from __future__ import annotations

import asyncio
import logging
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.buffers import RingBuffer
from repro.core.model import Message, TopicSpec
from repro.runtime.wire import (
    ProtocolError,
    decode_message,
    encode_message,
    read_frame,
    write_frame,
)

logger = logging.getLogger(__name__)

Address = Tuple[str, int]


async def fetch_stats(address: Address, timeout: float = 2.0) -> Dict[str, object]:
    """Fetch a broker's observability counters over the wire."""
    host, port = address
    reader, writer = await asyncio.open_connection(host, port)
    try:
        await write_frame(writer, {"type": "stats"})
        frame = await asyncio.wait_for(read_frame(reader), timeout=timeout)
        if frame is None or frame.get("type") != "stats_reply":
            raise ConnectionError(f"bad stats reply from {address}: {frame!r}")
        frame.pop("type")
        return frame
    finally:
        writer.close()


class Publisher:
    """A publisher proxy for a set of topics."""

    def __init__(self, specs: Sequence[TopicSpec], primary: Address,
                 backup: Address, publisher_id: str = "publisher",
                 poll_interval: float = 0.2, reply_timeout: float = 0.2,
                 miss_threshold: int = 3):
        if not specs:
            raise ValueError("publisher needs at least one topic")
        self.specs = list(specs)
        self.publisher_id = publisher_id
        self.addresses = [primary, backup]
        self.target_index = 0
        self.poll_interval = poll_interval
        self.reply_timeout = reply_timeout
        self.miss_threshold = miss_threshold
        self.failed_over = asyncio.Event()
        self._retention: Dict[int, RingBuffer] = {
            spec.topic_id: RingBuffer(spec.retention) for spec in self.specs
        }
        self._seq: Dict[int, int] = {spec.topic_id: 0 for spec in self.specs}
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader: Optional[asyncio.StreamReader] = None
        self._watch_task: Optional[asyncio.Task] = None
        self._periodic_tasks: List[asyncio.Task] = []
        self._lock = asyncio.Lock()
        self.send_failures = 0
        self.reconnects = 0

    @property
    def current_target(self) -> Address:
        return self.addresses[self.target_index]

    # ------------------------------------------------------------------
    async def start(self) -> None:
        await self._connect()
        self._watch_task = asyncio.create_task(self._watch())

    async def close(self) -> None:
        for task in [self._watch_task] + self._periodic_tasks:
            if task is None:
                continue
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._periodic_tasks.clear()
        if self._writer is not None:
            self._writer.close()

    # ------------------------------------------------------------------
    def start_periodic(self, payload_factory: Optional[Callable[[int, int], object]] = None) -> None:
        """Publish each topic at its own period until :meth:`close`.

        ``payload_factory(topic_id, seq)`` produces the payload; the
        default sends ``None``.  This mirrors the simulator's sporadic
        publisher proxies (one message per topic per period).
        """
        if self._periodic_tasks:
            raise RuntimeError("periodic publishing already started")
        for spec in self.specs:
            self._periodic_tasks.append(
                asyncio.create_task(self._periodic_loop(spec, payload_factory)))

    async def _periodic_loop(self, spec: TopicSpec, payload_factory) -> None:
        while True:
            seq = self._seq[spec.topic_id] + 1
            payload = payload_factory(spec.topic_id, seq) if payload_factory else None
            try:
                await self.publish({spec.topic_id: payload})
            except (ConnectionResetError, OSError):
                pass  # retained; the fail-over path will re-send
            await asyncio.sleep(spec.period)

    async def _connect(self) -> None:
        host, port = self.current_target
        self._reader, self._writer = await asyncio.open_connection(host, port)
        await write_frame(self._writer, {"type": "hello", "role": "publisher"})

    # ------------------------------------------------------------------
    async def publish(self, payloads: Dict[int, object]) -> List[Message]:
        """Create and send one message per topic in ``payloads``.

        Returns the created messages (sequence numbers assigned).
        Messages are retained regardless of send success, so a crash of
        the current target never loses more than the retention allows.
        """
        created_at = time.time()
        batch: List[Message] = []
        for topic_id, payload in payloads.items():
            if topic_id not in self._seq:
                raise KeyError(f"topic {topic_id} not registered on this publisher")
            self._seq[topic_id] += 1
            message = Message(topic_id, self._seq[topic_id], created_at,
                              data=payload)
            self._retention[topic_id].append(message)
            batch.append(message)
        await self._send_batch(batch, resend=False)
        return batch

    async def _send_batch(self, batch: List[Message], resend: bool) -> None:
        frame = {
            "type": "publish",
            "publisher": self.publisher_id,
            "resend": resend,
            "messages": [encode_message(m) for m in batch],
        }
        async with self._lock:
            # One transparent reconnect-and-retry: a broker restart (or an
            # idle-connection drop) should cost one frame's latency, not a
            # full fail-over.  A genuinely dead broker fails both attempts
            # and the batch stays retained for the fail-over path.
            for attempt in range(2):
                if self._writer is None:
                    try:
                        await self._connect()
                        self.reconnects += 1
                    except OSError:
                        break
                try:
                    await write_frame(self._writer, frame)
                    return
                except (ConnectionResetError, OSError):
                    self._writer.close()
                    self._writer = None
            self.send_failures += 1
            logger.warning("%s: send failed; batch retained", self.publisher_id)

    # ------------------------------------------------------------------
    async def _watch(self) -> None:
        misses = 0
        nonce = 0
        while True:
            await asyncio.sleep(self.poll_interval)
            nonce += 1
            try:
                async with self._lock:
                    if self._writer is None:
                        raise ConnectionResetError
                    await write_frame(self._writer, {"type": "ping", "nonce": nonce})
                    frame = await asyncio.wait_for(read_frame(self._reader),
                                                   timeout=self.reply_timeout)
                if frame is None or frame.get("type") != "pong":
                    raise ConnectionResetError("bad pong")
                misses = 0
            except (OSError, asyncio.TimeoutError, ConnectionResetError,
                    ProtocolError):
                misses += 1
                if misses >= self.miss_threshold and self.target_index == 0:
                    await self._fail_over()
                    return

    async def _fail_over(self) -> None:
        """Redirect to the Backup and re-send every retained message."""
        logger.info("%s: failing over to backup", self.publisher_id)
        self.target_index = 1
        if self._writer is not None:
            self._writer.close()
        self._writer = None
        while self._writer is None:
            try:
                await self._connect()
            except OSError:
                await asyncio.sleep(0.05)
        retained: List[Message] = []
        for ring in self._retention.values():
            retained.extend(ring.snapshot())
        if retained:
            await self._send_batch(retained, resend=True)
        self.failed_over.set()


class Subscriber:
    """A subscriber connected to both brokers, with dedup by (topic, seq)."""

    def __init__(self, topics: Iterable[int], primary: Address, backup: Address,
                 on_message: Optional[Callable[[Message], None]] = None,
                 name: str = "subscriber"):
        self.topics = list(topics)
        self.addresses = [primary, backup]
        self.on_message = on_message
        self.name = name
        self.received: Dict[int, Dict[int, float]] = {t: {} for t in self.topics}
        self.duplicates = 0
        self.reconnects = 0
        self._tasks: List[asyncio.Task] = []
        self._writers: List[asyncio.StreamWriter] = []

    async def start(self) -> None:
        for address in self.addresses:
            self._tasks.append(asyncio.create_task(self._listen(address)))

    async def close(self) -> None:
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        for writer in self._writers:
            writer.close()

    def delivered_seqs(self, topic_id: int) -> Set[int]:
        return set(self.received.get(topic_id, ()))

    async def _listen(self, address: Address) -> None:
        host, port = address
        connected_before = False
        while True:
            try:
                reader, writer = await asyncio.open_connection(host, port)
            except OSError:
                await asyncio.sleep(0.1)
                continue
            if connected_before:
                self.reconnects += 1
            connected_before = True
            self._writers.append(writer)
            try:
                await write_frame(writer, {"type": "hello", "role": "subscriber"})
                await write_frame(writer, {"type": "subscribe", "topics": self.topics})
                while True:
                    frame = await read_frame(reader)
                    if frame is None:
                        break
                    if frame["type"] == "deliver":
                        self._on_deliver(decode_message(frame["message"]))
            except (ConnectionResetError, OSError, ProtocolError):
                pass
            finally:
                writer.close()
                if writer in self._writers:
                    self._writers.remove(writer)
            await asyncio.sleep(0.1)   # reconnect (e.g. broker restarted)

    def _on_deliver(self, message: Message) -> None:
        records = self.received.setdefault(message.topic_id, {})
        if message.seq in records:
            self.duplicates += 1
            return
        records[message.seq] = time.time() - message.created_at
        if self.on_message is not None:
            self.on_message(message)
