"""Runtime clients: the publisher proxy and the subscriber.

A :class:`Publisher` keeps a Retention Buffer per topic, watches the
Primary with ping/pong polling, and on suspicion redirects its traffic to
the Backup, re-sending all retained messages first (the fail-over path).

A :class:`Subscriber` connects to both brokers, subscribes its topics on
each, deduplicates deliveries by ``(topic, seq)``, and invokes a callback.

Data plane: both clients advertise the binary codec in their ``hello``
(disable with ``binary=False``) and the publisher corks its steady-state
send loop — ``publish()`` appends to a bounded pending queue that a
flusher task drains in batches of one ``write`` + ``drain`` each, so a
hot publisher pays the event-loop round trip once per *batch* instead of
once per message.  ``cork=False`` restores the write-per-publish path.
"""

from __future__ import annotations

import asyncio
import logging
import time
from collections import deque
from typing import (Callable, Deque, Dict, Iterable, List, Optional,
                    Sequence, Set, Tuple)

from repro.core.buffers import RingBuffer
from repro.core.model import Message, TopicSpec
from repro.runtime.wire import (
    BINARY_CODEC,
    FrameReader,
    ProtocolError,
    decode_message,
    encode_frames,
    read_frame,
    write_frame,
)

logger = logging.getLogger(__name__)

Address = Tuple[str, int]


async def fetch_stats(address: Address, timeout: float = 2.0) -> Dict[str, object]:
    """Fetch a broker's observability counters over the wire."""
    host, port = address
    reader, writer = await asyncio.open_connection(host, port)
    try:
        await write_frame(writer, {"type": "stats"})
        frame = await asyncio.wait_for(read_frame(reader), timeout=timeout)
        if frame is None or frame.get("type") != "stats_reply":
            raise ConnectionError(f"bad stats reply from {address}: {frame!r}")
        frame.pop("type")
        return frame
    finally:
        writer.close()


class Publisher:
    """A publisher proxy for a set of topics."""

    #: Frames corked into one write by the flusher task.
    MAX_CORK = 128

    def __init__(self, specs: Sequence[TopicSpec], primary: Address,
                 backup: Address, publisher_id: str = "publisher",
                 poll_interval: float = 0.2, reply_timeout: float = 0.2,
                 miss_threshold: int = 3, binary: bool = True,
                 cork: bool = True, pending_limit: int = 256,
                 hello_timeout: float = 0.25):
        if not specs:
            raise ValueError("publisher needs at least one topic")
        if pending_limit < 1:
            raise ValueError("pending_limit must be >= 1")
        self.specs = list(specs)
        self.publisher_id = publisher_id
        self.addresses = [primary, backup]
        self.target_index = 0
        self.poll_interval = poll_interval
        self.reply_timeout = reply_timeout
        self.miss_threshold = miss_threshold
        self.binary = binary
        self.cork = cork
        self.pending_limit = pending_limit
        self.hello_timeout = hello_timeout
        self.failed_over = asyncio.Event()
        self._retention: Dict[int, RingBuffer] = {
            spec.topic_id: RingBuffer(spec.retention) for spec in self.specs
        }
        self._seq: Dict[int, int] = {spec.topic_id: 0 for spec in self.specs}
        self._writer: Optional[asyncio.StreamWriter] = None
        self._frames: Optional[FrameReader] = None
        self._binary_active = False
        self._watch_task: Optional[asyncio.Task] = None
        self._flush_task: Optional[asyncio.Task] = None
        self._periodic_tasks: List[asyncio.Task] = []
        self._lock = asyncio.Lock()
        self._pending: Deque[Dict[str, object]] = deque()
        self._pending_event = asyncio.Event()
        self._space_event = asyncio.Event()
        self._space_event.set()
        self._idle_event = asyncio.Event()
        self._idle_event.set()
        self.send_failures = 0
        self.reconnects = 0
        self.frames_sent = 0
        self.bytes_sent = 0

    @property
    def current_target(self) -> Address:
        return self.addresses[self.target_index]

    @property
    def binary_active(self) -> bool:
        """True while the current connection negotiated the binary codec."""
        return self._binary_active

    # ------------------------------------------------------------------
    async def start(self) -> None:
        await self._connect()
        self._watch_task = asyncio.create_task(self._watch())

    async def close(self) -> None:
        for task in ([self._watch_task, self._flush_task]
                     + self._periodic_tasks):
            if task is None:
                continue
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._periodic_tasks.clear()
        if self._writer is not None:
            self._writer.close()

    # ------------------------------------------------------------------
    def start_periodic(self, payload_factory: Optional[Callable[[int, int], object]] = None) -> None:
        """Publish each topic at its own period until :meth:`close`.

        ``payload_factory(topic_id, seq)`` produces the payload; the
        default sends ``None``.  This mirrors the simulator's sporadic
        publisher proxies (one message per topic per period).
        """
        if self._periodic_tasks:
            raise RuntimeError("periodic publishing already started")
        for spec in self.specs:
            self._periodic_tasks.append(
                asyncio.create_task(self._periodic_loop(spec, payload_factory)))

    async def _periodic_loop(self, spec: TopicSpec, payload_factory) -> None:
        while True:
            seq = self._seq[spec.topic_id] + 1
            payload = payload_factory(spec.topic_id, seq) if payload_factory else None
            try:
                await self.publish({spec.topic_id: payload})
            except (ConnectionResetError, OSError):
                pass  # retained; the fail-over path will re-send
            await asyncio.sleep(spec.period)

    async def _connect(self) -> None:
        host, port = self.current_target
        reader, self._writer = await asyncio.open_connection(host, port)
        self._frames = FrameReader(reader)
        self._binary_active = False
        hello = {"type": "hello", "role": "publisher",
                 "publisher": self.publisher_id}
        if self.binary:
            hello["codecs"] = [BINARY_CODEC]
        await write_frame(self._writer, hello)
        if self.binary:
            # A codec-capable broker acks immediately; an old broker
            # never will, so a short timeout keeps it JSON-only without
            # stalling (re)connects by more than ``hello_timeout``.
            try:
                frame = await asyncio.wait_for(self._frames.read_frame(),
                                               timeout=self.hello_timeout)
            except asyncio.TimeoutError:
                frame = None
            if frame is not None and frame.get("type") == "hello_ack" \
                    and frame.get("codec") == BINARY_CODEC:
                self._binary_active = True

    # ------------------------------------------------------------------
    async def publish(self, payloads: Dict[int, object]) -> List[Message]:
        """Create and send one message per topic in ``payloads``.

        Returns the created messages (sequence numbers assigned).
        Messages are retained regardless of send success, so a crash of
        the current target never loses more than the retention allows.

        With corking enabled the frame is queued for the flusher task
        and this returns as soon as there is room in the bounded pending
        queue (backpressure: a slower broker paces a hot publisher);
        :meth:`flush` awaits the queue hitting the socket.
        """
        for topic_id in payloads:
            if topic_id not in self._seq:
                raise KeyError(f"topic {topic_id} not registered on this publisher")
        created_at = time.time()
        batch: List[Message] = []
        for topic_id, payload in payloads.items():
            self._seq[topic_id] += 1
            message = Message(topic_id, self._seq[topic_id], created_at,
                              data=payload)
            self._retention[topic_id].append(message)
            batch.append(message)
        await self._send_batch(batch, resend=False)
        return batch

    async def flush(self) -> None:
        """Wait until every queued frame reached the socket (or failed)."""
        await self._idle_event.wait()

    async def _send_batch(self, batch: List[Message], resend: bool) -> None:
        frame = {
            "type": "publish",
            "publisher": self.publisher_id,
            "resend": resend,
            "messages": batch,   # Message objects; both codecs accept them
        }
        if not self.cork:
            await self._write_frames([frame])
            return
        while len(self._pending) >= self.pending_limit:
            self._space_event.clear()
            await self._space_event.wait()
        self._pending.append(frame)
        self._idle_event.clear()
        self._pending_event.set()
        if self._flush_task is None or self._flush_task.done():
            self._flush_task = asyncio.create_task(self._flush_loop())

    async def _flush_loop(self) -> None:
        """Drain the pending queue in corked batches, one drain each."""
        pending = self._pending
        while True:
            if not pending:
                self._idle_event.set()
                self._pending_event.clear()
                await self._pending_event.wait()
                continue
            batch = []
            while pending and len(batch) < self.MAX_CORK:
                batch.append(pending.popleft())
            self._space_event.set()
            try:
                await self._write_frames(batch)
            except ProtocolError:   # oversized frame; messages stay retained
                self.send_failures += len(batch)
            except Exception:
                # e.g. a JSON-unserializable payload raising TypeError in
                # the encoder.  The flusher must survive: dying here would
                # strand flush() waiters and silently drop every later
                # publish until a new task is spawned.
                self.send_failures += len(batch)
                logger.exception("%s: dropping unencodable batch of %d "
                                 "frame(s)", self.publisher_id, len(batch))
            if not pending:
                self._idle_event.set()

    async def _write_frames(self, frames: List[Dict[str, object]]) -> None:
        async with self._lock:
            # One transparent reconnect-and-retry: a broker restart (or an
            # idle-connection drop) should cost one frame's latency, not a
            # full fail-over.  A genuinely dead broker fails both attempts
            # and the frames stay retained for the fail-over path.
            for attempt in range(2):
                if self._writer is None:
                    try:
                        await self._connect()
                        self.reconnects += 1
                    except OSError:
                        break
                try:
                    # Encode under the current connection's codec (it can
                    # change across the reconnect), cork the whole batch
                    # into one write + drain.
                    blob = encode_frames(frames, binary=self._binary_active)
                    self._writer.write(blob)
                    await self._writer.drain()
                    self.frames_sent += len(frames)
                    self.bytes_sent += len(blob)
                    return
                except (ConnectionResetError, OSError):
                    self._writer.close()
                    self._writer = None
            self.send_failures += len(frames)
            logger.warning("%s: send failed; %d frame(s) retained",
                           self.publisher_id, len(frames))

    # ------------------------------------------------------------------
    async def _watch(self) -> None:
        misses = 0
        nonce = 0
        while True:
            await asyncio.sleep(self.poll_interval)
            nonce += 1
            try:
                async with self._lock:
                    if self._writer is None:
                        raise ConnectionResetError
                    await write_frame(self._writer, {"type": "ping", "nonce": nonce})
                    frame = await asyncio.wait_for(self._read_reply(),
                                                   timeout=self.reply_timeout)
                if frame is None or frame.get("type") != "pong":
                    raise ConnectionResetError("bad pong")
                misses = 0
                if frame.get("fenced") and self.target_index == 0:
                    # The Primary answered but admitted it was fenced
                    # (superseded by a promoted Backup): publishing into
                    # it is a black hole, so fail over immediately — the
                    # retained re-send recovers anything it swallowed.
                    await self._fail_over()
                    return
            except (OSError, asyncio.TimeoutError, ConnectionResetError,
                    ProtocolError):
                misses += 1
                if misses >= self.miss_threshold and self.target_index == 0:
                    await self._fail_over()
                    return

    async def _read_reply(self) -> Optional[Dict[str, object]]:
        """Next non-handshake frame (a late ``hello_ack`` upgrades us)."""
        while True:
            frame = await self._frames.read_frame()
            if frame is not None and frame.get("type") == "hello_ack":
                if frame.get("codec") == BINARY_CODEC and self.binary:
                    self._binary_active = True
                continue
            return frame

    async def _fail_over(self) -> None:
        """Redirect to the Backup and re-send every retained message."""
        logger.info("%s: failing over to backup", self.publisher_id)
        self.target_index = 1
        if self._writer is not None:
            self._writer.close()
        self._writer = None
        while self._writer is None:
            try:
                await self._connect()
            except OSError:
                await asyncio.sleep(0.05)
        retained: List[Message] = []
        for ring in self._retention.values():
            retained.extend(ring.snapshot())
        if retained:
            await self._send_batch(retained, resend=True)
            await self.flush()
        self.failed_over.set()


class Subscriber:
    """A subscriber connected to both brokers, with dedup by (topic, seq)."""

    def __init__(self, topics: Iterable[int], primary: Address, backup: Address,
                 on_message: Optional[Callable[[Message], None]] = None,
                 name: str = "subscriber", binary: bool = True):
        self.topics = list(topics)
        self.addresses = [primary, backup]
        self.on_message = on_message
        self.name = name
        self.binary = binary
        self.received: Dict[int, Dict[int, float]] = {t: {} for t in self.topics}
        self.duplicates = 0
        self.reconnects = 0
        #: Highest broker epoch seen on any ``deliver``; frames from a
        #: lower epoch come from a superseded (stale) Primary.
        self.max_epoch = 0
        self.stale_epoch_drops = 0
        self._tasks: List[asyncio.Task] = []
        self._writers: List[asyncio.StreamWriter] = []
        self._frame_readers: List[FrameReader] = []
        self._bytes_closed = 0

    @property
    def bytes_received(self) -> int:
        """Raw wire bytes consumed across all broker connections."""
        return self._bytes_closed + sum(fr.bytes_received
                                        for fr in self._frame_readers)

    async def start(self) -> None:
        for address in self.addresses:
            self._tasks.append(asyncio.create_task(self._listen(address)))

    async def close(self) -> None:
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        for writer in self._writers:
            writer.close()

    def delivered_seqs(self, topic_id: int) -> Set[int]:
        return set(self.received.get(topic_id, ()))

    async def _listen(self, address: Address) -> None:
        host, port = address
        connected_before = False
        hello = {"type": "hello", "role": "subscriber"}
        if self.binary:
            # Advertise that our reader accepts binary deliver frames;
            # the broker switches this connection's fan-out accordingly.
            hello["codecs"] = [BINARY_CODEC]
        while True:
            try:
                reader, writer = await asyncio.open_connection(host, port)
            except OSError:
                await asyncio.sleep(0.1)
                continue
            if connected_before:
                self.reconnects += 1
            connected_before = True
            self._writers.append(writer)
            frames = FrameReader(reader)
            self._frame_readers.append(frames)
            try:
                await write_frame(writer, hello)
                await write_frame(writer, {"type": "subscribe", "topics": self.topics})
                while True:
                    frame = await frames.read_frame()
                    if frame is None:
                        break
                    if frame["type"] == "deliver":
                        self._on_deliver(decode_message(frame["message"]),
                                         frame.get("epoch"))
            except (ConnectionResetError, OSError, ProtocolError):
                pass
            finally:
                writer.close()
                if writer in self._writers:
                    self._writers.remove(writer)
                if frames in self._frame_readers:
                    self._bytes_closed += frames.bytes_received
                    self._frame_readers.remove(frames)
            await asyncio.sleep(0.1)   # reconnect (e.g. broker restarted)

    def _on_deliver(self, message: Message,
                    epoch: Optional[int] = None) -> None:
        if epoch:
            epoch = int(epoch)
            if self.max_epoch and epoch < self.max_epoch:
                # A stale (fenced-or-about-to-be) Primary is still
                # flushing deliveries from before the takeover.  Dropping
                # them is safe: the publisher's retained re-send routes
                # the same messages through the current Primary.
                self.stale_epoch_drops += 1
                return
            if epoch > self.max_epoch:
                self.max_epoch = epoch
        records = self.received.setdefault(message.topic_id, {})
        if message.seq in records:
            self.duplicates += 1
            return
        records[message.seq] = time.time() - message.created_at
        if self.on_message is not None:
            self.on_message(message)
