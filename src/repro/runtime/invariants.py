"""FRAME runtime invariants, checked over a live deployment.

The chaos harness (:mod:`tools.chaos_runtime`) interleaves partitions,
crashes, restarts, and heals over a :class:`~repro.runtime.deployment
.LocalDeployment`; after every heal it asks :class:`InvariantChecker`
whether the system still satisfies what the paper promises (and what the
fencing layer adds):

1. **Zero loss of admitted messages** — every sequence number a
   publisher assigned is eventually delivered to every subscriber of
   that topic.  FRAME's argument (Proposition 1 + retention sizing)
   bounds the loss window by the publisher's retention buffer; the
   harness keeps per-fault publish bursts within retention, so "zero
   loss" is the exact expectation, not an approximation.
2. **At-most-once after dedup** — the per-subscriber ``received`` maps
   are keyed by ``(topic, seq)``, so a seq can only be recorded once;
   the check therefore verifies there are no *phantom* deliveries
   (sequence numbers beyond what the publisher ever assigned), which is
   what double-dispatch bugs produce once dedup hides plain repeats.
3. **Per-topic monotonic coverage** — the delivered seq set per topic is
   exactly ``{1..high}`` with no holes once the system settles (follows
   from 1 + 2, checked explicitly for a sharper failure message).
4. **At most one unfenced Primary** — after fencing, split-brain must
   resolve to exactly one broker in the ``primary`` role across the
   deployment's live brokers (the stale one must be ``fenced``).

All checks are *eventual* with a timeout: chaos leaves deliveries in
flight, so each predicate is polled until it holds or the deadline
expires, and only expiry is a violation.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.runtime.broker import PRIMARY, BrokerServer
from repro.runtime.client import Publisher, Subscriber
from repro.runtime.deployment import LocalDeployment


@dataclass
class Violation:
    """One failed invariant, with enough detail to debug the run."""

    invariant: str
    detail: str

    def as_dict(self) -> Dict[str, str]:
        return {"invariant": self.invariant, "detail": self.detail}


@dataclass
class InvariantReport:
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> Dict[str, object]:
        return {"ok": self.ok,
                "violations": [v.as_dict() for v in self.violations]}


class InvariantChecker:
    """Checks the FRAME invariants over a live deployment's clients."""

    def __init__(self, deployment: LocalDeployment,
                 publishers: Sequence[Publisher],
                 subscribers: Sequence[Subscriber],
                 timeout: float = 5.0, poll: float = 0.05):
        self.deployment = deployment
        self.publishers = list(publishers)
        self.subscribers = list(subscribers)
        self.timeout = timeout
        self.poll = poll

    # ------------------------------------------------------------------
    def _expected_high(self) -> Dict[int, int]:
        """Highest sequence number any publisher assigned, per topic."""
        high: Dict[int, int] = {}
        for publisher in self.publishers:
            for topic_id, seq in publisher._seq.items():
                high[topic_id] = max(high.get(topic_id, 0), seq)
        return high

    def _live_brokers(self) -> List[BrokerServer]:
        brokers = [self.deployment.primary, self.deployment.backup]
        brokers.extend(self.deployment._retired)
        return [b for b in brokers if b is not None and not b._closed]

    async def _eventually(self, predicate) -> bool:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.timeout
        while True:
            if predicate():
                return True
            if loop.time() >= deadline:
                return False
            await asyncio.sleep(self.poll)

    # ------------------------------------------------------------------
    async def check_zero_loss(self) -> List[Violation]:
        """Every admitted (published) seq reaches every subscriber."""
        high = self._expected_high()
        violations: List[Violation] = []
        for subscriber in self.subscribers:
            for topic_id in subscriber.topics:
                expected = set(range(1, high.get(topic_id, 0) + 1))
                if not expected:
                    continue
                ok = await self._eventually(
                    lambda s=subscriber, t=topic_id, e=expected:
                        e <= s.delivered_seqs(t))
                if not ok:
                    missing = sorted(
                        expected - subscriber.delivered_seqs(topic_id))
                    violations.append(Violation(
                        "zero_loss",
                        f"{subscriber.name} topic {topic_id}: "
                        f"missing seqs {missing[:16]}"
                        f"{'…' if len(missing) > 16 else ''} "
                        f"({len(missing)} of {len(expected)})"))
        return violations

    async def check_no_phantoms(self) -> List[Violation]:
        """No subscriber holds a seq beyond the publishers' high water."""
        high = self._expected_high()
        violations: List[Violation] = []
        for subscriber in self.subscribers:
            for topic_id in subscriber.topics:
                delivered = subscriber.delivered_seqs(topic_id)
                phantoms = sorted(s for s in delivered
                                  if s > high.get(topic_id, 0) or s < 1)
                if phantoms:
                    violations.append(Violation(
                        "at_most_once",
                        f"{subscriber.name} topic {topic_id}: phantom "
                        f"seqs {phantoms[:16]} beyond high water "
                        f"{high.get(topic_id, 0)}"))
        return violations

    async def check_monotonic_coverage(self) -> List[Violation]:
        """Delivered seqs per topic form a gapless prefix {1..high}."""
        high = self._expected_high()
        violations: List[Violation] = []
        for subscriber in self.subscribers:
            for topic_id in subscriber.topics:
                expected = set(range(1, high.get(topic_id, 0) + 1))
                ok = await self._eventually(
                    lambda s=subscriber, t=topic_id, e=expected:
                        s.delivered_seqs(t) == e)
                if not ok:
                    delivered = subscriber.delivered_seqs(topic_id)
                    violations.append(Violation(
                        "seq_coverage",
                        f"{subscriber.name} topic {topic_id}: delivered "
                        f"{len(delivered)} seqs, expected exactly "
                        f"1..{high.get(topic_id, 0)}"))
        return violations

    async def check_single_unfenced_primary(self) -> List[Violation]:
        """At most one live broker may hold the unfenced Primary role."""
        def primaries() -> List[str]:
            return [b.name for b in self._live_brokers()
                    if b.role == PRIMARY]

        ok = await self._eventually(lambda: len(primaries()) <= 1)
        if ok:
            return []
        names = primaries()
        return [Violation(
            "single_primary",
            f"{len(names)} unfenced primaries alive: {names}")]

    async def check_all(self) -> InvariantReport:
        report = InvariantReport()
        # Order matters for debuggability: fencing first (it explains
        # most downstream failures), then loss, then the sharper checks.
        report.violations.extend(await self.check_single_unfenced_primary())
        report.violations.extend(await self.check_zero_loss())
        report.violations.extend(await self.check_no_phantoms())
        report.violations.extend(await self.check_monotonic_coverage())
        return report
