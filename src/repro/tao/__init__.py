"""A TAO-real-time-event-service-style facade over the FRAME broker.

The paper implements FRAME *inside* the TAO real-time event service
(Sec. V, Fig. 5): the Supplier Proxies and Consumer Proxies keep their
original push-style interfaces, while the Subscription & Filtering, Event
Correlation, and Dispatching modules are replaced by FRAME's Message
Proxy and Message Delivery.  This package mirrors that integration so
code written against an event-channel API (suppliers pushing events,
consumers connecting push callbacks) runs on FRAME unchanged.
"""

from repro.tao.channel import (
    Event,
    EventChannel,
    ProxyPushConsumer,
    ProxyPushSupplier,
)

__all__ = [
    "Event",
    "EventChannel",
    "ProxyPushConsumer",
    "ProxyPushSupplier",
]
