"""The event-channel facade (paper Fig. 5).

Terminology follows TAO's event service:

* a **supplier** obtains a :class:`ProxyPushConsumer` from the channel and
  ``push``-es :class:`Event` objects into it;
* a **consumer** obtains a :class:`ProxyPushSupplier` and connects a push
  callback for the event types (topics) it subscribes to;
* the channel body — here the FRAME Primary/Backup broker pair — delivers
  events subject to each type's latency/loss-tolerance requirements.

Events are mapped onto FRAME messages one-to-one: the event ``type_id``
is the topic, and the channel assigns per-type sequence numbers in push
order (suppliers of the same type share one sequence, as a single
publisher proxy would).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.core.broker import BACKUP, PRIMARY, Broker
from repro.core.config import SystemConfig
from repro.core.model import Message, TopicSpec
from repro.core.protocol import Deliver, PublishBatch


class Event:
    """One event: a typed payload with its creation timestamp."""

    __slots__ = ("type_id", "source", "data", "created_at")

    def __init__(self, type_id: int, data=None, source: str = "",
                 created_at: Optional[float] = None):
        self.type_id = type_id
        self.source = source
        self.data = data
        self.created_at = created_at

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Event type={self.type_id} source={self.source!r}>"


class ProxyPushConsumer:
    """The channel-side endpoint a supplier pushes events into."""

    def __init__(self, channel: "EventChannel", supplier_host):
        self._channel = channel
        self._host = supplier_host
        self.connected = True

    def push(self, event: Event) -> None:
        """Push one event into the channel (TAO ``PushConsumer::push``)."""
        if not self.connected:
            raise RuntimeError("supplier proxy is disconnected")
        self._channel._ingest(event, self._host)

    def disconnect_push_consumer(self) -> None:
        self.connected = False


class ProxyPushSupplier:
    """The channel-side endpoint that pushes events to one consumer."""

    def __init__(self, channel: "EventChannel", consumer_host, index: int):
        self._channel = channel
        self._host = consumer_host
        self._index = index
        self._callback: Optional[Callable[[Event], None]] = None
        self.address = f"{channel.name}/consumer-{index}"
        self.subscribed_types: Tuple[int, ...] = ()

    def connect_push_consumer(self, callback: Callable[[Event], None],
                              type_ids) -> None:
        """Register the consumer's push callback for a set of event types."""
        if self._callback is not None:
            raise RuntimeError("consumer already connected")
        self._callback = callback
        self.subscribed_types = tuple(type_ids)
        self._channel._network.register(self._host, self.address, self._on_deliver)
        for type_id in self.subscribed_types:
            self._channel._subscribe(type_id, self.address)

    def disconnect_push_supplier(self) -> None:
        self._channel._network.unregister(self.address)
        self._callback = None

    def _on_deliver(self, deliver: Deliver) -> None:
        if self._callback is None:
            return
        message = deliver.message
        self._callback(Event(type_id=message.topic_id, data=message.data,
                             created_at=message.created_at))


class EventChannel:
    """A FRAME-backed event channel (one Primary + one Backup broker).

    The channel owns the requirement specifications: each event type must
    be declared in ``config.topics`` before suppliers may push it —
    pushing an undeclared type raises, because without a spec there is no
    deadline or loss-tolerance contract to honor.
    """

    def __init__(self, engine, network, primary_host, backup_host,
                 config: SystemConfig, name: str = "channel"):
        self.engine = engine
        self.name = name
        self._network = network
        self._config = config
        self._sequences: Dict[int, int] = {}
        self._consumer_count = 0
        # The brokers consult config.subscriptions live, so consumers may
        # connect after construction.
        config.subscriptions = dict(config.subscriptions)
        self.primary = Broker(engine, primary_host, network, config,
                              name=f"{name}-B1", role=PRIMARY,
                              peer_name=f"{name}-B2")
        self.backup = Broker(engine, backup_host, network, config,
                             name=f"{name}-B2", role=BACKUP, peer_name=None)
        self.primary.stats.set_window(0.0, float("inf"))
        self.backup.stats.set_window(0.0, float("inf"))

    # ------------------------------------------------------------------
    # Admin interfaces (TAO SupplierAdmin / ConsumerAdmin)
    # ------------------------------------------------------------------
    def obtain_push_consumer(self, supplier_host) -> ProxyPushConsumer:
        """For suppliers: the endpoint to push events into."""
        return ProxyPushConsumer(self, supplier_host)

    def obtain_push_supplier(self, consumer_host) -> ProxyPushSupplier:
        """For consumers: the endpoint to connect a push callback to."""
        proxy = ProxyPushSupplier(self, consumer_host, self._consumer_count)
        self._consumer_count += 1
        return proxy

    # ------------------------------------------------------------------
    def declared_types(self) -> Tuple[int, ...]:
        return tuple(sorted(self._config.topics))

    def spec_of(self, type_id: int) -> TopicSpec:
        return self._config.topics[type_id]

    # ------------------------------------------------------------------
    def _ingest(self, event: Event, supplier_host) -> None:
        if event.type_id not in self._config.topics:
            raise KeyError(
                f"event type {event.type_id} has no declared requirement spec"
            )
        seq = self._sequences.get(event.type_id, 0) + 1
        self._sequences[event.type_id] = seq
        created_at = (event.created_at if event.created_at is not None
                      else supplier_host.now())
        message = Message(event.type_id, seq, created_at, data=event.data)
        self._network.send(supplier_host, self.primary.ingress_address,
                           PublishBatch(event.source or "supplier", [message]))

    def _subscribe(self, type_id: int, address: str) -> None:
        existing = self._config.subscriptions.get(type_id, ())
        if address not in existing:
            self._config.subscriptions[type_id] = tuple(existing) + (address,)
