"""Network fault models: loss, duplication, and partitions.

The paper assumes reliable, bounded-latency interconnects (Sec. III-B),
which :class:`~repro.net.topology.Network` provides.  These wrappers let
experiments *violate* those assumptions deliberately — to show where the
guarantees' preconditions matter and how the end-to-end dedup/retention
machinery behaves under real network misbehavior.

* :class:`LossyLink` — drops each packet independently with probability
  ``loss_rate`` (delivery returns nothing; TCP users would see this as a
  retransmission delay, UDP users as a genuine loss).
* :class:`DuplicatingLink` — occasionally delivers a packet twice
  (exercises the subscriber/broker dedup paths).
* Partitions are supported directly on :class:`Network` via
  :meth:`~repro.net.topology.Network.partition` /
  :meth:`~repro.net.topology.Network.heal`.
"""

from __future__ import annotations

from repro.net.link import LatencyModel

#: Sentinel latency meaning "the packet vanished".
DROPPED = None


class LossyLink(LatencyModel):
    """Wraps a latency model with independent per-packet loss."""

    def __init__(self, base: LatencyModel, loss_rate: float):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.base = base
        self.loss_rate = loss_rate
        self.dropped = 0

    def sample(self, rng, now: float):
        if rng.random() < self.loss_rate:
            self.dropped += 1
            return DROPPED
        return self.base.sample(rng, now)


class DuplicatingLink(LatencyModel):
    """Wraps a latency model with independent per-packet duplication.

    A duplicated packet is delivered a second time after an extra
    ``duplicate_lag`` (modeling a spurious retransmission).
    """

    def __init__(self, base: LatencyModel, duplicate_rate: float,
                 duplicate_lag: float = 1e-3):
        if not 0.0 <= duplicate_rate <= 1.0:
            raise ValueError("duplicate_rate must be in [0, 1]")
        if duplicate_lag < 0:
            raise ValueError("duplicate_lag must be >= 0")
        self.base = base
        self.duplicate_rate = duplicate_rate
        self.duplicate_lag = duplicate_lag
        self.duplicated = 0

    def sample(self, rng, now: float):
        latency = self.base.sample(rng, now)
        if rng.random() < self.duplicate_rate:
            self.duplicated += 1
            return (latency, latency + self.duplicate_lag)
        return latency
