"""One-way link latency models.

A latency model answers "how long does a packet sent *now* take?"  Models
are sampled per message; FIFO ordering is enforced by the link itself (see
:mod:`repro.net.topology`), mirroring TCP's in-order delivery.
"""

from __future__ import annotations

import bisect
import math
from typing import List, Sequence, Tuple


class LatencyModel:
    """Interface: ``sample(rng, now) -> one-way latency in seconds``."""

    def sample(self, rng, now: float) -> float:
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """A fixed one-way latency (dedicated broker-to-broker interconnect)."""

    def __init__(self, latency: float):
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self.latency = latency

    def sample(self, rng, now: float) -> float:
        return self.latency


class UniformLatency(LatencyModel):
    """Uniform jitter in ``[low, high]`` (switched LAN segments)."""

    def __init__(self, low: float, high: float):
        if not 0 <= low <= high:
            raise ValueError(f"require 0 <= low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng, now: float) -> float:
        return rng.uniform(self.low, self.high)


class LognormalLatency(LatencyModel):
    """A floor plus lognormal jitter — heavy-tailed WAN behavior.

    ``floor`` is the propagation delay that no packet beats; ``median_extra``
    the median queueing excess; ``sigma`` the lognormal shape.
    """

    def __init__(self, floor: float, median_extra: float, sigma: float = 0.5):
        if floor < 0 or median_extra <= 0 or sigma <= 0:
            raise ValueError("floor >= 0, median_extra > 0, sigma > 0 required")
        self.floor = floor
        self.mu = math.log(median_extra)
        self.sigma = sigma

    def sample(self, rng, now: float) -> float:
        return self.floor + rng.lognormvariate(self.mu, self.sigma)


class TraceLatency(LatencyModel):
    """Replays a measured ``(time, latency)`` trace with step interpolation.

    Used to drive a link from recorded RTT data (e.g. a ping log against a
    real cloud region).  Before the first sample the first latency is used.
    """

    def __init__(self, trace: Sequence[Tuple[float, float]]):
        if not trace:
            raise ValueError("trace must be non-empty")
        pairs = sorted(trace)
        self._times: List[float] = [t for t, _ in pairs]
        self._latencies: List[float] = [l for _, l in pairs]
        if any(l < 0 for l in self._latencies):
            raise ValueError("trace latencies must be >= 0")
        # Cursor into the trace for the last query time.  Simulation time is
        # (almost) monotone, so the common case advances the cursor by zero
        # or one step — O(1) instead of an O(log n) bisect per message.
        self._cursor = 0
        self._last_now = -math.inf

    def sample(self, rng, now: float) -> float:
        times = self._times
        if now >= self._last_now:
            # Monotone fast path: walk forward while the next breakpoint
            # has been reached (usually zero or one iteration).
            cursor = self._cursor
            n = len(times) - 1
            while cursor < n and times[cursor + 1] <= now:
                cursor += 1
        else:
            # Rewind (a fresh engine reusing the model, or out-of-order
            # probing in tests): fall back to a full bisect.
            cursor = bisect.bisect_right(times, now) - 1
            if cursor < 0:
                cursor = 0
        self._cursor = cursor
        self._last_now = now
        return self._latencies[cursor]
