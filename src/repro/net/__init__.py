"""Network substrate: hosts wired by latency-modeled, FIFO, crash-aware links.

Models the paper's testbed network (Fig. 6): a Gigabit LAN connecting
publishers, brokers, and edge subscribers (sub-millisecond), a dedicated
broker-to-broker path, and a WAN path to the cloud subscriber
(tens of milliseconds, diurnally varying).
"""

from repro.net.cloud import CloudLatencyModel, LatencySpike
from repro.net.link import (
    ConstantLatency,
    LatencyModel,
    LognormalLatency,
    TraceLatency,
    UniformLatency,
)
from repro.net.topology import Network

__all__ = [
    "CloudLatencyModel",
    "ConstantLatency",
    "LatencyModel",
    "LatencySpike",
    "LognormalLatency",
    "Network",
    "TraceLatency",
    "UniformLatency",
]
