"""Cloud-path latency: diurnal variation, jitter, and spikes (for Fig. 8).

The paper measured the broker-to-EC2 one-way latency over 24 hours: a
floor slightly above 20 ms (their configured lower bound was 20.7 ms for a
one-hour calibration run), smooth diurnal variation, and an isolated
+104 ms spike around 8 am.  :class:`CloudLatencyModel` reproduces that
structure:

    latency(t) = floor
               + diurnal_amplitude * (1 + sin(2*pi*(t/day_length + phase))) / 2
               + lognormal jitter
               + any active spike's magnitude

The ``day_length`` parameter lets experiments compress 24 hours of latency
evolution into a shorter simulated span without changing the shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.net.link import LatencyModel


@dataclass(frozen=True)
class LatencySpike:
    """A transient latency excursion (congestion event) on the cloud path."""

    start: float       # seconds into the (possibly compressed) day
    duration: float
    magnitude: float   # added latency while active

    def active(self, t: float, day_length: float) -> bool:
        phase_time = t % day_length
        return self.start <= phase_time < self.start + self.duration


class CloudLatencyModel(LatencyModel):
    """Diurnal + jitter + spike model of the broker-to-cloud one-way path."""

    def __init__(
        self,
        floor: float = 20.3e-3,
        diurnal_amplitude: float = 3.0e-3,
        jitter_median: float = 0.5e-3,
        jitter_sigma: float = 0.6,
        day_length: float = 86400.0,
        phase: float = 0.0,
        spikes: Sequence[LatencySpike] = (),
    ):
        if floor < 0 or diurnal_amplitude < 0:
            raise ValueError("floor and diurnal_amplitude must be >= 0")
        if jitter_median <= 0 or jitter_sigma <= 0:
            raise ValueError("jitter parameters must be positive")
        if day_length <= 0:
            raise ValueError("day_length must be positive")
        self.floor = floor
        self.diurnal_amplitude = diurnal_amplitude
        self.jitter_mu = math.log(jitter_median)
        self.jitter_sigma = jitter_sigma
        self.day_length = day_length
        self.phase = phase
        self.spikes = tuple(spikes)

    def baseline(self, now: float) -> float:
        """The deterministic (jitter-free) component at time ``now``."""
        cycle = math.sin(2.0 * math.pi * (now / self.day_length + self.phase))
        value = self.floor + self.diurnal_amplitude * (1.0 + cycle) / 2.0
        for spike in self.spikes:
            if spike.active(now, self.day_length):
                value += spike.magnitude
        return value

    def sample(self, rng, now: float) -> float:
        return self.baseline(now) + rng.lognormvariate(self.jitter_mu, self.jitter_sigma)

    def minimum(self) -> float:
        """A lower bound no sample goes below (the safe ΔBS estimate)."""
        return self.floor
