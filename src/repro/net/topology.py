"""The network: addressed endpoints wired by FIFO, crash-aware links.

Semantics chosen to match a TCP mesh over the paper's testbed:

* **Addressing** — components register string addresses (e.g.
  ``"primary/ingress"``); sending targets an address, not a host.
* **FIFO per directed host pair** — samples from a latency model never
  reorder messages between the same two hosts (TCP in-order delivery).
* **Crash awareness** — a message from a dead host is never sent (its
  processes are dead anyway, this is a backstop); a message *to* a dead
  host is silently dropped at delivery time, like packets to a crashed OS.
  A message already "on the wire" when the *sender* dies is still
  delivered (it left the NIC).
* **Addresses can move** — during fail-over the publishers re-resolve the
  broker ingress to the Backup; re-registration of an address on another
  host models a well-known service name.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Dict, Optional, Tuple

from repro.net.link import ConstantLatency, LatencyModel, UniformLatency
from repro.sim.host import Host


class _Link:
    __slots__ = ("_model", "rng", "last_delivery", "bandwidth", "blocked",
                 "const", "uniform")

    def __init__(self, model: LatencyModel, rng, bandwidth: Optional[float] = None):
        self.model = model
        self.rng = rng
        self.last_delivery = -1.0
        self.bandwidth = bandwidth       # bytes/second; None = infinite
        self.blocked = False             # True while partitioned

    @property
    def model(self) -> LatencyModel:
        return self._model

    @model.setter
    def model(self, model: LatencyModel) -> None:
        # The two dominant models get inlined fast paths in Network.send.
        # Constant links skip the sample() call entirely (no randomness
        # consumed, so bypassing cannot shift RNG streams); uniform links
        # inline ``rng.uniform``'s exact ``low + span * random()`` formula,
        # consuming the same single ``random()`` draw — bit-for-bit the
        # same latency.  Kept in sync here because tests/fault tooling swap
        # models at runtime (e.g. wrapping a link in a duplicating fault).
        self._model = model
        kind = type(model)
        self.const = model.latency if kind is ConstantLatency else None
        self.uniform = ((model.low, model.high - model.low)
                        if kind is UniformLatency else None)


class Network:
    """All hosts and links of one simulated deployment."""

    #: Minimal spacing that keeps per-link FIFO order without bunching.
    FIFO_EPSILON = 1e-9

    def __init__(self, engine):
        self.engine = engine
        self._links: Dict[Tuple[str, str], _Link] = {}
        self._endpoints: Dict[str, Tuple[Host, Callable[[Any], None]]] = {}
        # (src host name, address) -> link, so the hot send path does one
        # dict probe instead of two.  Any (re-)registration may move an
        # address to another host, so it drops the whole cache; liveness
        # and partitions are read from the host/link objects per send.
        self._route_cache: Dict[Tuple[str, str], _Link] = {}
        self.sent_count = 0
        self.dropped_count = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def connect(self, a: Host, b: Host, latency, bidirectional: bool = True,
                bandwidth: Optional[float] = None) -> None:
        """Create a link between two hosts.

        ``latency`` may be a :class:`LatencyModel` or a plain float
        (constant one-way latency).  ``bandwidth`` (bytes/second) adds a
        serialization delay of ``size / bandwidth`` per message; ``None``
        models an infinitely fast pipe (fine for the paper's 16-byte
        payloads on Gigabit links).  Each direction gets its own RNG
        stream so traffic in one direction never perturbs the other.
        """
        if isinstance(latency, (int, float)):
            latency = ConstantLatency(float(latency))
        self._add_directed(a, b, latency, bandwidth)
        if bidirectional:
            self._add_directed(b, a, latency, bandwidth)

    def _add_directed(self, src: Host, dst: Host, model: LatencyModel,
                      bandwidth: Optional[float] = None) -> None:
        key = (src.name, dst.name)
        if key in self._links:
            raise ValueError(f"link {src.name} -> {dst.name} already exists")
        rng = self.engine.rng(f"link/{src.name}->{dst.name}")
        self._links[key] = _Link(model, rng, bandwidth)

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def partition(self, a: Host, b: Host) -> None:
        """Block traffic between two hosts (both directions)."""
        self._set_blocked(a, b, True)

    def heal(self, a: Host, b: Host) -> None:
        """Restore traffic between two previously partitioned hosts."""
        self._set_blocked(a, b, False)

    def _set_blocked(self, a: Host, b: Host, blocked: bool) -> None:
        found = False
        for key in ((a.name, b.name), (b.name, a.name)):
            link = self._links.get(key)
            if link is not None:
                link.blocked = blocked
                found = True
        if not found:
            raise ValueError(f"no link between {a.name} and {b.name}")

    def register(self, host: Host, address: str,
                 callback: Callable[[Any], None]) -> None:
        """Bind ``address`` to a handler on ``host``.

        Re-binding an existing address is allowed only if its current host
        is dead (fail-over taking over a service name) or it is the same
        host updating its handler.
        """
        current = self._endpoints.get(address)
        if current is not None and current[0].alive and current[0] is not host:
            raise ValueError(
                f"address {address!r} is already registered on live host "
                f"{current[0].name}"
            )
        self._endpoints[address] = (host, callback)
        self._route_cache.clear()

    def unregister(self, address: str) -> None:
        self._endpoints.pop(address, None)
        self._route_cache.clear()

    def endpoint_host(self, address: str) -> Optional[Host]:
        entry = self._endpoints.get(address)
        return entry[0] if entry else None

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: Host, address: str, message: Any, size: int = 0) -> bool:
        """Send ``message`` from ``src`` to the component at ``address``.

        Returns ``True`` if the message was put on the wire.  Unknown
        addresses, partitioned links, and sends from dead hosts return
        ``False``; delivery to a host that dies in flight is dropped
        silently (counted in :attr:`dropped_count`).  ``size`` (bytes)
        matters only on bandwidth-limited links.

        Fault-model hooks: a latency model may return ``None`` (packet
        lost, see :class:`repro.net.faults.LossyLink`) or a tuple of
        latencies (duplicate deliveries).
        """
        if not src.alive:
            return False
        link = self._route_cache.get((src.name, address))
        if link is None:
            entry = self._endpoints.get(address)
            if entry is None:
                self.dropped_count += 1
                return False
            link = self._links.get((src.name, entry[0].name))
            if link is None:
                raise ValueError(f"no link {src.name} -> {entry[0].name}")
            self._route_cache[(src.name, address)] = link
        if link.blocked:
            self.dropped_count += 1
            return False
        engine = self.engine
        now = engine.now
        sample = link.const
        if sample is None:
            uniform = link.uniform
            if uniform is not None:
                sample = uniform[0] + uniform[1] * link.rng.random()
            else:
                sample = link.model.sample(link.rng, now)
                if sample is None:
                    self.dropped_count += 1
                    return False
        self.sent_count += 1
        # Delivery events are never cancelled, and deliver_at >= now by
        # construction (latency >= 0), so the engine's unchecked no-handle
        # scheduling applies — inlined here (same entry layout and seq
        # consumption as Engine._at), one allocation and one call frame
        # less per send.
        if sample.__class__ is not tuple:
            # Fast path: one latency sample, the overwhelmingly common case.
            deliver_at = now + sample
            if link.bandwidth:
                deliver_at += size / link.bandwidth
            if deliver_at <= link.last_delivery:
                deliver_at = link.last_delivery + self.FIFO_EPSILON
            link.last_delivery = deliver_at
            engine._seq = seq = engine._seq + 1
            heappush(engine._heap,
                     (deliver_at, seq, None, self._deliver, (address, message)))
            return True
        serialization = size / link.bandwidth if link.bandwidth else 0.0
        for latency in sample:
            deliver_at = now + latency + serialization
            if deliver_at <= link.last_delivery:
                deliver_at = link.last_delivery + self.FIFO_EPSILON
            link.last_delivery = deliver_at
            engine._seq = seq = engine._seq + 1
            heappush(engine._heap,
                     (deliver_at, seq, None, self._deliver, (address, message)))
        return True

    def _deliver(self, address: str, message: Any) -> None:
        entry = self._endpoints.get(address)
        if entry is None:
            self.dropped_count += 1
            return
        host, callback = entry
        if not host.alive:
            self.dropped_count += 1
            return
        callback(message)
