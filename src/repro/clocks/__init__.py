"""Clock substrate: per-host drifting clocks plus sync protocols.

The paper's testbed synchronizes the edge hosts with PTPd (error within
0.05 ms) and the cloud subscriber with chrony/NTP (millisecond error).
End-to-end latency is measured across hosts with these imperfect clocks,
so the measurement error must exist in the reproduction too — this package
provides it.
"""

from repro.clocks.clock import Clock, attach_clock
from repro.clocks.sync import NTP_CLOUD, PTP_EDGE, ClockSyncService, SyncProfile

__all__ = [
    "Clock",
    "ClockSyncService",
    "NTP_CLOUD",
    "PTP_EDGE",
    "SyncProfile",
    "attach_clock",
]
