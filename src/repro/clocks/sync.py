"""Clock synchronization services (PTP-like and NTP-like).

A :class:`ClockSyncService` periodically step-corrects follower clocks
toward the master clock, leaving a residual error sampled uniformly within
the profile's error bound.  Two stock profiles match the paper's setup
(Sec. VI-A):

* :data:`PTP_EDGE` — 1 s sync interval, ±0.05 ms residual (PTPd on the LAN),
* :data:`NTP_CLOUD` — 16 s sync interval, ±2 ms residual (chrony to EC2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.units import ms
from repro.sim.process import Timeout


@dataclass(frozen=True)
class SyncProfile:
    """Error/interval characteristics of one sync protocol deployment."""

    name: str
    interval: float        # seconds between corrections
    error_bound: float     # |residual error| after a correction

    def __post_init__(self):
        if self.interval <= 0:
            raise ValueError("sync interval must be positive")
        if self.error_bound < 0:
            raise ValueError("error bound must be >= 0")


PTP_EDGE = SyncProfile(name="ptp-edge", interval=1.0, error_bound=ms(0.05))
NTP_CLOUD = SyncProfile(name="ntp-cloud", interval=16.0, error_bound=ms(2.0))


class ClockSyncService:
    """Periodically synchronizes follower hosts' clocks to a master host.

    The master's own clock is the reference (the paper synchronizes every
    host to the Primary broker's clock), so followers converge to the
    master's time *including* the master's own drift — exactly what PTP
    does with a free-running grandmaster.
    """

    def __init__(self, engine, master_host, followers: Sequence, profile: SyncProfile,
                 rng_stream: str = "clock-sync"):
        self.engine = engine
        self.master_host = master_host
        self.followers = list(followers)
        self.profile = profile
        self._rng = engine.rng(rng_stream)
        for follower in self.followers:
            if follower.clock is None:
                raise ValueError(f"host {follower.name} has no clock attached")
        self.process = engine.spawn(self._run(), name=f"sync/{profile.name}")

    def _correct_once(self) -> None:
        master_error = (
            self.master_host.clock.error() if self.master_host.clock is not None else 0.0
        )
        for follower in self.followers:
            if not follower.alive:
                continue
            residual = self._rng.uniform(-self.profile.error_bound,
                                         self.profile.error_bound)
            follower.clock.step_to_error(master_error + residual)

    def _run(self):
        # An immediate first correction models daemons that are already
        # converged when the experiment's warm-up ends.
        self._correct_once()
        while True:
            yield Timeout(self.profile.interval)
            if not self.master_host.alive:
                return  # the reference is gone; clocks free-run from here
            self._correct_once()
