"""A per-host clock with offset and frequency drift.

Local time is modeled as::

    local(t) = t + offset + drift_ppm * 1e-6 * (t - reference)

where ``t`` is true (engine) time and ``reference`` is the instant of the
last correction.  Sync protocols periodically *step* the clock: they reset
``offset`` to a small residual error and move ``reference`` forward, so
drift only accumulates between corrections — the standard behavior of a
stepping PTP/NTP daemon.
"""

from __future__ import annotations


class Clock:
    """One host's local clock."""

    __slots__ = ("engine", "offset", "drift_ppm", "reference")

    def __init__(self, engine, offset: float = 0.0, drift_ppm: float = 0.0):
        self.engine = engine
        self.offset = offset
        self.drift_ppm = drift_ppm
        self.reference = engine.now

    def now(self) -> float:
        """The local clock reading at the current true time."""
        t = self.engine.now
        return t + self.offset + self.drift_ppm * 1e-6 * (t - self.reference)

    def error(self) -> float:
        """Current deviation from true time (positive = clock is ahead)."""
        return self.now() - self.engine.now

    def step_to_error(self, residual_error: float) -> None:
        """Step-correct the clock so its error becomes ``residual_error``.

        Called by sync protocols; the residual models the protocol's
        synchronization error bound.
        """
        t = self.engine.now
        self.offset = residual_error
        self.reference = t


def attach_clock(host, offset: float = 0.0, drift_ppm: float = 0.0) -> Clock:
    """Create a clock for ``host`` and attach it (see ``Host.now``)."""
    clock = Clock(host.engine, offset=offset, drift_ppm=drift_ppm)
    host.clock = clock
    return clock
