"""Subscribers: receive pushes, deduplicate, and account latency.

Duplicates arise during fail-over (a message can reach a subscriber both
from the old Primary and via recovery/resend through the new one); the
paper discards them by sequence number and so do we, before any metric is
computed.

End-to-end latency is measured as ``local receive time - message creation
stamp`` across two different host clocks, exactly like the testbed; clock
synchronization error is therefore part of the measurement, not hidden.

Hot-path design: the per-delivery record is two flat appends (sequence
list + ``array('d')`` of latencies) plus one dedup set membership — no
per-sequence dict writes.  The mapping view :attr:`SubscriberStats.
latency_by_seq` that the metrics layer joins against is materialized
lazily, once, when the measurement window closes (first read), and is
invalidated if a delivery ever lands after a read.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, NamedTuple, Optional, Set

from repro.core.protocol import Deliver


class TracedDelivery(NamedTuple):
    """One delivery of a traced topic (for the Fig. 8/9 time series)."""

    seq: int
    received_true_time: float
    latency: float          # end-to-end, by host clocks
    delta_bs: float         # broker dispatch -> subscriber receive
    recovered: bool


class _TopicLog:
    """Flat per-topic delivery log: parallel seq/latency appends."""

    __slots__ = ("seen", "seqs", "latencies")

    def __init__(self):
        self.seen: Set[int] = set()
        self.seqs: List[int] = []
        self.latencies = array("d")


class SubscriberStats:
    """Per-topic delivery records of one subscriber.

    Recording appends to flat per-topic logs; :attr:`latency_by_seq`
    (``{topic_id: {seq: latency}}``) is the reduced mapping view, built on
    first access and cached.  External code may freely mutate the view
    (the fan-out aggregator and tests install per-topic dicts directly);
    such writes live in the cached view and are honored by
    :meth:`delivered_seqs` and :meth:`merge`.
    """

    def __init__(self, traced_topics: Iterable[int] = ()):
        self._logs: Dict[int, _TopicLog] = {}
        self._by_seq: Optional[Dict[int, Dict[int, float]]] = None
        self.duplicates = 0
        self.traced_topics: Set[int] = set(traced_topics)
        self.traces: Dict[int, List[TracedDelivery]] = {
            topic: [] for topic in self.traced_topics
        }

    @property
    def latency_by_seq(self) -> Dict[int, Dict[int, float]]:
        """``{topic_id: {seq: latency}}``, reduced from the flat logs."""
        by_seq = self._by_seq
        if by_seq is None:
            by_seq = self._by_seq = {
                topic_id: dict(zip(log.seqs, log.latencies))
                for topic_id, log in self._logs.items()
            }
        return by_seq

    def delivered_seqs(self, topic_id: int) -> Set[int]:
        log = self._logs.get(topic_id)
        if log is not None:
            return set(log.seen)
        if self._by_seq is not None:
            return set(self._by_seq.get(topic_id, ()))
        return set()

    def merge(self, other: "SubscriberStats") -> None:
        mine = self.latency_by_seq
        for topic_id, records in other.latency_by_seq.items():
            if topic_id in mine:
                raise ValueError(f"topic {topic_id} recorded by two subscribers")
            mine[topic_id] = records
            # Mirror into a flat log so the merged records survive a later
            # view invalidation and feed delivered_seqs() directly.
            log = self._logs[topic_id] = _TopicLog()
            log.seen.update(records)
            log.seqs.extend(records)
            log.latencies.extend(records.values())
        self.duplicates += other.duplicates
        self.traced_topics |= other.traced_topics
        for topic_id, trace in other.traces.items():
            self.traces.setdefault(topic_id, []).extend(trace)


class Subscriber:
    """One subscriber host endpoint for a set of topics."""

    def __init__(self, engine, host, network, name: str,
                 stats: Optional[SubscriberStats] = None,
                 traced_topics: Iterable[int] = ()):
        self.engine = engine
        self.host = host
        self.network = network
        self.name = name
        self.address = f"{name}/sub"
        self.stats = stats if stats is not None else SubscriberStats(traced_topics)
        self._logs = self.stats._logs
        self._now = host.now
        network.register(host, self.address, self._on_deliver)

    def _on_deliver(self, deliver: Deliver) -> None:
        message = deliver.message
        topic_id = message.topic_id
        stats = self.stats
        log = self._logs.get(topic_id)
        if log is None:
            log = self._logs[topic_id] = _TopicLog()
        seq = message.seq
        seen = log.seen
        if seq in seen:
            stats.duplicates += 1
            return
        seen.add(seq)
        received_at = self._now()
        latency = received_at - message.created_at
        log.seqs.append(seq)
        log.latencies.append(latency)
        if stats._by_seq is not None:
            stats._by_seq = None
        if topic_id in stats.traced_topics:
            stats.traces[topic_id].append(
                TracedDelivery(
                    seq=seq,
                    received_true_time=self.engine.now,
                    latency=latency,
                    delta_bs=received_at - deliver.dispatched_at,
                    recovered=deliver.recovered,
                )
            )
