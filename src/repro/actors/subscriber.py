"""Subscribers: receive pushes, deduplicate, and account latency.

Duplicates arise during fail-over (a message can reach a subscriber both
from the old Primary and via recovery/resend through the new one); the
paper discards them by sequence number and so do we, before any metric is
computed.

End-to-end latency is measured as ``local receive time - message creation
stamp`` across two different host clocks, exactly like the testbed; clock
synchronization error is therefore part of the measurement, not hidden.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Optional, Set

from repro.core.protocol import Deliver


class TracedDelivery(NamedTuple):
    """One delivery of a traced topic (for the Fig. 8/9 time series)."""

    seq: int
    received_true_time: float
    latency: float          # end-to-end, by host clocks
    delta_bs: float         # broker dispatch -> subscriber receive
    recovered: bool


class SubscriberStats:
    """Per-topic delivery records of one subscriber."""

    def __init__(self, traced_topics: Iterable[int] = ()):
        self.latency_by_seq: Dict[int, Dict[int, float]] = {}
        self.duplicates = 0
        self.traced_topics: Set[int] = set(traced_topics)
        self.traces: Dict[int, List[TracedDelivery]] = {
            topic: [] for topic in self.traced_topics
        }

    def delivered_seqs(self, topic_id: int) -> Set[int]:
        return set(self.latency_by_seq.get(topic_id, ()))

    def merge(self, other: "SubscriberStats") -> None:
        for topic_id, records in other.latency_by_seq.items():
            if topic_id in self.latency_by_seq:
                raise ValueError(f"topic {topic_id} recorded by two subscribers")
            self.latency_by_seq[topic_id] = records
        self.duplicates += other.duplicates
        self.traced_topics |= other.traced_topics
        for topic_id, trace in other.traces.items():
            self.traces.setdefault(topic_id, []).extend(trace)


class Subscriber:
    """One subscriber host endpoint for a set of topics."""

    def __init__(self, engine, host, network, name: str,
                 stats: Optional[SubscriberStats] = None,
                 traced_topics: Iterable[int] = ()):
        self.engine = engine
        self.host = host
        self.network = network
        self.name = name
        self.address = f"{name}/sub"
        self.stats = stats if stats is not None else SubscriberStats(traced_topics)
        network.register(host, self.address, self._on_deliver)

    def _on_deliver(self, deliver: Deliver) -> None:
        message = deliver.message
        records = self.stats.latency_by_seq.setdefault(message.topic_id, {})
        if message.seq in records:
            self.stats.duplicates += 1
            return
        received_at = self.host.now()
        latency = received_at - message.created_at
        records[message.seq] = latency
        if message.topic_id in self.stats.traced_topics:
            self.stats.traces[message.topic_id].append(
                TracedDelivery(
                    seq=message.seq,
                    received_true_time=self.engine.now,
                    latency=latency,
                    delta_bs=received_at - deliver.dispatched_at,
                    recovered=deliver.recovered,
                )
            )
