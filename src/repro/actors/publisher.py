"""Publisher proxies (paper Sec. III-B, VI).

A proxy aggregates a set of topics of equal period and, once per period,
creates one message per topic and sends the batch to the *current* Primary
(paper: "Each proxy sent messages in a batch, one message per topic").

Fault tolerance on the publisher side:

* a **Retention Buffer** per topic keeps the ``Ni`` latest messages,
* a :class:`~repro.actors.detector.FailureDetector` watches the Primary;
  on suspicion the proxy redirects its traffic to the Backup and re-sends
  every retained message (the fail-over path of Fig. 4).  The detector's
  worst-case detection time plus one link delay must stay within the
  configured fail-over bound ``x`` — the proxy asserts this at set-up.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.actors.detector import FailureDetector
from repro.core.buffers import RingBuffer
from repro.core.model import Message, TopicSpec
from repro.core.protocol import PublishBatch
from repro.sim.process import Timeout
from repro.sim.trace import trace


class PublisherStats:
    """Authoritative creation log: per topic, the true creation times.

    ``created[topic_id][seq - 1]`` is the engine (true) time at which the
    message with that sequence number was created; the metrics layer joins
    this against subscriber records to find losses.
    """

    def __init__(self):
        self.created: Dict[int, List[float]] = {}
        self.batches_sent = 0
        self.resends = 0
        self.failover_at: Optional[float] = None

    def log_creation(self, topic_id: int, true_time: float) -> int:
        """Record a creation; returns the assigned sequence number (1-based)."""
        log = self.created.setdefault(topic_id, [])
        log.append(true_time)
        return len(log)

    def merge(self, other: "PublisherStats") -> None:
        for topic_id, log in other.created.items():
            if topic_id in self.created:
                raise ValueError(f"topic {topic_id} logged by two publishers")
            self.created[topic_id] = log
        self.batches_sent += other.batches_sent
        self.resends += other.resends


class PublisherProxy:
    """One publisher host process aggregating equal-period topics."""

    def __init__(self, engine, host, network, publisher_id: str,
                 specs: Sequence[TopicSpec], primary_ingress: str,
                 backup_ingress: str, failover_bound: float,
                 detector_poll: float, detector_timeout: float,
                 detector_misses: int = 2, start_offset: float = 0.0,
                 jitter_fraction: float = 0.01,
                 arrival_model=None,
                 stats: Optional[PublisherStats] = None,
                 payload_size: int = 16):
        specs = list(specs)
        if not specs:
            raise ValueError("a proxy needs at least one topic")
        periods = {spec.period for spec in specs}
        if len(periods) > 1:
            raise ValueError(
                f"proxy {publisher_id}: topics must share one period, got {periods}"
            )
        self.engine = engine
        self.host = host
        self.network = network
        self.publisher_id = publisher_id
        self.specs = specs
        self.period = specs[0].period
        self.payload_size = payload_size
        self.jitter_fraction = jitter_fraction
        if arrival_model is None:
            from repro.workloads.arrivals import PeriodicJitter

            arrival_model = PeriodicJitter(jitter_fraction)
        self.arrival_model = arrival_model
        self.start_offset = start_offset
        self.stats = stats if stats is not None else PublisherStats()
        self._targets = [primary_ingress, backup_ingress]
        self._target_index = 0
        self._retention = {spec.topic_id: RingBuffer(spec.retention) for spec in specs}
        # Per-spec hot-path plan: (topic_id, retention ring, creation log).
        # The creation log list is shared with ``stats.created`` so appends
        # land directly in the authoritative log without a per-message
        # ``setdefault``; ``len(log)`` is the next 1-based sequence number.
        self._batch_plan = [
            (spec.topic_id, self._retention[spec.topic_id],
             self.stats.created.setdefault(spec.topic_id, []))
            for spec in specs
        ]
        self._rng = engine.rng(f"publisher/{publisher_id}")

        detector = FailureDetector(
            engine, host, network, name=f"{publisher_id}",
            target_ctl_address=self._ctl_of(primary_ingress),
            on_failure=self._fail_over,
            poll_interval=detector_poll, reply_timeout=detector_timeout,
            miss_threshold=detector_misses,
        )
        # Lemma 1 relies on the fail-over time bound x: refuse configurations
        # whose detector cannot honor it (1 ms margin for link + send time).
        if detector.worst_case_detection() + 1e-3 > failover_bound:
            raise ValueError(
                f"proxy {publisher_id}: detector worst case "
                f"{detector.worst_case_detection():.4f}s exceeds failover bound "
                f"{failover_bound:.4f}s"
            )
        self.detector = detector
        self.process = engine.spawn(self._run(), name=f"pub/{publisher_id}", host=host)

    @staticmethod
    def _ctl_of(ingress_address: str) -> str:
        broker_name, _, _ = ingress_address.rpartition("/")
        return f"{broker_name}/ctl"

    @property
    def current_target(self) -> str:
        return self._targets[self._target_index]

    # ------------------------------------------------------------------
    def _create_batch(self) -> List[Message]:
        batch = []
        append = batch.append
        created_at = self.host.now()
        true_time = self.engine.now
        payload_size = self.payload_size
        for topic_id, retention, log in self._batch_plan:
            log.append(true_time)
            message = Message(topic_id, len(log), created_at,
                              payload_size=payload_size)
            retention.append(message)
            append(message)
        return batch

    def _run(self):
        if self.start_offset > 0:
            yield Timeout(self.start_offset)
        while True:
            batch = self._create_batch()
            self.network.send(self.host, self.current_target,
                              PublishBatch(self.publisher_id, batch))
            self.stats.batches_sent += 1
            # Sporadic traffic: inter-creation time is at least the period
            # (Sec. III-A); the arrival model decides the idle excess.
            yield Timeout(self.arrival_model.next_gap(self._rng, self.period))

    # ------------------------------------------------------------------
    def _fail_over(self) -> None:
        """Redirect to the Backup and re-send all retained messages."""
        self._target_index = 1
        self.stats.failover_at = self.engine.now
        trace(self.engine, "failover", self.publisher_id)
        retained: List[Message] = []
        for spec in self.specs:
            retained.extend(self._retention[spec.topic_id].snapshot())
        if retained:
            self.network.send(self.host, self.current_target,
                              PublishBatch(self.publisher_id, retained, resend=True))
            self.stats.resends += len(retained)
