"""Ping/pong failure detection (paper Sec. IV-A: "periodic polling").

The detector sends a :class:`~repro.core.protocol.Ping` to the target's
control address every ``poll_interval`` and waits ``reply_timeout`` for the
matching :class:`~repro.core.protocol.Pong`.  After ``miss_threshold``
consecutive timeouts it declares the target dead and invokes the supplied
callback exactly once.

Worst-case detection latency (from the crash instant) is::

    poll_interval + miss_threshold * max(poll_interval, reply_timeout)

so the caller picks parameters that keep publisher fail-over within the
configured ``x`` bound (Lemma 1 depends on it).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.protocol import Ping, Pong
from repro.sim.process import Timeout


class _PollRound:
    """One in-flight poll: "pong-or-timeout", open-coded.

    Semantically this is ``AnyOf(engine, [pong_signal, Timeout(reply)])``
    resolving to ``(0, pong)`` or ``(1, None)``, but the general composite
    costs ~8 allocations per round (AnyOf, Signal, callback lists, winner
    closures) and the detector runs thousands of rounds per simulated
    second.  This reusable slotted object replaces all of it while
    consuming engine seq numbers in the exact same program order, so the
    simulation trace is bit-for-bit unchanged:

    * subscribe: one seq for the reply timer (``_after``), like AnyOf's
      Timeout member;
    * pong wins: cancel the timer (no seq), then one seq to resume the
      waiter through the ready queue (``_soon``);
    * timer wins: the fired timer consumes no extra seq, then one seq for
      the ready-queue resume;
    * a pong arriving between timer expiry and resume is absorbed by the
      ``resolved`` guard, exactly as AnyOf's winner guard did.
    """

    __slots__ = ("delay", "proc", "epoch", "timer", "resolved")

    def __init__(self, delay: float):
        self.delay = delay
        self.proc = None
        self.epoch = 0
        self.timer = None
        self.resolved = True

    def _subscribe(self, proc) -> None:
        self.proc = proc
        self.epoch = proc._epoch
        self.resolved = False
        self.timer = proc.engine._after(self.delay, self._on_timer)

    def _fire(self, pong: Pong) -> None:
        if self.resolved:
            return
        self.resolved = True
        timer = self.timer
        if not timer.cancelled:
            timer.cancel()
        proc = self.proc
        proc.engine._soon(proc._resume, self.epoch, (0, pong))

    def _on_timer(self) -> None:
        if self.resolved:
            return
        self.resolved = True
        proc = self.proc
        proc.engine._soon(proc._resume, self.epoch, (1, None))


class FailureDetector:
    """Polls one target and fires a callback on suspected failure."""

    def __init__(self, engine, host, network, name: str, target_ctl_address: str,
                 on_failure: Callable[[], None], poll_interval: float,
                 reply_timeout: float, miss_threshold: int = 2):
        if reply_timeout <= 0 or poll_interval <= 0:
            raise ValueError("poll_interval and reply_timeout must be positive")
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        self.engine = engine
        self.host = host
        self.network = network
        self.name = name
        self.target_ctl_address = target_ctl_address
        self.on_failure = on_failure
        self.poll_interval = poll_interval
        self.reply_timeout = reply_timeout
        self.miss_threshold = miss_threshold

        self.address = f"{name}/detector"
        self.suspected_at: Optional[float] = None
        self._nonce = 0
        self._pending: Optional[_PollRound] = None
        network.register(host, self.address, self._on_pong)
        self.process = engine.spawn(self._run(), name=name, host=host)

    def worst_case_detection(self) -> float:
        """Upper bound on crash-to-callback latency (excluding link delay)."""
        return self.poll_interval + self.miss_threshold * max(
            self.poll_interval, self.reply_timeout
        )

    # ------------------------------------------------------------------
    def _on_pong(self, pong: Pong) -> None:
        if self._pending is not None and pong.nonce == self._nonce:
            pending, self._pending = self._pending, None
            pending._fire(pong)

    def _run(self):
        misses = 0
        # One round object serves every poll: subscription resets its
        # per-round state, and at most one round is in flight at a time.
        poll = _PollRound(self.reply_timeout)
        while True:
            self._nonce += 1
            self._pending = poll
            sent_at = self.engine.now
            self.network.send(self.host, self.target_ctl_address,
                              Ping(self.address, self._nonce))
            index, _ = yield poll
            if index == 0:
                misses = 0
            else:
                self._pending = None
                misses += 1
                if misses >= self.miss_threshold:
                    self.suspected_at = self.engine.now
                    self.on_failure()
                    return
            elapsed = self.engine.now - sent_at
            remaining = self.poll_interval - elapsed
            if remaining > 0:
                yield Timeout(remaining)
