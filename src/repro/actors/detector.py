"""Ping/pong failure detection (paper Sec. IV-A: "periodic polling").

The detector sends a :class:`~repro.core.protocol.Ping` to the target's
control address every ``poll_interval`` and waits ``reply_timeout`` for the
matching :class:`~repro.core.protocol.Pong`.  After ``miss_threshold``
consecutive timeouts it declares the target dead and invokes the supplied
callback exactly once.

Worst-case detection latency (from the crash instant) is::

    poll_interval + miss_threshold * max(poll_interval, reply_timeout)

so the caller picks parameters that keep publisher fail-over within the
configured ``x`` bound (Lemma 1 depends on it).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.protocol import Ping, Pong
from repro.sim.process import AnyOf, Signal, Timeout


class FailureDetector:
    """Polls one target and fires a callback on suspected failure."""

    def __init__(self, engine, host, network, name: str, target_ctl_address: str,
                 on_failure: Callable[[], None], poll_interval: float,
                 reply_timeout: float, miss_threshold: int = 2):
        if reply_timeout <= 0 or poll_interval <= 0:
            raise ValueError("poll_interval and reply_timeout must be positive")
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        self.engine = engine
        self.host = host
        self.network = network
        self.name = name
        self.target_ctl_address = target_ctl_address
        self.on_failure = on_failure
        self.poll_interval = poll_interval
        self.reply_timeout = reply_timeout
        self.miss_threshold = miss_threshold

        self.address = f"{name}/detector"
        self.suspected_at: Optional[float] = None
        self._nonce = 0
        self._pending: Optional[Signal] = None
        network.register(host, self.address, self._on_pong)
        self.process = engine.spawn(self._run(), name=name, host=host)

    def worst_case_detection(self) -> float:
        """Upper bound on crash-to-callback latency (excluding link delay)."""
        return self.poll_interval + self.miss_threshold * max(
            self.poll_interval, self.reply_timeout
        )

    # ------------------------------------------------------------------
    def _on_pong(self, pong: Pong) -> None:
        if self._pending is not None and pong.nonce == self._nonce:
            pending, self._pending = self._pending, None
            pending.fire(pong)

    def _run(self):
        misses = 0
        while True:
            self._nonce += 1
            self._pending = Signal(self.engine)
            sent_at = self.engine.now
            self.network.send(self.host, self.target_ctl_address,
                              Ping(self.address, self._nonce))
            index, _ = yield AnyOf(self.engine,
                                   [self._pending, Timeout(self.reply_timeout)])
            if index == 0:
                misses = 0
            else:
                self._pending = None
                misses += 1
                if misses >= self.miss_threshold:
                    self.suspected_at = self.engine.now
                    self.on_failure()
                    return
            elapsed = self.engine.now - sent_at
            remaining = self.poll_interval - elapsed
            if remaining > 0:
                yield Timeout(remaining)
