"""The endpoints of the messaging system: publishers, subscribers, detectors.

Publishers are proxies for collections of IIoT devices (paper Sec. III-B):
each aggregates several topics of equal period and sends one message per
topic per period in a batch.  Subscribers receive pushes, deduplicate by
``(topic, seq)``, and account latency/loss.  Failure detectors drive both
publisher fail-over and Backup promotion.
"""

from repro.actors.detector import FailureDetector
from repro.actors.publisher import PublisherProxy, PublisherStats
from repro.actors.subscriber import Subscriber, SubscriberStats

__all__ = [
    "FailureDetector",
    "PublisherProxy",
    "PublisherStats",
    "Subscriber",
    "SubscriberStats",
]
